//! `sr32lint` — static verification for the CodePack reproduction: a CFG
//! verifier for SR32 binaries and a linter for compressed images, neither
//! of which runs a single simulated cycle.
//!
//! The paper's premise is that the compressed image is *semantically
//! transparent*: decompression is exact, so the processor cannot tell
//! compressed storage from native storage. This crate makes that premise
//! checkable ahead of time:
//!
//! * [`mod@cfg`] recovers a control-flow graph from the binary (decode, basic
//!   blocks, reachability) and proves the static properties the runtime
//!   relies on — every branch/jump lands inside text, no reachable path
//!   falls off the end, no reachable word is undecodable.
//! * [`dataflow`] adds a conservative use-before-def register analysis.
//! * [`image`] verifies a compressed image against the published layout
//!   alone — an independent walk of the bit stream that re-derives block
//!   extents, dictionary references, the full [`CompositionStats`]
//!   recount (the static compression-ratio cross-check), and the
//!   decompressed bytes themselves.
//! * [`diag`] is the reporting spine: severities, stable check names,
//!   human and JSON rendering through `codepack-obs`'s `JsonWriter`.
//!
//! The CLI front end is `cpack lint`; CI runs it over every synthetic
//! benchmark and fails on any Error-severity diagnostic.
//!
//! [`CompositionStats`]: codepack_core::CompositionStats
//!
//! ```
//! use codepack_isa::{encode, Instruction, Program, Reg};
//!
//! let text: Vec<u32> = [
//!     Instruction::Addiu { rt: Reg::V0, rs: Reg::ZERO, imm: 10 },
//!     Instruction::Syscall,
//! ]
//! .into_iter()
//! .map(encode)
//! .collect();
//! let program = Program::new("halt", text, Vec::new());
//! let report = codepack_analyze::lint_program(&program);
//! assert!(report.is_clean(), "{}", report.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod diag;
pub mod frame;
pub mod image;
pub mod tables;

pub use callgraph::{build_call_graph, check_call_graph, CallGraph};
pub use cfg::{check_cfg, recover_cfg, Cfg, Flow};
pub use dataflow::{check_use_before_def, check_use_before_def_with};
pub use diag::{Diagnostic, LintReport, RatioReport, Severity};
pub use frame::{check_frame, lint_frame, FrameWalk};
pub use image::{check_image, ImageParts, StaticWalk};
pub use tables::check_decode_tables;

use codepack_core::{CodePackImage, RomParts};
use codepack_isa::Program;

/// Lints a native SR32 program: CFG recovery, static CFG checks, the
/// interprocedural call-graph checks, and the use-before-def dataflow
/// pass (with call summaries from the shared call graph).
pub fn lint_program(program: &Program) -> LintReport {
    let mut report = LintReport::new(program.name());
    let cfg = recover_cfg(program);
    check_cfg(&cfg, &mut report);
    let graph = build_call_graph(&cfg);
    check_call_graph(&cfg, &graph, &mut report);
    check_use_before_def_with(&cfg, Some(&graph), &mut report);
    report
}

/// Lints a program *and* its compressed image: every CFG check plus the
/// full static image verification against the native text.
pub fn lint_compressed(program: &Program, image: &CodePackImage) -> LintReport {
    let mut report = lint_program(program);
    check_image(
        &ImageParts::of_image(image),
        Some(program.text_words()),
        &mut report,
    );
    report
}

/// Lints a structurally-parsed ROM without a native reference: the image
/// checks that do not need the original text (extents, dictionary slots,
/// padding, stats recount, ratio agreement).
pub fn lint_rom(rom: &RomParts, target: impl Into<String>) -> LintReport {
    let mut report = LintReport::new(target);
    check_image(&ImageParts::of_rom(rom), None, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use codepack_core::{parse_rom_parts, CompressionConfig};
    use codepack_isa::{encode, Instruction, Reg};

    fn halt_program() -> Program {
        let text: Vec<u32> = [
            Instruction::Addiu {
                rt: Reg::V0,
                rs: Reg::ZERO,
                imm: 10,
            },
            Instruction::Syscall,
        ]
        .into_iter()
        .map(encode)
        .collect();
        Program::new("halt", text, Vec::new())
    }

    #[test]
    fn compressed_roundtrip_lints_clean() {
        let program = halt_program();
        let image = CodePackImage::compress(program.text_words(), &CompressionConfig::default());
        let report = lint_compressed(&program, &image);
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.ratio.is_some());
    }

    #[test]
    fn rom_bytes_lint_clean_via_structural_parse() {
        let program = halt_program();
        let image = CodePackImage::compress(program.text_words(), &CompressionConfig::default());
        let rom = parse_rom_parts(&image.to_rom_bytes()).expect("well-formed rom");
        let report = lint_rom(&rom, "halt.cpk");
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn corrupted_rom_index_is_caught_from_bytes_alone() {
        let program = halt_program();
        let image = CodePackImage::compress(program.text_words(), &CompressionConfig::default());
        let mut bytes = image.to_rom_bytes();
        // Index table begins after magic(4) + n_insns(4) + dict lens(2+2)
        // + dict entries; corrupt its first byte (little-endian low bits
        // of the second-block offset).
        let hi = u16::from_le_bytes([bytes[8], bytes[9]]) as usize;
        let lo = u16::from_le_bytes([bytes[10], bytes[11]]) as usize;
        let index_at = 12 + 2 * (hi + lo) + 4;
        bytes[index_at] ^= 0x7f;
        let rom = parse_rom_parts(&bytes).expect("structure still parses");
        let report = lint_rom(&rom, "corrupt.cpk");
        assert!(!report.is_clean(), "{}", report.render());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.check.starts_with("index-") || d.check == "dict-slot"));
    }
}
