//! Static `.cpk` frame linter — whole-artifact verification of the frame
//! format without the frame parser.
//!
//! [`codepack_core::frame`] already rejects malformed frames, but it is
//! the *implementation under test*: a bug that writes and reads the same
//! wrong layout is invisible to it. This module re-derives the published
//! frame layout (see the format comment in `codepack_core::frame`) from
//! the bytes alone — its own cursor, its own CRC calls, its own integrity
//! trailer re-computation, and the same layout-driven block walk the
//! image linter uses ([`crate::image`]) for the payload bits. One bounded
//! pass: header, then chunk by chunk (re-deriving each extent), then the
//! end marker and structural trailer. The statically decoded words are
//! returned in [`FrameWalk`] and are byte-identical to
//! [`codepack_core::unpack_frame`] on every well-formed frame — proven
//! across profiles, seeds, and integrity modes by the `frame_lint`
//! integration tests — without materializing a `CodePackImage`.
//!
//! Checks (stable names, Error severity unless noted):
//!
//! * `frame-header` — magic, version, reserved flag bits, dictionary
//!   length caps, header CRC, and the content-size semantic rules.
//! * `frame-chunk` — chunk framing: truncation, zero or oversized
//!   payload lengths, a first-block length past its payload, the missing
//!   end-of-frame marker.
//! * `frame-integrity` — a chunk's integrity trailer (parity or CRC-32,
//!   re-computed here from the payload bytes) disagrees with the stored
//!   trailer.
//! * `frame-payload` — the static walk of a group payload faults, or the
//!   two blocks do not tile `first_len` / `payload_len` exactly.
//! * `frame-trailer` — the structural trailer CRC disagrees, or bytes
//!   trail the frame.
//!
//! The decode-table prover ([`crate::tables`]) also runs over the frame's
//! dictionaries, so a dictionary that builds an unsound table is caught
//! at lint time even though the frame itself is well-formed.

use codepack_core::frame::{FRAME_MAGIC, FRAME_VERSION, MAX_GROUP_PAYLOAD};
use codepack_core::layout::{BLOCK_INSNS, GROUP_INSNS, HIGH_DICT_CAPACITY, LOW_DICT_CAPACITY};
use codepack_core::{CompositionStats, Dictionary, FastDecoder};
use codepack_isa::TEXT_BASE;
use codepack_mem::{crc32, StreamIntegrity};

use crate::diag::{Capped, Diagnostic, LintReport};
use crate::image::walk_block;
use crate::tables::check_decode_tables;

/// How many per-group diagnostics each frame check emits before
/// suppressing the remainder.
const PER_CHECK_CAP: usize = 8;

/// Outcome of one static frame walk.
pub struct FrameWalk {
    /// Statically decoded instruction words, truncated to the header's
    /// content size — byte-identical to [`codepack_core::unpack_frame`]
    /// on well-formed frames. Only meaningful where no error fired.
    pub words: Vec<u32>,
    /// The content size the header declares, in bytes.
    pub content_size: u64,
    /// The per-chunk integrity mode the header declares.
    pub integrity: StreamIntegrity,
    /// Number of group chunks the walk scanned.
    pub groups: u32,
    /// Did the whole frame walk without a structural error?
    pub complete: bool,
}

impl FrameWalk {
    fn failed() -> FrameWalk {
        FrameWalk {
            words: Vec::new(),
            content_size: 0,
            integrity: StreamIntegrity::None,
            groups: 0,
            complete: false,
        }
    }
}

/// Little-endian byte cursor with explicit truncation reporting.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

/// The integrity trailer the format requires for `payload`: one parity
/// bit per payload byte packed LSB-first, or a little-endian CRC-32.
/// Re-derived here so the linter does not trust the writer's helper.
fn expected_trailer(integrity: StreamIntegrity, payload: &[u8]) -> Vec<u8> {
    match integrity {
        StreamIntegrity::None => Vec::new(),
        StreamIntegrity::Parity => {
            let mut out = vec![0u8; payload.len().div_ceil(8)];
            for (i, &b) in payload.iter().enumerate() {
                out[i / 8] |= ((b.count_ones() as u8) & 1) << (i % 8);
            }
            out
        }
        StreamIntegrity::Crc32 => crc32(payload).to_le_bytes().to_vec(),
    }
}

/// The parsed-and-verified header fields the chunk walk needs.
struct Header {
    integrity: StreamIntegrity,
    content_size: u64,
    high_values: Vec<u16>,
    low_values: Vec<u16>,
}

/// Parses and verifies the frame header; on failure emits one
/// `frame-header` error and returns `None` (nothing after a bad header
/// can be interpreted).
fn check_header(c: &mut Cursor<'_>, report: &mut LintReport) -> Option<Header> {
    let fail = |report: &mut LintReport, msg: String| -> Option<Header> {
        report.push(Diagnostic::error("frame-header", msg));
        None
    };
    let Some(magic) = c.take(4) else {
        return fail(report, "frame shorter than the 4-byte magic".into());
    };
    if magic != FRAME_MAGIC {
        return fail(
            report,
            format!("bad magic {magic:02x?}; a .cpk frame starts with \"CPKF\""),
        );
    }
    let Some(version) = c.u16() else {
        return fail(report, "frame truncated in the version field".into());
    };
    if version != FRAME_VERSION {
        return fail(
            report,
            format!("frame version {version}; this linter reads version {FRAME_VERSION}"),
        );
    }
    let Some(flags) = c.u16() else {
        return fail(report, "frame truncated in the flags field".into());
    };
    let integrity = match flags & 0b11 {
        _ if flags & !0b11 != 0 => {
            return fail(
                report,
                format!("reserved flag bits set in {flags:#06x}; bits 2-15 must be zero"),
            )
        }
        0 => StreamIntegrity::None,
        1 => StreamIntegrity::Parity,
        2 => StreamIntegrity::Crc32,
        _ => {
            return fail(
                report,
                format!("unknown integrity code {} in flags", flags & 0b11),
            )
        }
    };
    let Some(content_size) = c.u64() else {
        return fail(report, "frame truncated in the content-size field".into());
    };
    let (Some(high_len), Some(low_len)) = (c.u16(), c.u16()) else {
        return fail(report, "frame truncated in the dictionary lengths".into());
    };
    if high_len > HIGH_DICT_CAPACITY || low_len > LOW_DICT_CAPACITY {
        return fail(
            report,
            format!(
                "dictionary lengths {high_len}/{low_len} exceed the tag classes' \
                 addressable capacities {HIGH_DICT_CAPACITY}/{LOW_DICT_CAPACITY}"
            ),
        );
    }
    let dict =
        |c: &mut Cursor<'_>, len: u16| -> Option<Vec<u16>> { (0..len).map(|_| c.u16()).collect() };
    let (Some(high_values), Some(low_values)) = (dict(c, high_len), dict(c, low_len)) else {
        return fail(
            report,
            "frame truncated inside the dictionary entries".into(),
        );
    };
    let covered = &c.bytes[..c.pos];
    let Some(stored) = c.u32() else {
        return fail(report, "frame truncated at the header CRC".into());
    };
    let computed = crc32(covered);
    if computed != stored {
        return fail(
            report,
            format!("header CRC stored {stored:#010x}, bytes hash to {computed:#010x}"),
        );
    }
    // Semantic rules, checked only on a CRC-clean header (mirroring the
    // parser: damage upstream reports as a CRC failure, not a misleading
    // semantic one).
    if content_size % 4 != 0 {
        return fail(
            report,
            format!("content size {content_size} is not a whole number of instructions"),
        );
    }
    if content_size / 4 > u64::from(u32::MAX) {
        return fail(
            report,
            format!("content size {content_size} exceeds the 32-bit instruction count"),
        );
    }
    Some(Header {
        integrity,
        content_size,
        high_values,
        low_values,
    })
}

/// Statically verifies a `.cpk` frame byte-for-byte: header, every chunk
/// extent, integrity trailers, payload bit streams, end marker, and the
/// structural trailer CRC — one bounded pass over the bytes, no frame
/// parser, no image materialization. Returns the walk so callers can use
/// the decoded words and frame facts.
pub fn check_frame(frame: &[u8], report: &mut LintReport) -> FrameWalk {
    for check in [
        "frame-header",
        "frame-chunk",
        "frame-integrity",
        "frame-payload",
        "frame-trailer",
    ] {
        report.ran(check);
    }

    let mut c = Cursor {
        bytes: frame,
        pos: 0,
    };
    let Some(header) = check_header(&mut c, report) else {
        return FrameWalk::failed();
    };

    // The frame's dictionaries feed a decode table at unpack time: prove
    // that table sound while we have them.
    {
        let high = Dictionary::from_ranked_values(header.high_values.clone());
        let low = Dictionary::from_ranked_values(header.low_values.clone());
        let fast = FastDecoder::new(&high, &low);
        check_decode_tables(&fast, &high, &low, report);
    }

    let n_insns = (header.content_size / 4) as u32;
    let n_groups = n_insns.div_ceil(GROUP_INSNS);
    let mut complete = true;
    let mut words: Vec<u32> = Vec::with_capacity((n_groups * GROUP_INSNS) as usize);
    let mut stats = CompositionStats::default();
    let mut meta: Vec<u8> = Vec::new();
    let mut integrity_cap = Capped::new("frame-integrity", PER_CHECK_CAP);
    let mut payload_cap = Capped::new("frame-payload", PER_CHECK_CAP);
    let mut scanned = 0u32;

    'groups: for g in 0..n_groups {
        let chunk_at = c.pos;
        let chunk_fail = |report: &mut LintReport, msg: String| {
            report.push(
                Diagnostic::error("frame-chunk", format!("group {g}: {msg}"))
                    .with_context(format!("chunk begins at byte {chunk_at}")),
            );
        };
        let Some(payload_len) = c.u32() else {
            chunk_fail(report, "frame truncated at the payload length".into());
            complete = false;
            break 'groups;
        };
        if payload_len == 0 {
            chunk_fail(report, "zero-length group chunk".into());
            complete = false;
            break 'groups;
        }
        if payload_len > MAX_GROUP_PAYLOAD {
            chunk_fail(
                report,
                format!(
                    "payload of {payload_len} bytes exceeds the format maximum \
                     {MAX_GROUP_PAYLOAD}"
                ),
            );
            complete = false;
            break 'groups;
        }
        let Some(first_len) = c.u16() else {
            chunk_fail(report, "frame truncated at the first-block length".into());
            complete = false;
            break 'groups;
        };
        if u32::from(first_len) > payload_len {
            chunk_fail(
                report,
                format!("first-block length {first_len} exceeds the {payload_len}-byte payload"),
            );
            complete = false;
            break 'groups;
        }
        meta.extend_from_slice(&payload_len.to_le_bytes());
        meta.extend_from_slice(&first_len.to_le_bytes());
        let Some(payload) = c.take(payload_len as usize) else {
            chunk_fail(report, "frame truncated inside the payload".into());
            complete = false;
            break 'groups;
        };
        let overhead = header.integrity.overhead_bytes(payload_len) as usize;
        let Some(trailer) = c.take(overhead) else {
            chunk_fail(
                report,
                "frame truncated inside the integrity trailer".into(),
            );
            complete = false;
            break 'groups;
        };
        scanned += 1;

        // Integrity trailer, re-derived from the payload bytes.
        let want = expected_trailer(header.integrity, payload);
        if want != trailer {
            complete = false;
            integrity_cap.push(
                report,
                Diagnostic::error(
                    "frame-integrity",
                    format!(
                        "group {g}: stored {} trailer {trailer:02x?} does not match the \
                         payload (expected {want:02x?})",
                        header.integrity.as_str()
                    ),
                ),
            );
        }

        // Static decode of the payload: two blocks that tile first_len and
        // payload_len exactly.
        let group_addr = TEXT_BASE + 4 * GROUP_INSNS * g;
        let before = words.len();
        let walk_fail = |report: &mut LintReport, cap: &mut Capped, msg: String| {
            cap.push(
                report,
                Diagnostic::error("frame-payload", format!("group {g}: {msg}")).at(group_addr),
            );
        };
        let mut ok = true;
        match walk_block(
            payload,
            &header.high_values,
            &header.low_values,
            0,
            group_addr,
            &mut words,
            &mut stats,
        ) {
            Ok(end) if end != u32::from(first_len) => {
                walk_fail(
                    report,
                    &mut payload_cap,
                    format!(
                        "first block spans {end} byte(s) but the chunk declares \
                         first_len {first_len}"
                    ),
                );
                ok = false;
            }
            Ok(_) => {}
            Err(msg) => {
                walk_fail(report, &mut payload_cap, format!("first block: {msg}"));
                ok = false;
            }
        }
        if ok {
            let second_addr = group_addr + 4 * BLOCK_INSNS;
            match walk_block(
                payload,
                &header.high_values,
                &header.low_values,
                u32::from(first_len),
                second_addr,
                &mut words,
                &mut stats,
            ) {
                Ok(end) if end != payload_len => {
                    walk_fail(
                        report,
                        &mut payload_cap,
                        format!("second block ends at byte {end} of a {payload_len}-byte payload"),
                    );
                    ok = false;
                }
                Ok(_) => {}
                Err(msg) => {
                    walk_fail(report, &mut payload_cap, format!("second block: {msg}"));
                    ok = false;
                }
            }
        }
        if !ok {
            complete = false;
            words.resize(before + GROUP_INSNS as usize, 0);
        }
    }
    integrity_cap.finish(report);
    payload_cap.finish(report);

    if complete {
        match c.u32() {
            Some(0) => {}
            Some(marker) => {
                complete = false;
                report.push(Diagnostic::error(
                    "frame-chunk",
                    format!(
                        "expected the end-of-frame marker after {n_groups} group(s), \
                         found {marker:#010x} — chunk count disagrees with the content size"
                    ),
                ));
            }
            None => {
                complete = false;
                report.push(Diagnostic::error(
                    "frame-chunk",
                    "frame truncated at the end-of-frame marker".to_string(),
                ));
            }
        }
    }

    if complete {
        meta.extend_from_slice(&header.content_size.to_le_bytes());
        let computed = crc32(&meta);
        match c.u32() {
            Some(stored) if stored == computed => {}
            Some(stored) => {
                complete = false;
                report.push(Diagnostic::error(
                    "frame-trailer",
                    format!(
                        "structural trailer CRC stored {stored:#010x}, chunk metadata \
                         hashes to {computed:#010x}"
                    ),
                ));
            }
            None => {
                complete = false;
                report.push(Diagnostic::error(
                    "frame-trailer",
                    "frame truncated at the structural trailer CRC".to_string(),
                ));
            }
        }
    }
    if complete && c.pos != frame.len() {
        complete = false;
        report.push(Diagnostic::error(
            "frame-trailer",
            format!(
                "{} byte(s) trail the frame (frame ends at byte {}, file has {})",
                frame.len() - c.pos,
                c.pos,
                frame.len()
            ),
        ));
    }

    words.truncate(n_insns as usize);
    FrameWalk {
        words,
        content_size: header.content_size,
        integrity: header.integrity,
        groups: scanned,
        complete,
    }
}

/// Lints a `.cpk` frame and returns the report — the `cpack lint
/// <file.cpk>` entry point.
pub fn lint_frame(frame: &[u8], target: impl Into<String>) -> LintReport {
    let mut report = LintReport::new(target);
    check_frame(frame, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use codepack_core::frame::{pack_frame, unpack_frame, PackOptions, UnpackOptions};

    fn sample_text(n: u32) -> Vec<u32> {
        (0..n)
            .map(|i| match i % 7 {
                0 => 0x2402_000a,
                1 => 0x0000_0000,
                2 => 0x8fbf_0010 | (i / 7 % 2) << 16,
                3 => 0x3c08_dead ^ (i << 3),
                4 => 0x2508_beef,
                5 => 0x0109_4021,
                _ => 0x03e0_0008,
            })
            .collect()
    }

    fn pack(text: &[u32], integrity: StreamIntegrity) -> Vec<u8> {
        pack_frame(
            text,
            &PackOptions {
                integrity,
                ..PackOptions::default()
            },
        )
    }

    #[test]
    fn clean_frames_lint_clean_and_match_unpack_in_every_integrity_mode() {
        let text = sample_text(96);
        for integrity in [
            StreamIntegrity::None,
            StreamIntegrity::Parity,
            StreamIntegrity::Crc32,
        ] {
            let frame = pack(&text, integrity);
            let mut report = LintReport::new("t");
            let walk = check_frame(&frame, &mut report);
            assert!(
                report.is_clean(),
                "{}: {}",
                integrity.as_str(),
                report.render()
            );
            assert!(walk.complete);
            assert_eq!(walk.integrity, integrity);
            assert_eq!(walk.content_size, u64::from(96u32) * 4);
            let unpacked = unpack_frame(&frame, &UnpackOptions::default()).unwrap();
            assert_eq!(walk.words, unpacked, "byte-identical to unpack_frame");
            assert_eq!(walk.words, text);
        }
    }

    #[test]
    fn partial_final_group_matches_unpack() {
        // 37 insns: the final group is half native, half padding.
        let text = sample_text(37);
        let frame = pack(&text, StreamIntegrity::Crc32);
        let report = lint_frame(&frame, "t");
        assert!(report.is_clean(), "{}", report.render());
        let mut r2 = LintReport::new("t");
        let walk = check_frame(&frame, &mut r2);
        assert_eq!(
            walk.words,
            unpack_frame(&frame, &UnpackOptions::default()).unwrap()
        );
    }

    #[test]
    fn flipped_payload_byte_names_the_group() {
        let text = sample_text(96);
        let mut frame = pack(&text, StreamIntegrity::Crc32);
        // Locate the first payload byte: header is magic(4) + version(2) +
        // flags(2) + content(8) + lens(4) + dicts + crc(4); chunk framing
        // adds payload_len(4) + first_len(2).
        let hi = u16::from_le_bytes([frame[16], frame[17]]) as usize;
        let lo = u16::from_le_bytes([frame[18], frame[19]]) as usize;
        let payload_at = 20 + 2 * (hi + lo) + 4 + 4 + 2;
        frame[payload_at] ^= 0x01;
        let report = lint_frame(&frame, "t");
        assert!(!report.is_clean());
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.check == "frame-integrity")
            .expect("trailer mismatch fires");
        assert!(d.message.contains("group 0"), "{}", d.message);
    }

    #[test]
    fn header_corruption_is_a_header_error() {
        let text = sample_text(64);
        let mut frame = pack(&text, StreamIntegrity::None);
        frame[9] ^= 0x40; // inside content_size, protected by the header CRC
        let report = lint_frame(&frame, "t");
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.check == "frame-header" && d.message.contains("header CRC")));
    }

    #[test]
    fn truncated_frame_is_reported() {
        let text = sample_text(64);
        let frame = pack(&text, StreamIntegrity::Parity);
        for cut in [3, 7, frame.len() / 2, frame.len() - 3] {
            let report = lint_frame(&frame[..cut], "t");
            assert!(!report.is_clean(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_are_reported() {
        let text = sample_text(64);
        let mut frame = pack(&text, StreamIntegrity::None);
        frame.push(0xAA);
        let report = lint_frame(&frame, "t");
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.check == "frame-trailer" && d.message.contains("trail")));
    }

    #[test]
    fn bad_magic_and_version_and_flags_are_header_errors() {
        let text = sample_text(32);
        let good = pack(&text, StreamIntegrity::None);

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(lint_frame(&bad, "t")
            .diagnostics
            .iter()
            .any(|d| d.check == "frame-header" && d.message.contains("magic")));

        let mut bad = good.clone();
        bad[4] = 9; // version
        assert!(lint_frame(&bad, "t")
            .diagnostics
            .iter()
            .any(|d| d.check == "frame-header" && d.message.contains("version")));

        let mut bad = good;
        bad[7] |= 0x80; // reserved flag bit (flags live at bytes 6..8)
        assert!(lint_frame(&bad, "t")
            .diagnostics
            .iter()
            .any(|d| d.check == "frame-header"));
    }

    #[test]
    fn table_prover_runs_on_frame_dictionaries() {
        let text = sample_text(64);
        let frame = pack(&text, StreamIntegrity::Crc32);
        let report = lint_frame(&frame, "t");
        assert!(report.checks_run.contains(&"decode-table-kind"));
        assert!(report.is_clean(), "{}", report.render());
    }
}
