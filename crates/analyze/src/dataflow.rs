//! Conservative use-before-def register dataflow.
//!
//! A forward may-defined analysis over the recovered CFG: a register is
//! *defined at* an instruction if **some** path from the entry writes it
//! first. Reading a register that is defined on **no** incoming path is
//! reported as a `use-before-def` Warning — it is suspicious (the value is
//! whatever the reset state left there) but not provably fatal, so it never
//! breaks the lint gate.
//!
//! Join is set union (hence "may"), which keeps the check quiet: one
//! defining path suppresses the report. Calls are modelled through the
//! interprocedural may-def summaries of [`crate::callgraph`]: after a
//! `jal f` returns, the defined set is the call-site state plus whatever
//! `f` may transitively define — strictly tighter than the historical
//! "everything is defined after a call" join, which remains the fallback
//! for indirect calls (`jalr`) and unresolvable targets. A `jal` target's
//! entry state receives the call-site state plus `$ra`. The state tracks
//! the 32 integer registers, the 32 FP registers, `HI`/`LO`, and the FP
//! condition flag as one 67-bit set in a `u128`.
//!
//! At program entry only `$zero` and `$sp` hold architected values (the
//! loader zeroes `$zero` by definition and the reset state points `$sp` at
//! the stack top — see `Machine::new` in `codepack-cpu`).

use codepack_isa::{FReg, Instruction, Reg};

use crate::callgraph::{build_call_graph, CallGraph};
use crate::cfg::{Cfg, Flow};
use crate::diag::{Capped, Diagnostic, LintReport};

/// Bit positions 0..32 are integer registers, 32..64 FP registers, then
/// `HI`, `LO`, and the FP condition flag.
pub(crate) type RegSet = u128;

pub(crate) const HI_BIT: u32 = 64;
pub(crate) const LO_BIT: u32 = 65;
pub(crate) const FCC_BIT: u32 = 66;

/// All 67 tracked locations.
pub(crate) const ALL_LOCATIONS: RegSet = (1u128 << 67) - 1;

/// How many use-before-def diagnostics to emit before summarizing.
const CAP: usize = 16;

fn r(reg: Reg) -> RegSet {
    1u128 << reg.index()
}

fn f(reg: FReg) -> RegSet {
    1u128 << (32 + reg.index())
}

/// `(uses, defs)` of one instruction.
pub(crate) fn uses_defs(insn: &Instruction) -> (RegSet, RegSet) {
    use Instruction::*;
    match *insn {
        Sll { rd, rt, .. } | Srl { rd, rt, .. } | Sra { rd, rt, .. } => (r(rt), r(rd)),
        Sllv { rd, rt, rs } | Srlv { rd, rt, rs } | Srav { rd, rt, rs } => (r(rt) | r(rs), r(rd)),
        Jr { rs } => (r(rs), 0),
        Jalr { rd, rs } => (r(rs), r(rd)),
        Mfhi { rd } => (1 << HI_BIT, r(rd)),
        Mflo { rd } => (1 << LO_BIT, r(rd)),
        Mult { rs, rt } | Multu { rs, rt } | Div { rs, rt } | Divu { rs, rt } => {
            (r(rs) | r(rt), (1 << HI_BIT) | (1 << LO_BIT))
        }
        Addu { rd, rs, rt }
        | Subu { rd, rs, rt }
        | And { rd, rs, rt }
        | Or { rd, rs, rt }
        | Xor { rd, rs, rt }
        | Nor { rd, rs, rt }
        | Slt { rd, rs, rt }
        | Sltu { rd, rs, rt } => (r(rs) | r(rt), r(rd)),
        // The halt/IO idiom reads the service selector in $v0.
        Syscall => (r(Reg::V0), 0),
        Break => (0, 0),
        Beq { rs, rt, .. } | Bne { rs, rt, .. } => (r(rs) | r(rt), 0),
        Blez { rs, .. } | Bgtz { rs, .. } | Bltz { rs, .. } | Bgez { rs, .. } => (r(rs), 0),
        Addiu { rt, rs, .. }
        | Slti { rt, rs, .. }
        | Sltiu { rt, rs, .. }
        | Andi { rt, rs, .. }
        | Ori { rt, rs, .. }
        | Xori { rt, rs, .. } => (r(rs), r(rt)),
        Lui { rt, .. } => (0, r(rt)),
        Lb { rt, base, .. }
        | Lh { rt, base, .. }
        | Lw { rt, base, .. }
        | Lbu { rt, base, .. }
        | Lhu { rt, base, .. } => (r(base), r(rt)),
        Sb { rt, base, .. } | Sh { rt, base, .. } | Sw { rt, base, .. } => (r(base) | r(rt), 0),
        J { .. } => (0, 0),
        Jal { .. } => (0, r(Reg::RA)),
        AddS { fd, fs, ft } | SubS { fd, fs, ft } | MulS { fd, fs, ft } | DivS { fd, fs, ft } => {
            (f(fs) | f(ft), f(fd))
        }
        MovS { fd, fs } | CvtSW { fd, fs } | CvtWS { fd, fs } => (f(fs), f(fd)),
        CEqS { fs, ft } | CLtS { fs, ft } | CLeS { fs, ft } => (f(fs) | f(ft), 1 << FCC_BIT),
        Bc1t { .. } | Bc1f { .. } => (1 << FCC_BIT, 0),
        Mtc1 { rt, fs } => (r(rt), f(fs)),
        Mfc1 { rt, fs } => (f(fs), r(rt)),
        Lwc1 { ft, base, .. } => (r(base), f(ft)),
        Swc1 { ft, base, .. } => (r(base) | f(ft), 0),
    }
}

/// Human name of tracked location `bit`.
fn loc_name(bit: u32) -> String {
    match bit {
        0..=31 => Reg::new(bit as u8).name().to_string(),
        32..=63 => format!("$f{}", bit - 32),
        HI_BIT => "HI".to_string(),
        LO_BIT => "LO".to_string(),
        _ => "FCC".to_string(),
    }
}

/// Runs the analysis with freshly-built call-graph summaries and reports
/// `use-before-def` warnings.
pub fn check_use_before_def(cfg: &Cfg, report: &mut LintReport) {
    let summaries = build_call_graph(cfg);
    check_use_before_def_with(cfg, Some(&summaries), report);
}

/// Runs the analysis and reports `use-before-def` warnings.
///
/// `summaries` supplies per-callee may-def sets for the call-boundary
/// join. With `None` every call joins *all* locations into its return
/// point — the historical conservative model, kept callable so the
/// precision gain is measurable (see EXPERIMENTS.md).
pub fn check_use_before_def_with(
    cfg: &Cfg,
    summaries: Option<&CallGraph>,
    report: &mut LintReport,
) {
    report.ran("use-before-def");
    let n = cfg.len() as usize;
    if n == 0 {
        return;
    }

    // In-state per instruction: union of out-states of all predecessors.
    // `visited` distinguishes "no path reaches this yet" from "a path with
    // nothing defined reaches it".
    let mut in_state: Vec<RegSet> = vec![0; n];
    let mut visited: Vec<bool> = vec![false; n];
    let entry_defined = r(Reg::ZERO) | r(Reg::SP);

    let mut work: Vec<u32> = Vec::new();
    let join = |idx: i64,
                state: RegSet,
                in_state: &mut [RegSet],
                visited: &mut [bool],
                work: &mut Vec<u32>| {
        if !(0..n as i64).contains(&idx) {
            return;
        }
        let idx = idx as usize;
        let merged = in_state[idx] | state;
        if !visited[idx] || merged != in_state[idx] {
            visited[idx] = true;
            in_state[idx] = merged;
            work.push(idx as u32);
        }
    };
    join(
        i64::from(cfg.entry),
        entry_defined,
        &mut in_state,
        &mut visited,
        &mut work,
    );

    while let Some(i) = work.pop() {
        let Ok(insn) = &cfg.insns[i as usize] else {
            continue;
        };
        let (_, defs) = uses_defs(insn);
        let out = in_state[i as usize] | defs;
        match cfg.flow_of(i) {
            Flow::Next | Flow::Halt => join(
                i64::from(i) + 1,
                out,
                &mut in_state,
                &mut visited,
                &mut work,
            ),
            Flow::Jump(t) => join(t, out, &mut in_state, &mut visited, &mut work),
            Flow::Branch(t) => {
                join(
                    i64::from(i) + 1,
                    out,
                    &mut in_state,
                    &mut visited,
                    &mut work,
                );
                join(t, out, &mut in_state, &mut visited, &mut work);
            }
            Flow::Call(t) => {
                // After the call returns, the defined set is the call-site
                // state plus what the callee may define — per its summary
                // when one is available, otherwise everything.
                let after = match (summaries, t) {
                    (Some(cg), Some(t)) if (0..n as i64).contains(&t) => {
                        match cg.may_defs_at(t as u32) {
                            Some(callee_defs) => out | callee_defs,
                            None => ALL_LOCATIONS,
                        }
                    }
                    _ => ALL_LOCATIONS,
                };
                join(
                    i64::from(i) + 1,
                    after,
                    &mut in_state,
                    &mut visited,
                    &mut work,
                );
                if let Some(t) = t {
                    join(t, out, &mut in_state, &mut visited, &mut work);
                }
            }
            Flow::Return | Flow::Trap => {}
        }
    }

    // Reporting pass over the fixpoint, deduplicated per (address, reg).
    let mut findings: Vec<(u32, u32)> = Vec::new();
    for i in 0..n {
        if !visited[i] {
            continue;
        }
        let Ok(insn) = &cfg.insns[i] else { continue };
        let (uses, _) = uses_defs(insn);
        let mut missing = uses & !in_state[i];
        while missing != 0 {
            let bit = missing.trailing_zeros();
            missing &= missing - 1;
            findings.push((i as u32, bit));
        }
    }
    let mut cap = Capped::new("use-before-def", CAP);
    for &(i, bit) in &findings {
        cap.push(
            report,
            Diagnostic::warning(
                "use-before-def",
                format!("{} is read before any path defines it", loc_name(bit)),
            )
            .at(cfg.addr_of(i))
            .with_context(cfg.context_line(i)),
        );
    }
    cap.finish(report);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{program_of, recover_cfg};
    use codepack_isa::encode;

    fn lint(insns: &[Instruction]) -> LintReport {
        let words: Vec<u32> = insns.iter().map(|&i| encode(i)).collect();
        let program = program_of(&words);
        let cfg = recover_cfg(&program);
        let mut report = LintReport::new("test");
        check_use_before_def(&cfg, &mut report);
        report
    }

    fn halt() -> Vec<Instruction> {
        vec![
            Instruction::Addiu {
                rt: Reg::V0,
                rs: Reg::ZERO,
                imm: 10,
            },
            Instruction::Syscall,
        ]
    }

    #[test]
    fn read_of_undefined_register_is_flagged() {
        let mut p = vec![Instruction::Addu {
            rd: Reg::T0,
            rs: Reg::T1, // never written
            rt: Reg::ZERO,
        }];
        p.extend(halt());
        let r = lint(&p);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.check == "use-before-def")
            .expect("flagged");
        assert!(d.message.contains("$t1"), "{}", d.message);
        assert!(r.is_clean(), "warnings only");
    }

    #[test]
    fn one_defining_path_suppresses_the_warning() {
        // beq $zero,$zero,+1 defines nothing but creates two paths; $t1 is
        // written on the fallthrough path only — may-defined join keeps
        // quiet.
        let mut p = vec![
            Instruction::Beq {
                rs: Reg::ZERO,
                rt: Reg::ZERO,
                offset: 1,
            },
            Instruction::Addiu {
                rt: Reg::T1,
                rs: Reg::ZERO,
                imm: 7,
            },
            Instruction::Addu {
                rd: Reg::T0,
                rs: Reg::T1,
                rt: Reg::ZERO,
            },
        ];
        p.extend(halt());
        let r = lint(&p);
        assert!(
            !r.diagnostics.iter().any(|d| d.check == "use-before-def"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn sp_and_zero_are_defined_at_entry() {
        let mut p = vec![
            Instruction::Addiu {
                rt: Reg::SP,
                rs: Reg::SP,
                imm: -16,
            },
            Instruction::Sw {
                rt: Reg::ZERO,
                base: Reg::SP,
                offset: 0,
            },
        ];
        p.extend(halt());
        let r = lint(&p);
        assert!(
            !r.diagnostics.iter().any(|d| d.check == "use-before-def"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn call_summary_defines_what_the_callee_writes() {
        // jal f; use $v0; halt. f: addiu $v0,..; jr $ra — the summary
        // carries $v0 across the call boundary.
        use codepack_isa::TEXT_BASE;
        let p = vec![
            Instruction::Jal {
                target: (TEXT_BASE >> 2) + 4,
            },
            Instruction::Addu {
                rd: Reg::T0,
                rs: Reg::V0,
                rt: Reg::ZERO,
            },
            Instruction::Addiu {
                rt: Reg::V0,
                rs: Reg::ZERO,
                imm: 10,
            },
            Instruction::Syscall,
            Instruction::Addiu {
                rt: Reg::V0,
                rs: Reg::ZERO,
                imm: 7,
            },
            Instruction::Jr { rs: Reg::RA },
        ];
        let r = lint(&p);
        assert!(
            !r.diagnostics.iter().any(|d| d.check == "use-before-def"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn call_summary_catches_read_of_register_no_callee_defines() {
        // jal f; use $v0; halt. f: jr $ra — f defines nothing, no path
        // writes $v0. The old ALL-join silently missed this; the summary
        // join reports it.
        use codepack_isa::TEXT_BASE;
        let p = vec![
            Instruction::Jal {
                target: (TEXT_BASE >> 2) + 4,
            },
            Instruction::Addu {
                rd: Reg::T0,
                rs: Reg::V0,
                rt: Reg::ZERO,
            },
            Instruction::Addiu {
                rt: Reg::V0,
                rs: Reg::ZERO,
                imm: 10,
            },
            Instruction::Syscall,
            Instruction::Jr { rs: Reg::RA },
        ];

        // New model: flagged.
        let r = lint(&p);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.check == "use-before-def")
            .expect("summary join catches the former miss");
        assert!(d.message.contains("$v0"), "{}", d.message);
        assert!(r.is_clean(), "warning only");

        // Old model (no summaries): provably quiet on the same program —
        // the precision delta in EXPERIMENTS.md comes from exactly this.
        let words: Vec<u32> = p.iter().map(|&i| encode(i)).collect();
        let program = program_of(&words);
        let cfg = recover_cfg(&program);
        let mut old = LintReport::new("old-model");
        check_use_before_def_with(&cfg, None, &mut old);
        assert!(
            !old.diagnostics.iter().any(|d| d.check == "use-before-def"),
            "{}",
            old.render()
        );
    }

    #[test]
    fn indirect_call_falls_back_to_all_defined() {
        // jalr leaves the callee unknown: everything counts as defined
        // afterwards, exactly the historical model.
        let mut p = vec![
            Instruction::Addiu {
                rt: Reg::T9,
                rs: Reg::ZERO,
                imm: 0,
            },
            Instruction::Jalr {
                rd: Reg::RA,
                rs: Reg::T9,
            },
            Instruction::Addu {
                rd: Reg::T0,
                rs: Reg::T7, // never written anywhere — but jalr may have
                rt: Reg::ZERO,
            },
        ];
        p.extend(halt());
        let r = lint(&p);
        assert!(
            !r.diagnostics.iter().any(|d| d.check == "use-before-def"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn hi_lo_chain_through_mult_is_tracked() {
        // mult defines HI and LO; mflo/mfhi read them — quiet. Without the
        // mult, both reads are flagged with the named special locations.
        let mut with_mult = vec![
            Instruction::Addiu {
                rt: Reg::T0,
                rs: Reg::ZERO,
                imm: 6,
            },
            Instruction::Mult {
                rs: Reg::T0,
                rt: Reg::T0,
            },
            Instruction::Mflo { rd: Reg::T1 },
            Instruction::Mfhi { rd: Reg::T2 },
        ];
        with_mult.extend(halt());
        let r = lint(&with_mult);
        assert!(
            !r.diagnostics.iter().any(|d| d.check == "use-before-def"),
            "{}",
            r.render()
        );

        let mut without = vec![
            Instruction::Mflo { rd: Reg::T1 },
            Instruction::Mfhi { rd: Reg::T2 },
        ];
        without.extend(halt());
        let r = lint(&without);
        let messages: Vec<&str> = r
            .diagnostics
            .iter()
            .filter(|d| d.check == "use-before-def")
            .map(|d| d.message.as_str())
            .collect();
        assert!(messages.iter().any(|m| m.contains("LO")), "{messages:?}");
        assert!(messages.iter().any(|m| m.contains("HI")), "{messages:?}");
    }

    #[test]
    fn hi_lo_cross_call_chain_uses_summaries() {
        // f performs the mult; the caller's mflo afterwards is quiet only
        // because f's summary includes HI|LO.
        use codepack_isa::TEXT_BASE;
        let p = vec![
            Instruction::Addiu {
                rt: Reg::A0,
                rs: Reg::ZERO,
                imm: 3,
            },
            Instruction::Jal {
                target: (TEXT_BASE >> 2) + 5,
            },
            Instruction::Mflo { rd: Reg::T1 },
            Instruction::Addiu {
                rt: Reg::V0,
                rs: Reg::ZERO,
                imm: 10,
            },
            Instruction::Syscall,
            Instruction::Mult {
                rs: Reg::A0,
                rt: Reg::A0,
            },
            Instruction::Jr { rs: Reg::RA },
        ];
        let r = lint(&p);
        assert!(
            !r.diagnostics.iter().any(|d| d.check == "use-before-def"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn fcc_chain_through_compare_and_branch() {
        // c.lt.s defines FCC; bc1t reads it — quiet when chained, flagged
        // (as FCC) when the branch comes first.
        use codepack_isa::FReg;
        let mut chained = vec![
            Instruction::Addiu {
                rt: Reg::T0,
                rs: Reg::ZERO,
                imm: 1,
            },
            Instruction::Mtc1 {
                rt: Reg::T0,
                fs: FReg::new(0),
            },
            Instruction::CLtS {
                fs: FReg::new(0),
                ft: FReg::new(0),
            },
            Instruction::Bc1t { offset: 0 },
        ];
        chained.extend(halt());
        let r = lint(&chained);
        assert!(
            !r.diagnostics.iter().any(|d| d.check == "use-before-def"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn location_set_encoding_is_stable() {
        // Regression pin for the 67-bit location-set layout: integer regs
        // in bits 0..32, FP regs in 32..64, then HI, LO, FCC. A change
        // here silently breaks persisted summaries and loc_name.
        use codepack_isa::FReg;
        assert_eq!(r(Reg::ZERO), 1u128);
        assert_eq!(r(Reg::RA), 1u128 << 31);
        assert_eq!(f(FReg::new(0)), 1u128 << 32);
        assert_eq!(f(FReg::new(31)), 1u128 << 63);
        assert_eq!(HI_BIT, 64);
        assert_eq!(LO_BIT, 65);
        assert_eq!(FCC_BIT, 66);
        assert_eq!(ALL_LOCATIONS, (1u128 << 67) - 1);
        assert_eq!(ALL_LOCATIONS.count_ones(), 67);

        // uses_defs agrees with the encoding for the special locations.
        let (u, d) = uses_defs(&Instruction::Mult {
            rs: Reg::T0,
            rt: Reg::T1,
        });
        assert_eq!(u, r(Reg::T0) | r(Reg::T1));
        assert_eq!(d, (1u128 << HI_BIT) | (1u128 << LO_BIT));
        let (u, d) = uses_defs(&Instruction::Mflo { rd: Reg::T2 });
        assert_eq!(u, 1u128 << LO_BIT);
        assert_eq!(d, r(Reg::T2));
        let (u, d) = uses_defs(&Instruction::Bc1t { offset: 3 });
        assert_eq!(u, 1u128 << FCC_BIT);
        assert_eq!(d, 0);
        assert_eq!(loc_name(HI_BIT), "HI");
        assert_eq!(loc_name(LO_BIT), "LO");
        assert_eq!(loc_name(FCC_BIT), "FCC");
        assert_eq!(loc_name(33), "$f1");
    }

    #[test]
    fn callee_sees_ra_defined() {
        use codepack_isa::TEXT_BASE;
        // f uses $ra via jr — defined by the jal edge, not at entry.
        let p = vec![
            Instruction::Jal {
                target: (TEXT_BASE >> 2) + 3,
            },
            Instruction::Addiu {
                rt: Reg::V0,
                rs: Reg::ZERO,
                imm: 10,
            },
            Instruction::Syscall,
            Instruction::Jr { rs: Reg::RA },
        ];
        let r = lint(&p);
        assert!(
            !r.diagnostics.iter().any(|d| d.check == "use-before-def"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn fp_flag_read_before_compare_is_flagged() {
        let mut p = vec![Instruction::Bc1t { offset: 0 }];
        p.extend(halt());
        let r = lint(&p);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.check == "use-before-def")
            .expect("flagged");
        assert!(d.message.contains("FCC"), "{}", d.message);
    }
}
