//! Diagnostics: what `sr32lint` reports and how.
//!
//! Every check emits [`Diagnostic`]s into a [`LintReport`]. A diagnostic has
//! a [`Severity`], a stable check name (kebab-case, used for filtering and in
//! CI assertions), an optional faulting address, a one-line message, and
//! optional disassembly context lines.
//!
//! The severity model (see DESIGN.md "Static analysis"):
//!
//! * **Error** — the artifact is provably broken: executing (or
//!   decompressing) it would trap, decode garbage, or diverge from the
//!   native image. Errors make [`LintReport::is_clean`] false and drive the
//!   CLI's nonzero exit.
//! * **Warning** — statically suspicious but not provably fatal: dead code,
//!   a register read on some path before any write, slack bytes in the
//!   compressed stream.
//! * **Info** — observations with no quality judgement (statistics,
//!   coverage notes).

use std::fmt;

use codepack_obs::JsonWriter;

/// How bad a finding is. Ordered: `Info < Warning < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Neutral observation.
    Info,
    /// Suspicious but not provably fatal.
    Warning,
    /// Provably broken; fails the lint gate.
    Error,
}

impl Severity {
    /// Lower-case name used in human and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding from one check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Stable kebab-case check name, e.g. `"illegal-encoding"`.
    pub check: &'static str,
    /// Faulting address in the native address space, when one exists.
    pub addr: Option<u32>,
    /// One-line description.
    pub message: String,
    /// Disassembly (or hex-dump) context lines.
    pub context: Vec<String>,
}

impl Diagnostic {
    /// An [`Severity::Error`] diagnostic.
    pub fn error(check: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            check,
            addr: None,
            message: message.into(),
            context: Vec::new(),
        }
    }

    /// A [`Severity::Warning`] diagnostic.
    pub fn warning(check: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(check, message)
        }
    }

    /// An [`Severity::Info`] diagnostic.
    pub fn info(check: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Info,
            ..Diagnostic::error(check, message)
        }
    }

    /// Attaches the faulting native address.
    pub fn at(mut self, addr: u32) -> Diagnostic {
        self.addr = Some(addr);
        self
    }

    /// Attaches a context line (disassembly, hex dump, expected/got pair).
    pub fn with_context(mut self, line: impl Into<String>) -> Diagnostic {
        self.context.push(line.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.check)?;
        if let Some(addr) = self.addr {
            write!(f, " {addr:#010x}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Static compression-ratio report: the walker's independent recount next
/// to the codec's claim. The lint gate requires them to agree exactly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RatioReport {
    /// Ratio recomputed by the static stream walk.
    pub static_ratio: f64,
    /// Ratio claimed by the image's stored [`CompositionStats`].
    ///
    /// [`CompositionStats`]: codepack_core::CompositionStats
    pub codec_ratio: f64,
    /// Native text bytes.
    pub original_bytes: u64,
    /// Compressed total (stream + index + dictionaries), per the walk.
    pub compressed_bytes: u64,
}

/// Everything one lint run found, plus enough metadata to render it.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// What was linted (profile name or file path).
    pub target: String,
    /// Findings, in emission order.
    pub diagnostics: Vec<Diagnostic>,
    /// Names of the checks that ran (whether or not they fired).
    pub checks_run: Vec<&'static str>,
    /// Static-vs-codec ratio cross-check, when an image was linted.
    pub ratio: Option<RatioReport>,
    /// Per-check counts of findings suppressed past that check's emission
    /// cap, sorted by check name. Structured so callers (and the JSON
    /// output) can see how much a capped check left unreported.
    pub suppressed: Vec<(&'static str, u64)>,
}

impl LintReport {
    /// An empty report for `target`.
    pub fn new(target: impl Into<String>) -> LintReport {
        LintReport {
            target: target.into(),
            ..LintReport::default()
        }
    }

    /// Records that a check ran (idempotent).
    pub fn ran(&mut self, check: &'static str) {
        if !self.checks_run.contains(&check) {
            self.checks_run.push(check);
        }
    }

    /// Adds a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Records that `n` further findings from `check` were suppressed past
    /// its emission cap (accumulates; keeps the list sorted by check name).
    pub fn suppress(&mut self, check: &'static str, n: u64) {
        if n == 0 {
            return;
        }
        match self.suppressed.binary_search_by(|(c, _)| c.cmp(&check)) {
            Ok(i) => self.suppressed[i].1 += n,
            Err(i) => self.suppressed.insert(i, (check, n)),
        }
    }

    /// Total findings suppressed across all checks.
    pub fn total_suppressed(&self) -> u64 {
        self.suppressed.iter().map(|&(_, n)| n).sum()
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// `true` when no error-severity diagnostic fired. Warnings and infos
    /// do not break the gate.
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// Human-readable report: findings (most severe first), then the ratio
    /// cross-check, then a one-line summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("sr32lint: {}\n", self.target);
        let mut sorted: Vec<&Diagnostic> = self.diagnostics.iter().collect();
        sorted.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.addr.cmp(&b.addr)));
        for d in sorted {
            let _ = writeln!(out, "  {d}");
            for line in &d.context {
                let _ = writeln!(out, "      {line}");
            }
        }
        for &(check, n) in &self.suppressed {
            let _ = writeln!(out, "  suppressed[{check}]: {n} further finding(s)");
        }
        if let Some(r) = &self.ratio {
            let _ = writeln!(
                out,
                "  ratio: static {:.4} vs codec {:.4} ({} -> {} bytes)",
                r.static_ratio, r.codec_ratio, r.original_bytes, r.compressed_bytes
            );
        }
        let _ = writeln!(
            out,
            "  {} error(s), {} warning(s); {} check(s) run",
            self.errors(),
            self.warnings(),
            self.checks_run.len()
        );
        out
    }

    /// The report as a JSON document (built with [`JsonWriter`], so it
    /// always parses).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("tool", "sr32lint");
        w.field_str("target", &self.target);
        w.field_u64("errors", self.errors() as u64);
        w.field_u64("warnings", self.warnings() as u64);
        w.field_bool("clean", self.is_clean());
        w.key("checks_run").begin_array();
        for c in &self.checks_run {
            w.string(c);
        }
        w.end_array();
        w.key("ratio");
        match &self.ratio {
            Some(r) => {
                w.begin_object();
                w.field_f64("static_ratio", r.static_ratio);
                w.field_f64("codec_ratio", r.codec_ratio);
                w.field_u64("original_bytes", r.original_bytes);
                w.field_u64("compressed_bytes", r.compressed_bytes);
                w.end_object();
            }
            None => {
                w.null();
            }
        }
        w.key("suppressed").begin_array();
        for &(check, n) in &self.suppressed {
            w.begin_object();
            w.field_str("check", check);
            w.field_u64("count", n);
            w.end_object();
        }
        w.end_array();
        w.key("diagnostics").begin_array();
        for d in &self.diagnostics {
            w.begin_object();
            w.field_str("severity", d.severity.as_str());
            w.field_str("check", d.check);
            w.key("addr");
            match d.addr {
                Some(a) => {
                    w.string(&format!("{a:#010x}"));
                }
                None => {
                    w.null();
                }
            }
            w.field_str("message", &d.message);
            w.key("context").begin_array();
            for line in &d.context {
                w.string(line);
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

/// Per-check emission counter: emits diagnostics up to a cap, then counts
/// the remainder into [`LintReport::suppressed`] so nothing is silently
/// dropped. Every chatty check routes its findings through one of these.
pub struct Capped {
    check: &'static str,
    cap: usize,
    emitted: usize,
    suppressed: u64,
}

impl Capped {
    /// A counter for `check` that emits at most `cap` diagnostics.
    pub fn new(check: &'static str, cap: usize) -> Capped {
        Capped {
            check,
            cap,
            emitted: 0,
            suppressed: 0,
        }
    }

    /// Emits `d` into `report`, or counts it as suppressed past the cap.
    pub fn push(&mut self, report: &mut LintReport, d: Diagnostic) {
        if self.emitted < self.cap {
            self.emitted += 1;
            report.push(d);
        } else {
            self.suppressed += 1;
        }
    }

    /// Folds the suppressed count into the report (call once, at the end).
    pub fn finish(self, report: &mut LintReport) {
        report.suppress(self.check, self.suppressed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codepack_obs::json::{self, Value};

    #[test]
    fn severity_orders_and_prints() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn report_counts_and_gate() {
        let mut r = LintReport::new("t");
        assert!(r.is_clean());
        r.push(Diagnostic::warning("dead-code", "unreachable run"));
        assert!(r.is_clean());
        r.push(Diagnostic::error("illegal-encoding", "bad word").at(0x0040_0010));
        assert!(!r.is_clean());
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
    }

    #[test]
    fn render_sorts_errors_first() {
        let mut r = LintReport::new("t");
        r.push(Diagnostic::info("note", "fyi"));
        r.push(Diagnostic::error("boom", "broken").at(4));
        let text = r.render();
        let boom = text.find("boom").unwrap();
        let note = text.find("note").unwrap();
        assert!(boom < note, "errors render before infos:\n{text}");
    }

    #[test]
    fn capped_records_suppressed_in_both_renderings() {
        let mut r = LintReport::new("t");
        let mut cap = Capped::new("dict-slot", 3);
        for i in 0..10 {
            cap.push(&mut r, Diagnostic::error("dict-slot", format!("bad {i}")));
        }
        cap.finish(&mut r);
        assert_eq!(r.diagnostics.len(), 3, "emission stops at the cap");
        assert_eq!(r.suppressed, vec![("dict-slot", 7)]);
        assert_eq!(r.total_suppressed(), 7);

        let text = r.render();
        assert!(
            text.contains("suppressed[dict-slot]: 7 further finding(s)"),
            "{text}"
        );

        let v = json::parse(&r.to_json()).unwrap();
        let sup = v.get("suppressed").and_then(Value::as_array).unwrap();
        assert_eq!(sup.len(), 1);
        assert_eq!(
            sup[0].get("check").and_then(Value::as_str),
            Some("dict-slot")
        );
        assert_eq!(sup[0].get("count").and_then(Value::as_u64), Some(7));

        // A second counter for the same check accumulates.
        let mut again = Capped::new("dict-slot", 0);
        again.push(&mut r, Diagnostic::error("dict-slot", "more"));
        again.finish(&mut r);
        assert_eq!(r.suppressed, vec![("dict-slot", 8)]);

        // An uncapped check never appears.
        let quiet = Capped::new("stream-slack", 4);
        quiet.finish(&mut r);
        assert_eq!(r.suppressed.len(), 1);
    }

    #[test]
    fn json_round_trips() {
        let mut r = LintReport::new("cc1");
        r.ran("cfg");
        r.push(
            Diagnostic::error("jump-target", "out of bounds")
                .at(0x0040_0000)
                .with_context("0x00400000: j 0xdeadbee0"),
        );
        r.ratio = Some(RatioReport {
            static_ratio: 0.59,
            codec_ratio: 0.59,
            original_bytes: 100,
            compressed_bytes: 59,
        });
        let v = json::parse(&r.to_json()).unwrap();
        assert_eq!(v.get("target").and_then(Value::as_str), Some("cc1"));
        assert_eq!(v.get("errors").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("clean").and_then(Value::as_bool), Some(false));
        let diags = v.get("diagnostics").and_then(Value::as_array).unwrap();
        assert_eq!(
            diags[0].get("addr").and_then(Value::as_str),
            Some("0x00400000")
        );
        let ratio = v.get("ratio").unwrap();
        assert_eq!(
            ratio.get("static_ratio").and_then(Value::as_f64),
            Some(0.59)
        );
    }
}
