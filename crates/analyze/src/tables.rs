//! Decode-table soundness prover.
//!
//! [`codepack_core::FastDecoder`] resolves codewords with one lookup in a
//! precomputed table; the scalar [`codepack_core::BitReader`] path reads
//! tag and index bit-by-bit. The two are differentially *tested* against
//! each other elsewhere — this module instead **proves** the table sound
//! by exhaustive enumeration: for every possible bit window (all
//! `2^window_bits` of them) it re-derives, from the scalar tag semantics
//! and the dictionary alone, what the table entry must say, and compares
//! against the entry the decoder actually built (read through the hidden
//! [`codepack_core::TableView`] inspection surface).
//!
//! The derivation is the scalar protocol verbatim: read 2 bits through a
//! real `BitReader` positioned over the window; a value `<= 0b01` is a
//! complete 2-bit tag, otherwise one more bit completes a 3-bit tag. The
//! raw tag (`111`) must map to a `Raw` entry consuming exactly the tag.
//! Any other tag selects a codeword class from [`codepack_core::layout`];
//! if tag + index bits exceed the window the entry must be `TooLong`,
//! otherwise the index bits give a rank whose entry must be a `Hit`
//! carrying the dictionary value (rank in range) or a `BadRank` carrying
//! the offending rank (out of range) — consuming tag + index bits either
//! way.
//!
//! Checks (stable names, all Error severity — a wrong table entry means
//! the hot path can silently mis-decode):
//!
//! * `decode-table-shape` — table size is `2^window_bits`, the window is
//!   within the decoder's supported range, and the recorded dictionary
//!   length matches the dictionary.
//! * `decode-table-kind` — an entry resolves a window to the wrong kind.
//! * `decode-table-consumed` — an entry consumes the wrong bit count.
//! * `decode-table-payload` — an entry carries the wrong half-word value
//!   or rank.

use codepack_core::layout::{CodewordClass, HIGH_CLASSES, LOW_CLASSES, RAW_TAG, RAW_TAG_BITS};
use codepack_core::{BitReader, Dictionary, FastDecoder, TableEntry, TableEntryKind, TableView};

use crate::diag::{Capped, Diagnostic, LintReport};

/// How many diagnostics each table check emits before suppressing.
const PER_CHECK_CAP: usize = 8;

/// Derives the entry a sound table must hold for `window`, from the scalar
/// tag semantics (via a real [`BitReader`] over the window bits) and the
/// dictionary contents alone.
fn expected_entry(
    window: u32,
    window_bits: u32,
    dict: &Dictionary,
    classes: &[CodewordClass; 5],
) -> TableEntry {
    // The window, left-aligned in two bytes: the reader sees exactly the
    // stream prefix the table indexes on. Reads beyond `window_bits` are
    // guarded below, never issued against the padding.
    let bytes = ((window as u16) << (16 - window_bits)).to_be_bytes();
    let mut reader = BitReader::new(&bytes);

    let first_two = reader.read(2).expect("window_bits >= 3") as u8;
    let (tag, tag_bits) = if first_two <= 0b01 {
        (first_two, 2u8)
    } else {
        (
            (first_two << 1) | reader.read(1).expect("window_bits >= 3") as u8,
            3u8,
        )
    };
    if tag == RAW_TAG {
        return TableEntry {
            kind: TableEntryKind::Raw,
            consumed: u32::from(RAW_TAG_BITS),
            payload: 0,
        };
    }
    let class = classes
        .iter()
        .find(|c| c.tag == tag && c.tag_bits == tag_bits)
        .expect("tags tile the prefix code");
    let needed = u32::from(class.len_bits());
    if needed > window_bits {
        return TableEntry {
            kind: TableEntryKind::TooLong,
            consumed: 0,
            payload: 0,
        };
    }
    let idx = reader.read(u32::from(class.index_bits)).expect("in window") as u16;
    let rank = class.base + idx;
    match dict.value(rank) {
        Some(v) => TableEntry {
            kind: TableEntryKind::Hit,
            consumed: needed,
            payload: v,
        },
        None => TableEntry {
            kind: TableEntryKind::BadRank,
            consumed: needed,
            payload: rank,
        },
    }
}

fn kind_name(kind: TableEntryKind) -> &'static str {
    match kind {
        TableEntryKind::Hit => "hit",
        TableEntryKind::Raw => "raw",
        TableEntryKind::BadRank => "bad-rank",
        TableEntryKind::TooLong => "too-long",
    }
}

/// Shared per-check suppression counters for one prover run (both
/// tables feed the same caps, so the suppressed totals are per report).
struct TableCaps {
    shape: Capped,
    kind: Capped,
    consumed: Capped,
    payload: Capped,
}

impl TableCaps {
    fn new() -> TableCaps {
        TableCaps {
            shape: Capped::new("decode-table-shape", PER_CHECK_CAP),
            kind: Capped::new("decode-table-kind", PER_CHECK_CAP),
            consumed: Capped::new("decode-table-consumed", PER_CHECK_CAP),
            payload: Capped::new("decode-table-payload", PER_CHECK_CAP),
        }
    }

    fn finish(self, report: &mut LintReport) {
        self.shape.finish(report);
        self.kind.finish(report);
        self.consumed.finish(report);
        self.payload.finish(report);
    }
}

/// Proves one table sound against its dictionary.
fn check_table(
    view: &TableView<'_>,
    dict: &Dictionary,
    classes: &'static [CodewordClass; 5],
    which: &str,
    report: &mut LintReport,
    caps: &mut TableCaps,
) {
    let wb = view.window_bits();
    if !(u32::from(RAW_TAG_BITS)..=16).contains(&wb) || view.len() != 1usize << wb {
        caps.shape.push(
            report,
            Diagnostic::error(
                "decode-table-shape",
                format!(
                    "{which} table claims a {wb}-bit window but holds {} entr(ies); \
                     a sound table holds 2^window_bits with 3 <= window_bits <= 16",
                    view.len()
                ),
            ),
        );
        return; // Enumeration below assumes the shape holds.
    }
    if view.dict_len() != dict.len() {
        caps.shape.push(
            report,
            Diagnostic::error(
                "decode-table-shape",
                format!(
                    "{which} table encodes rank bounds for a {}-entry dictionary \
                     but the dictionary holds {} entries",
                    view.dict_len(),
                    dict.len()
                ),
            ),
        );
    }

    for window in 0..view.len() as u32 {
        let want = expected_entry(window, wb, dict, classes);
        let got = view.entry(window as usize);
        let ctx = format!("{which} window {window:0width$b}", width = wb as usize);
        if got.kind != want.kind {
            caps.kind.push(
                report,
                Diagnostic::error(
                    "decode-table-kind",
                    format!(
                        "{ctx}: table resolves to {} but scalar semantics require {}",
                        kind_name(got.kind),
                        kind_name(want.kind)
                    ),
                ),
            );
            continue; // Consumed/payload comparisons are per-kind.
        }
        if got.consumed != want.consumed {
            caps.consumed.push(
                report,
                Diagnostic::error(
                    "decode-table-consumed",
                    format!(
                        "{ctx}: table consumes {} bit(s) but the {} codeword is {} bit(s)",
                        got.consumed,
                        kind_name(want.kind),
                        want.consumed
                    ),
                ),
            );
        }
        if got.payload != want.payload {
            caps.payload.push(
                report,
                Diagnostic::error(
                    "decode-table-payload",
                    format!(
                        "{ctx}: table carries payload {:#06x} but scalar decode yields {:#06x}",
                        got.payload, want.payload
                    ),
                ),
            );
        }
    }
}

/// Exhaustively proves both of a decoder's tables sound against the
/// dictionaries they were built from: every one of the `2^window_bits`
/// windows per table must agree with scalar tag semantics on kind,
/// consumed bit count, and payload.
pub fn check_decode_tables(
    decoder: &FastDecoder,
    high_dict: &Dictionary,
    low_dict: &Dictionary,
    report: &mut LintReport,
) {
    report.ran("decode-table-shape");
    report.ran("decode-table-kind");
    report.ran("decode-table-consumed");
    report.ran("decode-table-payload");
    let mut caps = TableCaps::new();
    for (high, dict, classes, which) in [
        (true, high_dict, &HIGH_CLASSES, "high"),
        (false, low_dict, &LOW_CLASSES, "low"),
    ] {
        check_table(
            &decoder.inspect(high),
            dict,
            classes,
            which,
            report,
            &mut caps,
        );
    }
    caps.finish(report);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dicts() -> (Dictionary, Dictionary) {
        // Small dictionaries leave most ranks unmapped, so every entry
        // kind (hit, raw, bad-rank) appears in the default-window tables.
        let high = Dictionary::from_ranked_values(vec![0x2402, 0x3c01, 0x8c62]);
        let low = Dictionary::from_ranked_values(vec![0x0000, 0x0001, 0x0010]);
        (high, low)
    }

    fn prove(decoder: &FastDecoder) -> LintReport {
        let (high, low) = dicts();
        let mut report = LintReport::new("tables");
        check_decode_tables(decoder, &high, &low, &mut report);
        report
    }

    #[test]
    fn default_window_tables_prove_sound() {
        let (high, low) = dicts();
        let report = prove(&FastDecoder::new(&high, &low));
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.warnings(), 0);
        assert!(report.checks_run.contains(&"decode-table-kind"));
    }

    #[test]
    fn narrow_windows_prove_sound_including_too_long_entries() {
        let (high, low) = dicts();
        for window_bits in [3, 4, 6, 8, 10] {
            let decoder = FastDecoder::with_window(&high, &low, window_bits);
            let report = prove(&decoder);
            assert!(
                report.is_clean(),
                "window {window_bits}: {}",
                report.render()
            );
        }
    }

    #[test]
    fn full_dictionaries_prove_sound() {
        // No bad-rank entries at all when every rank is mapped.
        use codepack_core::layout::{HIGH_DICT_CAPACITY, LOW_DICT_CAPACITY};
        let high =
            Dictionary::from_ranked_values((0..HIGH_DICT_CAPACITY).map(|i| i << 4).collect());
        let low = Dictionary::from_ranked_values((0..LOW_DICT_CAPACITY).collect());
        let mut report = LintReport::new("full");
        let decoder = FastDecoder::new(&high, &low);
        check_decode_tables(&decoder, &high, &low, &mut report);
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn poisoned_payload_is_rejected() {
        let (high, low) = dicts();
        let mut decoder = FastDecoder::new(&high, &low);
        // Window 0 in the high table: tag 00 + index 00 -> rank 0, a hit.
        decoder.poison_entry(true, 0, 0x0001);
        let report = prove(&decoder);
        assert!(!report.is_clean());
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.check == "decode-table-payload")
            .expect("payload mismatch reported");
        assert!(d.message.contains("high window"), "{}", d.message);
    }

    #[test]
    fn poisoned_consumed_length_is_rejected() {
        let (high, low) = dicts();
        let mut decoder = FastDecoder::new(&high, &low);
        // Flip a bit inside the consumed-length field (bits 16..22).
        decoder.poison_entry(false, 0, 1 << 16);
        let report = prove(&decoder);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.check == "decode-table-consumed" && d.message.contains("low window")));
    }

    #[test]
    fn poisoned_kind_is_rejected() {
        let (high, low) = dicts();
        let mut decoder = FastDecoder::new(&high, &low);
        // Flip the kind field (bits 24..): a hit becomes something else.
        decoder.poison_entry(true, 0, 1 << 24);
        let report = prove(&decoder);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.check == "decode-table-kind"));
    }

    #[test]
    fn mass_poisoning_is_capped_with_suppressed_count() {
        let (high, low) = dicts();
        let mut decoder = FastDecoder::new(&high, &low);
        for window in 0..64 {
            decoder.poison_entry(true, window, 0x0001);
        }
        let report = prove(&decoder);
        let emitted = report
            .diagnostics
            .iter()
            .filter(|d| d.check == "decode-table-payload")
            .count();
        assert_eq!(emitted, PER_CHECK_CAP);
        let suppressed = report
            .suppressed
            .iter()
            .find(|(c, _)| *c == "decode-table-payload")
            .map(|&(_, n)| n)
            .expect("suppressed count recorded");
        assert_eq!(suppressed as usize, 64 - PER_CHECK_CAP);
    }
}
