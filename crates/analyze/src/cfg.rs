//! Control-flow recovery and static CFG checks over SR32 text.
//!
//! The recovery is linear-sweep decode plus reachability from the entry
//! point: every word is decoded (so illegal encodings are found even in
//! dead regions), then a worklist walk from the entry — treating `jal`
//! targets as additional roots, since the generated programs call only
//! through direct `jal` — marks what can execute.
//!
//! Checks (stable names used in diagnostics):
//!
//! * `illegal-encoding` — a word that does not decode. Error when
//!   reachable, Warning in dead code (a decompressor bug there still
//!   corrupts nothing that runs).
//! * `branch-target` / `jump-target` — a reachable control transfer whose
//!   target lies outside the text section. Jump byte targets are also
//!   checked for word alignment (structural for SR32, but asserted rather
//!   than assumed).
//! * `fall-off-end` — a reachable path that runs past the last text word.
//!   `syscall` as the final instruction is the halt idiom and is accepted.
//! * `dead-code` — maximal runs of unreachable instructions, one Warning
//!   per run.

use codepack_isa::{decode_at, DecodeError, Instruction, Program, TEXT_BASE};

use crate::diag::{Capped, Diagnostic, LintReport};

/// How many individual diagnostics a single check emits before suppressing
/// the remainder into [`LintReport::suppressed`].
const PER_CHECK_CAP: usize = 16;

/// How control leaves an instruction, in instruction-index space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flow {
    /// Falls through to the next instruction.
    Next,
    /// Unconditional jump to an absolute instruction index (may be out of
    /// bounds — that is what the check is for).
    Jump(i64),
    /// Conditional branch: falls through or goes to the index.
    Branch(i64),
    /// Call: control returns to the next instruction; `Some` target for
    /// `jal`, `None` for the indirect `jalr`.
    Call(Option<i64>),
    /// Indirect return (`jr`).
    Return,
    /// Trap (`break`) — execution does not continue.
    Trap,
    /// `syscall` — falls through, but is also the halt idiom, so it is a
    /// legal final instruction.
    Halt,
}

/// The recovered control-flow facts for one program.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Per-word decode results, in text order.
    pub insns: Vec<Result<Instruction, DecodeError>>,
    /// Can instruction `i` execute on some path from the entry?
    pub reachable: Vec<bool>,
    /// Entry instruction index.
    pub entry: u32,
}

impl Cfg {
    /// Number of instructions.
    pub fn len(&self) -> u32 {
        self.insns.len() as u32
    }

    /// `true` for an empty text section.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Native address of instruction index `i`.
    pub fn addr_of(&self, i: u32) -> u32 {
        TEXT_BASE + 4 * i
    }

    /// How control leaves instruction `i` (undecodable words get
    /// [`Flow::Trap`]: the machine cannot continue past them).
    pub fn flow_of(&self, i: u32) -> Flow {
        let Ok(insn) = &self.insns[i as usize] else {
            return Flow::Trap;
        };
        flow_of(insn, i)
    }

    /// Disassembly context line for instruction `i`.
    pub fn context_line(&self, i: u32) -> String {
        let addr = self.addr_of(i);
        match &self.insns[i as usize] {
            Ok(insn) => format!("{addr:#010x}: {insn}"),
            Err(e) => format!("{addr:#010x}: .word {:#010x} ; {}", e.word, e.kind),
        }
    }
}

/// Instruction index of the jump/call target `t` (a word address `>> 2`
/// within the current 256 MiB region), relative to the text base.
fn jump_index(target: u32) -> i64 {
    i64::from(target) - i64::from(TEXT_BASE >> 2)
}

/// Instruction index a branch at `i` with `offset` lands on.
fn branch_index(i: u32, offset: i16) -> i64 {
    i64::from(i) + 1 + i64::from(offset)
}

fn flow_of(insn: &Instruction, i: u32) -> Flow {
    match *insn {
        Instruction::J { target } => Flow::Jump(jump_index(target)),
        Instruction::Jal { target } => Flow::Call(Some(jump_index(target))),
        Instruction::Jalr { .. } => Flow::Call(None),
        Instruction::Jr { .. } => Flow::Return,
        Instruction::Break => Flow::Trap,
        Instruction::Syscall => Flow::Halt,
        Instruction::Beq { offset, .. }
        | Instruction::Bne { offset, .. }
        | Instruction::Blez { offset, .. }
        | Instruction::Bgtz { offset, .. }
        | Instruction::Bltz { offset, .. }
        | Instruction::Bgez { offset, .. }
        | Instruction::Bc1t { offset }
        | Instruction::Bc1f { offset } => Flow::Branch(branch_index(i, offset)),
        _ => Flow::Next,
    }
}

/// Decodes the whole text section and computes reachability from the
/// program entry (plus `jal` targets as call roots).
pub fn recover_cfg(program: &Program) -> Cfg {
    let insns: Vec<Result<Instruction, DecodeError>> = program
        .text_words()
        .iter()
        .enumerate()
        .map(|(i, &w)| decode_at(TEXT_BASE + 4 * i as u32, w))
        .collect();
    let n = insns.len() as u32;
    let entry = (program.entry() - TEXT_BASE) / 4;

    let mut cfg = Cfg {
        insns,
        reachable: vec![false; n as usize],
        entry,
    };

    let mut work: Vec<u32> = Vec::new();
    let push = |work: &mut Vec<u32>, reachable: &mut [bool], idx: i64| {
        if (0..i64::from(n)).contains(&idx) && !reachable[idx as usize] {
            reachable[idx as usize] = true;
            work.push(idx as u32);
        }
    };
    push(&mut work, &mut cfg.reachable, i64::from(entry));
    while let Some(i) = work.pop() {
        match cfg.flow_of(i) {
            Flow::Next | Flow::Halt => push(&mut work, &mut cfg.reachable, i64::from(i) + 1),
            Flow::Jump(t) => push(&mut work, &mut cfg.reachable, t),
            Flow::Branch(t) => {
                push(&mut work, &mut cfg.reachable, i64::from(i) + 1);
                push(&mut work, &mut cfg.reachable, t);
            }
            Flow::Call(t) => {
                push(&mut work, &mut cfg.reachable, i64::from(i) + 1);
                if let Some(t) = t {
                    push(&mut work, &mut cfg.reachable, t);
                }
            }
            Flow::Return | Flow::Trap => {}
        }
    }
    cfg
}

/// Runs every CFG-level check, emitting into `report`.
pub fn check_cfg(cfg: &Cfg, report: &mut LintReport) {
    report.ran("illegal-encoding");
    report.ran("branch-target");
    report.ran("jump-target");
    report.ran("fall-off-end");
    report.ran("dead-code");

    check_encodings(cfg, report);
    check_transfers(cfg, report);
    check_fall_off_end(cfg, report);
    check_dead_code(cfg, report);
}

fn check_encodings(cfg: &Cfg, report: &mut LintReport) {
    let mut cap = Capped::new("illegal-encoding", PER_CHECK_CAP);
    for (i, insn) in cfg.insns.iter().enumerate() {
        let Err(e) = insn else { continue };
        let d = if cfg.reachable[i] {
            Diagnostic::error("illegal-encoding", format!("{e}"))
        } else {
            Diagnostic::warning("illegal-encoding", format!("{e} (in unreachable code)"))
        };
        cap.push(
            report,
            d.at(e.addr).with_context(cfg.context_line(i as u32)),
        );
    }
    cap.finish(report);
}

fn check_transfers(cfg: &Cfg, report: &mut LintReport) {
    let n = i64::from(cfg.len());
    for i in 0..cfg.len() {
        if !cfg.reachable[i as usize] {
            continue;
        }
        let (check, target) = match cfg.flow_of(i) {
            Flow::Jump(t) | Flow::Call(Some(t)) => ("jump-target", t),
            Flow::Branch(t) => ("branch-target", t),
            _ => continue,
        };
        // Jump byte targets are target<<2 and branch offsets are whole
        // instructions, so misalignment cannot be *encoded* — asserted
        // here so the invariant is checked, not assumed.
        let byte_addr = i64::from(TEXT_BASE) + 4 * target;
        debug_assert_eq!(byte_addr % 4, 0);
        if !(0..n).contains(&target) {
            report.push(
                Diagnostic::error(
                    check,
                    format!(
                        "target {:#010x} is outside the text section \
                         [{TEXT_BASE:#010x}, {:#010x})",
                        byte_addr,
                        i64::from(TEXT_BASE) + 4 * n,
                    ),
                )
                .at(cfg.addr_of(i))
                .with_context(cfg.context_line(i)),
            );
        }
    }
}

fn check_fall_off_end(cfg: &Cfg, report: &mut LintReport) {
    let n = cfg.len();
    if n == 0 {
        report.push(Diagnostic::error("fall-off-end", "empty text section"));
        return;
    }
    for i in 0..n {
        if !cfg.reachable[i as usize] {
            continue;
        }
        let falls_through = match cfg.flow_of(i) {
            Flow::Next | Flow::Branch(_) | Flow::Call(_) => true,
            // `syscall` in final position is the halt idiom.
            Flow::Halt | Flow::Jump(_) | Flow::Return | Flow::Trap => false,
        };
        if falls_through && i + 1 == n {
            report.push(
                Diagnostic::error(
                    "fall-off-end",
                    "a reachable path runs past the last text word",
                )
                .at(cfg.addr_of(i))
                .with_context(cfg.context_line(i)),
            );
        }
    }
}

fn check_dead_code(cfg: &Cfg, report: &mut LintReport) {
    let mut cap = Capped::new("dead-code", PER_CHECK_CAP);
    let mut i = 0u32;
    let n = cfg.len();
    while i < n {
        if cfg.reachable[i as usize] {
            i += 1;
            continue;
        }
        let start = i;
        while i < n && !cfg.reachable[i as usize] {
            i += 1;
        }
        let len = i - start;
        // A trailing run of NOP words is alignment padding, not dead code.
        let all_nops = (start..i).all(|j| cfg.insns[j as usize] == Ok(Instruction::NOP));
        if i == n && all_nops {
            continue;
        }
        cap.push(
            report,
            Diagnostic::warning(
                "dead-code",
                format!(
                    "{len} unreachable instruction(s) in [{:#010x}, {:#010x})",
                    cfg.addr_of(start),
                    cfg.addr_of(i)
                ),
            )
            .at(cfg.addr_of(start))
            .with_context(cfg.context_line(start)),
        );
    }
    cap.finish(report);
}

/// Encodes a short hand-written program for tests.
#[cfg(test)]
pub(crate) fn program_of(words: &[u32]) -> Program {
    Program::new("test", words.to_vec(), Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use codepack_isa::{encode, Reg};

    fn words(insns: &[Instruction]) -> Vec<u32> {
        insns.iter().map(|&i| encode(i)).collect()
    }

    fn lint(words: &[u32]) -> LintReport {
        let program = program_of(words);
        let cfg = recover_cfg(&program);
        let mut report = LintReport::new("test");
        check_cfg(&cfg, &mut report);
        report
    }

    fn halt_pair() -> Vec<Instruction> {
        vec![
            Instruction::Addiu {
                rt: Reg::V0,
                rs: Reg::ZERO,
                imm: 10,
            },
            Instruction::Syscall,
        ]
    }

    #[test]
    fn clean_program_is_clean() {
        let r = lint(&words(&halt_pair()));
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(r.warnings(), 0, "{}", r.render());
    }

    #[test]
    fn fall_off_end_detected() {
        let r = lint(&words(&[Instruction::Addiu {
            rt: Reg::V0,
            rs: Reg::ZERO,
            imm: 1,
        }]));
        assert!(r.diagnostics.iter().any(|d| d.check == "fall-off-end"));
        assert!(!r.is_clean());
    }

    #[test]
    fn branch_out_of_bounds_detected() {
        let mut p = vec![Instruction::Beq {
            rs: Reg::ZERO,
            rt: Reg::ZERO,
            offset: 100,
        }];
        p.extend(halt_pair());
        let r = lint(&words(&p));
        assert!(
            r.diagnostics.iter().any(|d| d.check == "branch-target"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn jump_below_text_base_detected() {
        let mut p = vec![Instruction::J { target: 0 }];
        p.extend(halt_pair());
        let r = lint(&words(&p));
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.check == "jump-target" && d.addr == Some(TEXT_BASE)),
            "{}",
            r.render()
        );
    }

    #[test]
    fn illegal_encoding_severity_tracks_reachability() {
        // Reachable bad word: error.
        let mut w = words(&halt_pair());
        w.insert(0, 0xffff_ffff);
        let r = lint(&w);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.check == "illegal-encoding" && d.severity == crate::Severity::Error));

        // Bad word after an unconditional jump over it: warning only —
        // but the skipped word is also a dead-code run.
        let jump_over = vec![
            encode(Instruction::J {
                target: (TEXT_BASE >> 2) + 2,
            }),
            0xffff_ffff,
        ];
        let mut w = jump_over;
        w.extend(words(&halt_pair()));
        let r = lint(&w);
        let enc = r
            .diagnostics
            .iter()
            .find(|d| d.check == "illegal-encoding")
            .expect("reported");
        assert_eq!(enc.severity, crate::Severity::Warning, "{}", r.render());
        assert!(r.diagnostics.iter().any(|d| d.check == "dead-code"));
        assert!(r.is_clean());
    }

    #[test]
    fn trailing_nop_padding_is_not_dead_code() {
        let mut w = words(&halt_pair());
        // jr $ra would end the program; pad with NOP words after halt.
        w.extend([0u32; 5]);
        let r = lint(&w);
        assert!(
            !r.diagnostics.iter().any(|d| d.check == "dead-code"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn jal_target_is_reachability_root() {
        // entry: jal f; halt. f: jr $ra — the function body must be
        // reachable, so no dead-code warning.
        let insns = vec![
            Instruction::Jal {
                target: (TEXT_BASE >> 2) + 3,
            },
            Instruction::Addiu {
                rt: Reg::V0,
                rs: Reg::ZERO,
                imm: 10,
            },
            Instruction::Syscall,
            Instruction::Jr { rs: Reg::RA },
        ];
        let r = lint(&words(&insns));
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(r.warnings(), 0, "{}", r.render());
    }
}
