//! Static verification of a CodePack compressed image — no simulator, no
//! codec decode path: an independent walk of the bit stream driven only by
//! the published layout (`codepack_core::layout`).
//!
//! The walker re-derives, from the stream bytes alone:
//!
//! * every block's byte extent (checked against the index table:
//!   `index-extent`, `index-second-offset`, `index-coverage`),
//! * every codeword's dictionary reference (`dict-slot`, `dict-capacity`),
//! * the inter-block zero padding (`stream-padding` — the canonical
//!   encoder always pads with zeros, so a set pad bit is byte corruption
//!   that the codec itself cannot notice),
//! * a full [`CompositionStats`] recount compared field-by-field against
//!   the stats the image claims (`stats-mismatch`) — this is the static
//!   compression-ratio cross-check surfaced in [`RatioReport`],
//! * the codec's own decoders, both backends, diffed block-by-block
//!   against the walk's decompression (`decode-backend` — the three-way
//!   scalar / fast / static oracle),
//! * and the decompressed text itself, compared byte-for-byte against the
//!   native program when one is available (`decompress-mismatch`).
//!
//! [`RatioReport`]: crate::diag::RatioReport

use codepack_core::layout::{
    index_entry_parts, CodewordClass, BLOCKS_PER_GROUP, BLOCK_INSNS, GROUP_INSNS, HIGH_CLASSES,
    HIGH_DICT_CAPACITY, INDEX_ENTRY_BYTES, LOW_CLASSES, LOW_DICT_CAPACITY, RAW_TAG, RAW_TAG_BITS,
};
use codepack_core::{
    decode_block_bytes, BitReader, CodePackImage, CompositionStats, Dictionary, FastDecoder,
    RomParts,
};
use codepack_isa::{decode, TEXT_BASE};

use crate::diag::{Capped, Diagnostic, LintReport, RatioReport};

/// How many per-word diagnostics one check emits before suppressing the
/// remainder into [`LintReport::suppressed`].
const PER_CHECK_CAP: usize = 8;

/// Everything the walker needs, borrowed from either a live
/// [`CodePackImage`] or raw [`RomParts`].
pub struct ImageParts<'a> {
    /// Native instruction count before group padding.
    pub n_insns: u32,
    /// High dictionary, rank order.
    pub high_values: Vec<u16>,
    /// Low dictionary, rank order.
    pub low_values: Vec<u16>,
    /// Index table, one entry per group.
    pub index: &'a [u32],
    /// The compressed stream.
    pub stream: &'a [u8],
    /// The stats the image claims.
    pub claimed: &'a CompositionStats,
}

impl<'a> ImageParts<'a> {
    /// Borrows the parts of a live image.
    pub fn of_image(image: &'a CodePackImage) -> ImageParts<'a> {
        ImageParts {
            n_insns: image.len_insns(),
            high_values: image.high_dict().iter().map(|(_, v)| v).collect(),
            low_values: image.low_dict().iter().map(|(_, v)| v).collect(),
            index: image.index_table(),
            stream: image.compressed_bytes(),
            claimed: image.stats(),
        }
    }

    /// Borrows the parts of a structurally-parsed ROM.
    pub fn of_rom(rom: &'a RomParts) -> ImageParts<'a> {
        ImageParts {
            n_insns: rom.n_insns,
            high_values: rom.high_values.clone(),
            low_values: rom.low_values.clone(),
            index: &rom.index,
            stream: &rom.stream,
            claimed: &rom.stats,
        }
    }
}

/// Outcome of the static walk.
pub struct StaticWalk {
    /// Stats recomputed from the stream alone.
    pub stats: CompositionStats,
    /// Statically decompressed words (group-padded length); only
    /// meaningful where no walk error fired.
    pub words: Vec<u32>,
    /// Did every block walk without a structural error?
    pub complete: bool,
}

/// Reads one codeword and returns the half-word value, charging `stats`.
/// `Err` carries a diagnostic message.
fn walk_halfword(
    reader: &mut BitReader<'_>,
    values: &[u16],
    classes: &[CodewordClass; 5],
    which: &str,
    stats: &mut CompositionStats,
) -> Result<u16, String> {
    let first_two = reader
        .read(2)
        .map_err(|_| "stream truncated inside a tag".to_string())? as u8;
    let (tag, tag_bits) = if first_two <= 0b01 {
        (first_two, 2u8)
    } else {
        let third = reader
            .read(1)
            .map_err(|_| "stream truncated inside a tag".to_string())? as u8;
        ((first_two << 1) | third, 3u8)
    };
    if tag == RAW_TAG {
        let literal = reader
            .read(16)
            .map_err(|_| "stream truncated inside a raw literal".to_string())?;
        stats.raw_tag_bits += u64::from(RAW_TAG_BITS);
        stats.raw_literal_bits += 16;
        stats.raw_halfwords += 1;
        return Ok(literal as u16);
    }
    let class = classes
        .iter()
        .find(|c| c.tag == tag && c.tag_bits == tag_bits)
        .expect("every non-raw tag pattern maps to a class");
    let index = reader
        .read(u32::from(class.index_bits))
        .map_err(|_| "stream truncated inside a dictionary index".to_string())?;
    stats.compressed_tag_bits += u64::from(class.tag_bits);
    stats.dict_index_bits += u64::from(class.index_bits);
    let rank = class.base + index as u16;
    match values.get(usize::from(rank)) {
        Some(&v) => Ok(v),
        None => Err(format!(
            "{which} codeword (tag {tag:#b}) references dictionary slot {rank}, \
             but the {which} dictionary has only {} entries",
            values.len()
        )),
    }
}

/// Walks one block starting at `byte_offset`; pushes 16 words and charges
/// `stats`. Returns `Err(diagnostic message)` on the first structural
/// fault inside the block. Shared with the `.cpk` frame linter
/// ([`crate::frame`]), which walks the same block encoding inside group
/// payloads.
pub(crate) fn walk_block(
    stream: &[u8],
    high_values: &[u16],
    low_values: &[u16],
    byte_offset: u32,
    base_addr: u32,
    words: &mut Vec<u32>,
    stats: &mut CompositionStats,
) -> Result<u32, String> {
    let slice = stream.get(byte_offset as usize..).ok_or_else(|| {
        format!(
            "block offset {byte_offset} is beyond the {}-byte stream",
            stream.len()
        )
    })?;
    let mut reader = BitReader::new(slice);
    let raw = reader
        .read(1)
        .map_err(|_| "stream truncated at the block mode flag".to_string())?
        == 1;
    if raw {
        stats.raw_tag_bits += 1;
        stats.raw_blocks += 1;
        for _ in 0..BLOCK_INSNS {
            let w = reader
                .read(32)
                .map_err(|_| "stream truncated inside a raw block".to_string())?;
            stats.raw_literal_bits += 32;
            words.push(w);
        }
    } else {
        stats.compressed_tag_bits += 1;
        for j in 0..BLOCK_INSNS {
            let addr = base_addr + 4 * j;
            let high = walk_halfword(&mut reader, high_values, &HIGH_CLASSES, "high", stats)
                .map_err(|m| format!("{m} (instruction at {addr:#010x})"))?;
            let low = walk_halfword(&mut reader, low_values, &LOW_CLASSES, "low", stats)
                .map_err(|m| format!("{m} (instruction at {addr:#010x})"))?;
            words.push((u32::from(high) << 16) | u32::from(low));
        }
    }
    stats.blocks += 1;
    // Inter-block padding to the next byte boundary: counted, and checked
    // to be zero — the canonical encoder never writes set pad bits, so one
    // is stream corruption invisible to the codec.
    let used = reader.bit_pos();
    let pad = (8 - used % 8) % 8;
    if pad > 0 {
        let bits = reader
            .read(pad as u32)
            .map_err(|_| "stream truncated inside block padding".to_string())?;
        stats.pad_bits += pad;
        if bits != 0 {
            return Err(format!(
                "nonzero padding bits {bits:#b} after the block — stream bytes are corrupted"
            ));
        }
    }
    Ok(byte_offset + (reader.bit_pos() / 8) as u32)
}

/// Runs the full static image verification, emitting into `report`.
/// Returns the walk so callers can reuse the recovered text.
pub fn check_image(
    parts: &ImageParts<'_>,
    native: Option<&[u32]>,
    report: &mut LintReport,
) -> StaticWalk {
    for check in [
        "dict-capacity",
        "index-coverage",
        "index-extent",
        "index-second-offset",
        "dict-slot",
        "stream-padding",
        "stream-slack",
        "stats-mismatch",
        "ratio-agreement",
        "decode-backend",
    ] {
        report.ran(check);
    }
    if native.is_some() {
        report.ran("decompress-mismatch");
    }

    let mut stats = CompositionStats {
        original_bytes: u64::from(parts.n_insns) * 4,
        index_table_bytes: u64::from(INDEX_ENTRY_BYTES) * parts.index.len() as u64,
        dictionary_bytes: 2 * (parts.high_values.len() as u64 + parts.low_values.len() as u64),
        ..CompositionStats::default()
    };
    let mut words: Vec<u32> = Vec::new();
    let mut complete = true;

    // Dictionaries must fit the classes' addressable range.
    for (which, len, cap) in [
        ("high", parts.high_values.len(), HIGH_DICT_CAPACITY),
        ("low", parts.low_values.len(), LOW_DICT_CAPACITY),
    ] {
        if len > usize::from(cap) {
            complete = false;
            report.push(Diagnostic::error(
                "dict-capacity",
                format!("{which} dictionary has {len} entries; the tag classes address only {cap}"),
            ));
        }
    }

    // Decode-table soundness: build the decoder the codec would use for
    // these dictionaries and exhaustively prove every table entry against
    // scalar tag semantics (independent of the stream, so it runs even
    // when the walk cannot).
    {
        let high = Dictionary::from_ranked_values(parts.high_values.clone());
        let low = Dictionary::from_ranked_values(parts.low_values.clone());
        let fast = FastDecoder::new(&high, &low);
        crate::tables::check_decode_tables(&fast, &high, &low, report);
    }

    // Exactly one index entry per group of two blocks.
    let expected_groups = parts.n_insns.div_ceil(GROUP_INSNS);
    if parts.index.len() as u32 != expected_groups {
        complete = false;
        report.push(Diagnostic::error(
            "index-coverage",
            format!(
                "index table has {} entries for {} groups of {GROUP_INSNS} instructions \
                 ({} instructions) — every native block needs exactly one mapping",
                parts.index.len(),
                expected_groups,
                parts.n_insns
            ),
        ));
    }

    let mut extent = Capped::new("index-extent", PER_CHECK_CAP);
    let mut second = Capped::new("index-second-offset", PER_CHECK_CAP);
    let mut slot = Capped::new("dict-slot", PER_CHECK_CAP);

    // Walk every group: first block at the entry's absolute offset, second
    // at its relative offset; extents must tile the stream in order.
    let mut cursor: u32 = 0;
    for (g, &entry) in parts.index.iter().enumerate() {
        let (first, second_rel) = index_entry_parts(entry);
        let group_addr = TEXT_BASE + 4 * GROUP_INSNS * g as u32;
        if first != cursor {
            complete = false;
            let kind = if first < cursor {
                "overlaps the previous group"
            } else {
                "leaves a gap after the previous group"
            };
            extent.push(
                report,
                Diagnostic::error(
                    "index-extent",
                    format!(
                        "group {g}: first block offset {first} {kind} (stream walk reached {cursor})"
                    ),
                )
                .at(group_addr)
                .with_context(format!("index[{g}] = {entry:#010x}")),
            );
        }
        // Trust the index from here on, as the hardware would.
        let mut block_end = [0u32; BLOCKS_PER_GROUP as usize];
        for b in 0..BLOCKS_PER_GROUP {
            let start = if b == 0 { first } else { first + second_rel };
            let base_addr = group_addr + 4 * BLOCK_INSNS * b;
            let before = words.len();
            match walk_block(
                parts.stream,
                &parts.high_values,
                &parts.low_values,
                start,
                base_addr,
                &mut words,
                &mut stats,
            ) {
                Ok(end) => block_end[b as usize] = end,
                Err(msg) => {
                    complete = false;
                    slot.push(
                        report,
                        Diagnostic::error("dict-slot", format!("group {g} block {b}: {msg}"))
                            .at(base_addr)
                            .with_context(format!("index[{g}] = {entry:#010x}")),
                    );
                    // Keep downstream vectors aligned.
                    words.resize(before + BLOCK_INSNS as usize, 0);
                    block_end[b as usize] = start;
                }
            }
            if b == 0 {
                let walked_len = block_end[0].saturating_sub(first);
                if walked_len != second_rel {
                    complete = false;
                    second.push(
                        report,
                        Diagnostic::error(
                            "index-second-offset",
                            format!(
                                "group {g}: index places the second block {second_rel} bytes \
                                 after the first, but the first block is {walked_len} bytes"
                            ),
                        )
                        .at(group_addr)
                        .with_context(format!("index[{g}] = {entry:#010x}")),
                    );
                }
            }
        }
        cursor = block_end[BLOCKS_PER_GROUP as usize - 1];
    }
    extent.finish(report);
    second.finish(report);
    slot.finish(report);

    if complete && cursor != parts.stream.len() as u32 {
        report.push(Diagnostic::warning(
            "stream-slack",
            format!(
                "stream is {} bytes but the walk consumed {cursor} — trailing slack",
                parts.stream.len()
            ),
        ));
    }

    // Stats recount vs the image's claim — only meaningful if the walk saw
    // every block.
    if complete {
        check_stats(&stats, parts.claimed, report);
        report.ratio = Some(RatioReport {
            static_ratio: stats.compression_ratio(),
            codec_ratio: parts.claimed.compression_ratio(),
            original_bytes: stats.original_bytes,
            compressed_bytes: stats.total_bytes(),
        });
    }

    // Three-way decode oracle: the independent walk above, the codec's
    // scalar reference decoder, and the table-driven fast decoder must
    // recover identical words for every block. Only meaningful when the
    // walk saw every block (a structural fault already fired otherwise).
    if complete {
        check_decode_backends(parts, &words, report);
    }

    // Byte-for-byte decompression check against the native text.
    if let Some(native) = native {
        check_native(&words, native, parts.n_insns, complete, report);
    }

    StaticWalk {
        stats,
        words,
        complete,
    }
}

/// Runs both codec decode backends over every block and diffs each against
/// the static walk's words — the `decode-backend` three-way check. The walk
/// is layout-driven and shares no code with either backend, so agreement
/// here certifies all three independently.
fn check_decode_backends(parts: &ImageParts<'_>, words: &[u32], report: &mut LintReport) {
    let high = Dictionary::from_ranked_values(parts.high_values.clone());
    let low = Dictionary::from_ranked_values(parts.low_values.clone());
    let fast = FastDecoder::new(&high, &low);
    let mut cap = Capped::new("decode-backend", PER_CHECK_CAP);
    for (g, &entry) in parts.index.iter().enumerate() {
        let (first, second_rel) = index_entry_parts(entry);
        for b in 0..BLOCKS_PER_GROUP {
            let start = if b == 0 { first } else { first + second_rel } as usize;
            let block = g as u32 * BLOCKS_PER_GROUP + b;
            let base_addr = TEXT_BASE + 4 * BLOCK_INSNS * block;
            let Some(slice) = parts.stream.get(start..) else {
                continue; // extent errors already reported by the walk
            };
            let walked = &words[block as usize * BLOCK_INSNS as usize..][..BLOCK_INSNS as usize];
            for (backend, decoded) in [
                ("scalar", decode_block_bytes(slice, &high, &low)),
                ("fast", fast.decode_block(slice)),
            ] {
                match decoded {
                    Ok(got) if got == walked => {}
                    Ok(got) => {
                        let diverges = got
                            .iter()
                            .zip(walked)
                            .position(|(a, b)| a != b)
                            .unwrap_or(0);
                        cap.push(
                            report,
                            Diagnostic::error(
                                "decode-backend",
                                format!(
                                    "block {block}: {backend} decoder diverges from the \
                                     static walk at instruction {diverges}"
                                ),
                            )
                            .at(base_addr)
                            .with_context(format!(
                                "{backend} {:#010x}, walk {:#010x}",
                                got[diverges], walked[diverges]
                            )),
                        );
                    }
                    Err(e) => {
                        cap.push(
                            report,
                            Diagnostic::error(
                                "decode-backend",
                                format!(
                                    "block {block}: {backend} decoder rejects a block the \
                                     static walk verified: {e}"
                                ),
                            )
                            .at(base_addr),
                        );
                    }
                }
            }
        }
    }
    cap.finish(report);
}

fn check_stats(walked: &CompositionStats, claimed: &CompositionStats, report: &mut LintReport) {
    let fields: [(&str, u64, u64); 11] = [
        (
            "original_bytes",
            walked.original_bytes,
            claimed.original_bytes,
        ),
        (
            "index_table_bytes",
            walked.index_table_bytes,
            claimed.index_table_bytes,
        ),
        (
            "dictionary_bytes",
            walked.dictionary_bytes,
            claimed.dictionary_bytes,
        ),
        (
            "compressed_tag_bits",
            walked.compressed_tag_bits,
            claimed.compressed_tag_bits,
        ),
        (
            "dict_index_bits",
            walked.dict_index_bits,
            claimed.dict_index_bits,
        ),
        ("raw_tag_bits", walked.raw_tag_bits, claimed.raw_tag_bits),
        (
            "raw_literal_bits",
            walked.raw_literal_bits,
            claimed.raw_literal_bits,
        ),
        ("pad_bits", walked.pad_bits, claimed.pad_bits),
        ("raw_halfwords", walked.raw_halfwords, claimed.raw_halfwords),
        ("raw_blocks", walked.raw_blocks, claimed.raw_blocks),
        ("blocks", walked.blocks, claimed.blocks),
    ];
    for (name, w, c) in fields {
        if w != c {
            report.push(Diagnostic::error(
                "stats-mismatch",
                format!("stored stats claim {name} = {c}, static walk counted {w}"),
            ));
        }
    }
    let (ws, cs) = (walked.compression_ratio(), claimed.compression_ratio());
    if ws != cs {
        report.push(Diagnostic::error(
            "ratio-agreement",
            format!("static compression ratio {ws:.6} != codec ratio {cs:.6}"),
        ));
    }
}

fn check_native(
    words: &[u32],
    native: &[u32],
    n_insns: u32,
    complete: bool,
    report: &mut LintReport,
) {
    if native.len() as u32 != n_insns {
        report.push(Diagnostic::error(
            "decompress-mismatch",
            format!(
                "image claims {n_insns} instructions, native program has {}",
                native.len()
            ),
        ));
        return;
    }
    if !complete {
        report.push(Diagnostic::info(
            "decompress-mismatch",
            "native comparison limited: the walk did not recover every block",
        ));
    }
    let mut cap = Capped::new("decompress-mismatch", PER_CHECK_CAP);
    for (i, &expect) in native.iter().enumerate() {
        let got = words.get(i).copied().unwrap_or(0);
        if got != expect {
            let addr = TEXT_BASE + 4 * i as u32;
            let ctx = match decode(expect) {
                Ok(insn) => format!("expected {expect:#010x} ({insn}), decompressed {got:#010x}"),
                Err(_) => format!("expected {expect:#010x}, decompressed {got:#010x}"),
            };
            cap.push(
                report,
                Diagnostic::error(
                    "decompress-mismatch",
                    "static decompression diverges from the native text".to_string(),
                )
                .at(addr)
                .with_context(ctx),
            );
        }
    }
    // Group padding beyond the native text must decompress to zero words.
    for (i, &got) in words.iter().enumerate().skip(native.len()) {
        if got != 0 {
            cap.push(
                report,
                Diagnostic::error(
                    "decompress-mismatch",
                    format!("pad word {i} decompresses to {got:#010x}, expected zero"),
                ),
            );
        }
    }
    cap.finish(report);
}

#[cfg(test)]
mod tests {
    use super::*;
    use codepack_core::CompressionConfig;

    /// A text section with dictionary-friendly repetition, some unique
    /// constants (raw escapes), and enough length for several groups.
    fn sample_text(n: u32) -> Vec<u32> {
        (0..n)
            .map(|i| match i % 7 {
                0 => 0x2402_000a,
                1 => 0x0000_0000,
                2 => 0x8fbf_0010 | (i / 7 % 2) << 16,
                3 => 0x3c08_dead ^ (i << 3),
                4 => 0x2508_beef,
                5 => 0x0109_4021,
                _ => 0x03e0_0008,
            })
            .collect()
    }

    fn compress(text: &[u32]) -> CodePackImage {
        CodePackImage::compress(text, &CompressionConfig::default())
    }

    fn lint_image(image: &CodePackImage, native: Option<&[u32]>) -> (LintReport, StaticWalk) {
        let mut report = LintReport::new("test");
        let walk = check_image(&ImageParts::of_image(image), native, &mut report);
        (report, walk)
    }

    #[test]
    fn clean_image_verifies_and_ratios_agree() {
        let text = sample_text(96);
        let image = compress(&text);
        let (report, walk) = lint_image(&image, Some(&text));
        assert!(report.is_clean(), "{}", report.render());
        assert!(walk.complete);
        assert_eq!(walk.stats, *image.stats(), "field-by-field recount");
        let ratio = report.ratio.unwrap();
        assert_eq!(ratio.static_ratio, ratio.codec_ratio, "exact agreement");
        assert_eq!(&walk.words[..text.len()], &text[..], "byte-for-byte");
    }

    #[test]
    fn unpadded_length_verifies_too() {
        // 37 insns: the last group is half-empty, pad words must be zero.
        let text = sample_text(37);
        let image = compress(&text);
        let (report, walk) = lint_image(&image, Some(&text));
        assert!(report.is_clean(), "{}", report.render());
        assert!(walk.words.len() >= text.len());
    }

    #[test]
    fn decode_backend_check_runs_and_is_clean_on_valid_images() {
        let text = sample_text(96);
        let image = compress(&text);
        let (report, walk) = lint_image(&image, None);
        assert!(report.checks_run.contains(&"decode-backend"));
        assert!(
            report.checks_run.contains(&"decode-table-kind"),
            "table prover runs as part of the image checks"
        );
        assert!(report.is_clean(), "{}", report.render());
        // The walk's words really are what both backends produce.
        assert_eq!(&walk.words[..text.len()], &text[..]);
    }

    #[test]
    fn corrupted_index_entry_is_detected() {
        let text = sample_text(96);
        let image = compress(&text);
        // Flip a bit in group 1's first-offset field.
        let mut index = image.index_table().to_vec();
        index[1] ^= 1 << 10;
        let parts = ImageParts {
            index: &index,
            ..ImageParts::of_image(&image)
        };
        let mut report = LintReport::new("test");
        check_image(&parts, Some(&text), &mut report);
        assert!(!report.is_clean());
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.check == "index-extent")
            .expect("extent check fires");
        let group_addr = TEXT_BASE + 4 * GROUP_INSNS;
        assert_eq!(d.addr, Some(group_addr), "{}", report.render());
    }

    #[test]
    fn corrupted_second_offset_is_detected() {
        let text = sample_text(96);
        let image = compress(&text);
        let mut index = image.index_table().to_vec();
        index[0] ^= 0b11; // second-block relative offset bits
        let parts = ImageParts {
            index: &index,
            ..ImageParts::of_image(&image)
        };
        let mut report = LintReport::new("test");
        check_image(&parts, Some(&text), &mut report);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.check == "index-second-offset"));
    }

    #[test]
    fn truncated_dictionary_is_detected_as_bad_slot() {
        let text = sample_text(96);
        let image = compress(&text);
        let mut parts = ImageParts::of_image(&image);
        let keep = parts.high_values.len().min(2);
        parts.high_values.truncate(keep);
        let mut report = LintReport::new("test");
        check_image(&parts, Some(&text), &mut report);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.check == "dict-slot")
            .expect("slot check fires");
        assert!(d.addr.is_some(), "{}", report.render());
        assert!(!report.is_clean());
    }

    #[test]
    fn oversized_dictionary_is_detected() {
        let text = sample_text(96);
        let image = compress(&text);
        let mut parts = ImageParts::of_image(&image);
        parts
            .low_values
            .resize(usize::from(LOW_DICT_CAPACITY) + 1, 0);
        let mut report = LintReport::new("test");
        check_image(&parts, None, &mut report);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.check == "dict-capacity"));
    }

    #[test]
    fn corrupted_stream_byte_diverges_from_native() {
        let text = sample_text(96);
        let image = compress(&text);
        let flipped = image.compressed_bytes()[3] ^ 0x40;
        let corrupted = image
            .with_corrupted_bytes(3, flipped)
            .expect("offset inside stream");
        let mut report = LintReport::new("test");
        check_image(&ImageParts::of_image(&corrupted), Some(&text), &mut report);
        assert!(!report.is_clean(), "{}", report.render());
    }

    #[test]
    fn wrong_claimed_stats_are_detected() {
        let text = sample_text(96);
        let image = compress(&text);
        let mut claimed = *image.stats();
        claimed.dict_index_bits += 8;
        let parts = ImageParts {
            claimed: &claimed,
            ..ImageParts::of_image(&image)
        };
        let mut report = LintReport::new("test");
        check_image(&parts, Some(&text), &mut report);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.check == "stats-mismatch" && d.message.contains("dict_index_bits")));
    }

    #[test]
    fn missing_index_entry_is_coverage_error() {
        let text = sample_text(96);
        let image = compress(&text);
        let index = &image.index_table()[..image.index_table().len() - 1];
        let parts = ImageParts {
            index,
            ..ImageParts::of_image(&image)
        };
        let mut report = LintReport::new("test");
        check_image(&parts, None, &mut report);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.check == "index-coverage"));
    }
}
