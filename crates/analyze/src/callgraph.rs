//! Interprocedural analysis: call-graph recovery, function boundaries, and
//! per-function def summaries.
//!
//! The generated programs call only through direct `jal` and return through
//! `jr $ra`, which makes the call graph statically recoverable: every `jal`
//! target is a function entry, and a function's *body* is what its entry
//! reaches **intra**-procedurally (calls fall through to their return
//! point; `jr`/`break` end the walk). From the bodies this module derives:
//!
//! * **Function inventory** — every `jal` target plus the program entry.
//! * **Call edges** — function F calls G when a `jal` inside F's body
//!   targets G's entry.
//! * **May-def summaries** — the set of locations (the same 67-bit set as
//!   [`crate::dataflow`]) a call to F may define before it returns: the
//!   union of the defs of every instruction in F's body and, transitively,
//!   of everything F may call. An indirect call (`jalr`) anywhere in the
//!   transitive body degrades the summary to *all locations* — exactly the
//!   old conservative model, so precision degrades gracefully to it.
//!
//! The summaries replace the use-before-def pass's old call-boundary join
//! ("after a call, *everything* is defined") with "after a call to F, the
//! call-site state plus what F may define is defined" — a strictly smaller
//! (more precise) state, so the analysis can only report **more** real
//! use-before-def sites, never lose one (see the before/after table in
//! EXPERIMENTS.md).
//!
//! Checks (stable names):
//!
//! * `unreachable-function` — a `jal` target whose every call site is
//!   itself unreachable: the function exists but can never be entered.
//!   Warning (dead code at function granularity).
//! * `unbounded-recursion` — a call-graph cycle in which **no** member has
//!   a path from its entry to a `jr`/`break`/`syscall` that avoids calling
//!   back into the cycle: every execution entering the cycle provably
//!   descends forever (stack exhaustion at runtime). Warning, because the
//!   cycle itself may be unreachable from the entry on real inputs.

use crate::cfg::{Cfg, Flow};
use crate::dataflow::{uses_defs, RegSet, ALL_LOCATIONS};
use crate::diag::{Capped, Diagnostic, LintReport};

/// How many diagnostics each call-graph check emits before suppressing.
const PER_CHECK_CAP: usize = 16;

/// One recovered function.
struct Function {
    /// Entry instruction index.
    entry: u32,
    /// Body instruction indices (intra-procedural reachability from the
    /// entry), sorted.
    body: Vec<u32>,
    /// Indices into [`CallGraph::funcs`] of directly-called functions.
    calls: Vec<usize>,
    /// The transitive body contains a `jalr` or an out-of-range `jal`:
    /// the summary cannot be bounded and degrades to all locations.
    opaque: bool,
}

/// The recovered call graph and per-function def summaries.
pub struct CallGraph {
    /// Functions, sorted by entry index. `funcs[0]` is not necessarily the
    /// program entry; see `root`.
    funcs: Vec<Function>,
    /// Fixpoint may-def summary per function, parallel to `funcs`.
    may_defs: Vec<RegSet>,
    /// Index of the program-entry function in `funcs`.
    root: usize,
}

impl CallGraph {
    /// Number of recovered functions (the program entry counts as one).
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// `true` when no function was recovered (empty text).
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// Entry instruction index of function `f`.
    pub fn entry_of(&self, f: usize) -> u32 {
        self.funcs[f].entry
    }

    /// Function index whose entry is instruction `entry`, if one exists.
    pub fn function_at(&self, entry: u32) -> Option<usize> {
        self.funcs.binary_search_by_key(&entry, |f| f.entry).ok()
    }

    /// The may-def summary for a call to the function at instruction
    /// `entry`: every location such a call may define before returning.
    /// `None` when `entry` is not a recovered function entry.
    pub(crate) fn may_defs_at(&self, entry: u32) -> Option<RegSet> {
        self.function_at(entry).map(|f| self.may_defs[f])
    }

    /// The may-def summary of function `f` (test/inspection surface).
    pub fn summary_of(&self, f: usize) -> u128 {
        self.may_defs[f]
    }
}

/// Intra-procedural reachability from `entry`: the function body. Calls
/// fall through (the callee returns), `jr`/`break`/undecodable words stop
/// the walk, and `j`/branches are followed as intra-function control flow.
fn body_of(cfg: &Cfg, entry: u32) -> Vec<u32> {
    let n = i64::from(cfg.len());
    let mut seen = vec![false; cfg.len() as usize];
    let mut work = vec![entry];
    seen[entry as usize] = true;
    while let Some(i) = work.pop() {
        let mut push = |idx: i64| {
            if (0..n).contains(&idx) && !seen[idx as usize] {
                seen[idx as usize] = true;
                work.push(idx as u32);
            }
        };
        match cfg.flow_of(i) {
            Flow::Next | Flow::Halt | Flow::Call(_) => push(i64::from(i) + 1),
            Flow::Jump(t) => push(t),
            Flow::Branch(t) => {
                push(i64::from(i) + 1);
                push(t);
            }
            Flow::Return | Flow::Trap => {}
        }
    }
    (0..cfg.len()).filter(|&i| seen[i as usize]).collect()
}

/// Recovers the call graph: function inventory (program entry plus every
/// in-range `jal` target), bodies, call edges, and the may-def summary
/// fixpoint.
pub fn build_call_graph(cfg: &Cfg) -> CallGraph {
    if cfg.is_empty() {
        return CallGraph {
            funcs: Vec::new(),
            may_defs: Vec::new(),
            root: 0,
        };
    }

    // Inventory: the entry plus every decodable jal's in-range target —
    // including targets only called from dead code, so the unreachable-
    // function check can name them.
    let n = i64::from(cfg.len());
    let mut entries: Vec<u32> = vec![cfg.entry];
    for i in 0..cfg.len() {
        if let Flow::Call(Some(t)) = cfg.flow_of(i) {
            if (0..n).contains(&t) {
                entries.push(t as u32);
            }
        }
    }
    entries.sort_unstable();
    entries.dedup();

    // `entries` is sorted, so `funcs` is sorted by entry and `calls`
    // indices line up with positions in `funcs`.
    let funcs: Vec<Function> = entries
        .iter()
        .map(|&entry| {
            let body = body_of(cfg, entry);
            let mut calls = Vec::new();
            let mut opaque = false;
            for &i in &body {
                match cfg.flow_of(i) {
                    Flow::Call(Some(t)) if (0..n).contains(&t) => {
                        // Always present: the inventory holds every
                        // in-range jal target from the full text.
                        if let Ok(callee) = entries.binary_search(&(t as u32)) {
                            calls.push(callee);
                        }
                    }
                    // An indirect or out-of-range call cannot be
                    // summarized.
                    Flow::Call(_) => opaque = true,
                    _ => {}
                }
            }
            calls.sort_unstable();
            calls.dedup();
            Function {
                entry,
                body,
                calls,
                opaque,
            }
        })
        .collect();

    // May-def fixpoint: start from each body's local defs (or everything,
    // for opaque functions) and propagate along call edges until stable.
    // Sets only grow and are bounded, so this terminates.
    let mut may_defs: Vec<RegSet> = funcs
        .iter()
        .map(|f| {
            if f.opaque {
                return ALL_LOCATIONS;
            }
            f.body
                .iter()
                .filter_map(|&i| cfg.insns[i as usize].as_ref().ok())
                .fold(0, |acc, insn| acc | uses_defs(insn).1)
        })
        .collect();
    loop {
        let mut changed = false;
        for f in 0..funcs.len() {
            let mut acc = may_defs[f];
            for &callee in &funcs[f].calls {
                acc |= may_defs[callee];
            }
            if acc != may_defs[f] {
                may_defs[f] = acc;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let root = funcs
        .binary_search_by_key(&cfg.entry, |f| f.entry)
        .expect("entry function is in the inventory");
    CallGraph {
        funcs,
        may_defs,
        root,
    }
}

/// `true` when some path from `f`'s entry reaches a `jr`/`break`/`syscall`
/// without crossing a call to a function in `scc` — i.e. the function can
/// terminate (or leave the cycle) without recursing.
fn can_escape(cfg: &Cfg, f: &Function, scc: &[usize], funcs: &[Function]) -> bool {
    let n = i64::from(cfg.len());
    let in_scc =
        |t: i64| -> bool { (0..n).contains(&t) && scc.iter().any(|&s| funcs[s].entry == t as u32) };
    let mut seen = vec![false; cfg.len() as usize];
    let mut work = vec![f.entry];
    seen[f.entry as usize] = true;
    while let Some(i) = work.pop() {
        let push = |idx: i64, seen: &mut [bool], work: &mut Vec<u32>| {
            if (0..n).contains(&idx) && !seen[idx as usize] {
                seen[idx as usize] = true;
                work.push(idx as u32);
            }
        };
        match cfg.flow_of(i) {
            // Reaching a return, a trap, or the halt idiom means this
            // activation can end without descending into the cycle.
            Flow::Return | Flow::Trap | Flow::Halt => return true,
            Flow::Call(Some(t)) if in_scc(t) => {} // blocked: recursion
            Flow::Call(_) => push(i64::from(i) + 1, &mut seen, &mut work),
            Flow::Next => push(i64::from(i) + 1, &mut seen, &mut work),
            Flow::Jump(t) => push(t, &mut seen, &mut work),
            Flow::Branch(t) => {
                push(i64::from(i) + 1, &mut seen, &mut work);
                push(t, &mut seen, &mut work);
            }
        }
    }
    false
}

/// Strongly connected components of the call graph (iterative Tarjan),
/// returned as lists of function indices. Single functions appear only
/// when they call themselves.
fn recursive_sccs(funcs: &[Function]) -> Vec<Vec<usize>> {
    let n = funcs.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    // Iterative Tarjan: (node, child cursor) frames.
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            if *cursor == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = funcs[v].calls.get(*cursor) {
                *cursor += 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("scc member on stack");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let self_loop = scc.len() == 1 && funcs[scc[0]].calls.contains(&scc[0]);
                    if scc.len() > 1 || self_loop {
                        scc.sort_unstable();
                        sccs.push(scc);
                    }
                }
            }
        }
    }
    sccs.sort_by_key(|scc| funcs[scc[0]].entry);
    sccs
}

/// Runs the call-graph checks: `unreachable-function` and
/// `unbounded-recursion`.
pub fn check_call_graph(cfg: &Cfg, cg: &CallGraph, report: &mut LintReport) {
    report.ran("unreachable-function");
    report.ran("unbounded-recursion");
    if cg.is_empty() {
        return;
    }

    let mut cap = Capped::new("unreachable-function", PER_CHECK_CAP);
    for (f, func) in cg.funcs.iter().enumerate() {
        if f == cg.root || cfg.reachable[func.entry as usize] {
            continue;
        }
        cap.push(
            report,
            Diagnostic::warning(
                "unreachable-function",
                format!(
                    "function at {:#010x} is only called from unreachable code",
                    cfg.addr_of(func.entry)
                ),
            )
            .at(cfg.addr_of(func.entry))
            .with_context(cfg.context_line(func.entry)),
        );
    }
    cap.finish(report);

    let mut cap = Capped::new("unbounded-recursion", PER_CHECK_CAP);
    for scc in recursive_sccs(&cg.funcs) {
        // The cycle is provably unbounded only if *no* member activation
        // can end without calling back into the cycle.
        let escapes = scc
            .iter()
            .any(|&f| can_escape(cfg, &cg.funcs[f], &scc, &cg.funcs));
        if escapes {
            continue;
        }
        let head = &cg.funcs[scc[0]];
        let members: Vec<String> = scc
            .iter()
            .map(|&f| format!("{:#010x}", cfg.addr_of(cg.funcs[f].entry)))
            .collect();
        cap.push(
            report,
            Diagnostic::warning(
                "unbounded-recursion",
                format!(
                    "call cycle {{{}}} has no terminating path: every route \
                     from each entry recurses into the cycle again",
                    members.join(", ")
                ),
            )
            .at(cfg.addr_of(head.entry))
            .with_context(cfg.context_line(head.entry)),
        );
    }
    cap.finish(report);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{program_of, recover_cfg};
    use codepack_isa::{encode, Instruction, Reg, TEXT_BASE};

    fn graph_and_report(insns: &[Instruction]) -> (Cfg, CallGraph, LintReport) {
        let words: Vec<u32> = insns.iter().map(|&i| encode(i)).collect();
        let program = program_of(&words);
        let cfg = recover_cfg(&program);
        let cg = build_call_graph(&cfg);
        let mut report = LintReport::new("test");
        check_call_graph(&cfg, &cg, &mut report);
        (cfg, cg, report)
    }

    fn jal(index: u32) -> Instruction {
        Instruction::Jal {
            target: (TEXT_BASE >> 2) + index,
        }
    }

    fn halt() -> [Instruction; 2] {
        [
            Instruction::Addiu {
                rt: Reg::V0,
                rs: Reg::ZERO,
                imm: 10,
            },
            Instruction::Syscall,
        ]
    }

    #[test]
    fn straight_line_program_is_one_function() {
        let (_, cg, report) = graph_and_report(&halt());
        assert_eq!(cg.len(), 1);
        assert_eq!(cg.entry_of(0), 0);
        assert!(report.is_clean());
        assert_eq!(report.warnings(), 0, "{}", report.render());
    }

    #[test]
    fn jal_target_becomes_a_function_with_local_defs_summary() {
        // entry: jal f; halt. f(3): addiu $t3,...; jr $ra
        let mut p = vec![jal(3)];
        p.extend(halt());
        p.push(Instruction::Addiu {
            rt: Reg::T3,
            rs: Reg::ZERO,
            imm: 5,
        });
        p.push(Instruction::Jr { rs: Reg::RA });
        let (_, cg, report) = graph_and_report(&p);
        assert_eq!(cg.len(), 2);
        let f = cg.function_at(3).expect("f recovered");
        // f defines exactly $t3 — nothing else.
        assert_eq!(cg.summary_of(f), 1u128 << Reg::T3.index());
        assert_eq!(report.warnings(), 0, "{}", report.render());
    }

    #[test]
    fn summaries_propagate_through_call_edges() {
        // entry: jal f; halt. f(3): jal g; jr $ra. g(5): addiu $t5; jr $ra
        let mut p = vec![jal(3)];
        p.extend(halt());
        p.push(jal(5)); // f
        p.push(Instruction::Jr { rs: Reg::RA });
        p.push(Instruction::Addiu {
            rt: Reg::T5,
            rs: Reg::ZERO,
            imm: 1,
        }); // g
        p.push(Instruction::Jr { rs: Reg::RA });
        let (_, cg, _) = graph_and_report(&p);
        let f = cg.function_at(3).unwrap();
        let g = cg.function_at(5).unwrap();
        let t5 = 1u128 << Reg::T5.index();
        let ra = 1u128 << Reg::RA.index();
        assert_eq!(cg.summary_of(g), t5);
        // f's jal defines $ra, and g's defs flow up the call edge.
        assert_eq!(cg.summary_of(f), t5 | ra);
    }

    #[test]
    fn jalr_degrades_summary_to_all_locations() {
        // f contains an indirect call: its effect cannot be bounded.
        let mut p = vec![jal(3)];
        p.extend(halt());
        p.push(Instruction::Jalr {
            rd: Reg::RA,
            rs: Reg::T9,
        });
        p.push(Instruction::Jr { rs: Reg::RA });
        let (_, cg, _) = graph_and_report(&p);
        let f = cg.function_at(3).unwrap();
        assert_eq!(cg.summary_of(f), ALL_LOCATIONS);
    }

    #[test]
    fn function_called_only_from_dead_code_is_flagged() {
        // entry: j over; dead: jal f; over: halt; jr $ra (stops the
        // fall-through walk — the halt idiom falls through). f: jr $ra.
        let p = vec![
            Instruction::J {
                target: (TEXT_BASE >> 2) + 2,
            },
            jal(5), // dead call site
            Instruction::Addiu {
                rt: Reg::V0,
                rs: Reg::ZERO,
                imm: 10,
            },
            Instruction::Syscall,
            Instruction::Jr { rs: Reg::RA },
            Instruction::Jr { rs: Reg::RA }, // f, never actually callable
        ];
        let (_, _, report) = graph_and_report(&p);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.check == "unreachable-function"),
            "{}",
            report.render()
        );
        assert!(report.is_clean(), "warning only");
    }

    #[test]
    fn self_recursion_with_base_case_is_quiet() {
        // f(3): beq $a0,$zero,+1 (skip recursion); jal f; jr $ra
        let mut p = vec![jal(3)];
        p.extend(halt());
        p.push(Instruction::Beq {
            rs: Reg::A0,
            rt: Reg::ZERO,
            offset: 1,
        });
        p.push(jal(3));
        p.push(Instruction::Jr { rs: Reg::RA });
        let (_, cg, report) = graph_and_report(&p);
        assert_eq!(recursive_sccs(&cg.funcs).len(), 1, "cycle exists");
        assert!(
            !report
                .diagnostics
                .iter()
                .any(|d| d.check == "unbounded-recursion"),
            "base case escapes: {}",
            report.render()
        );
    }

    #[test]
    fn recursion_without_base_case_is_flagged() {
        // f(3): jal f; jr $ra — every path recurses before returning.
        let mut p = vec![jal(3)];
        p.extend(halt());
        p.push(jal(3));
        p.push(Instruction::Jr { rs: Reg::RA });
        let (_, _, report) = graph_and_report(&p);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.check == "unbounded-recursion")
            .expect("flagged");
        assert!(d.message.contains("no terminating path"), "{}", d.message);
        assert!(report.is_clean(), "warning, not error");
    }

    #[test]
    fn mutual_recursion_without_escape_is_flagged_once() {
        // f(3): jal g; jr $ra. g(5): jal f; jr $ra.
        let mut p = vec![jal(3)];
        p.extend(halt());
        p.push(jal(5));
        p.push(Instruction::Jr { rs: Reg::RA });
        p.push(jal(3));
        p.push(Instruction::Jr { rs: Reg::RA });
        let (_, _, report) = graph_and_report(&p);
        let hits: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.check == "unbounded-recursion")
            .collect();
        assert_eq!(hits.len(), 1, "{}", report.render());
        assert!(hits[0].message.contains(", "), "names both members");
    }

    #[test]
    fn empty_program_builds_an_empty_graph() {
        // A Program cannot be empty, but a Cfg can be built from one
        // directly; the graph must degrade gracefully.
        let cfg = Cfg {
            insns: Vec::new(),
            reachable: Vec::new(),
            entry: 0,
        };
        let cg = build_call_graph(&cfg);
        assert!(cg.is_empty());
        let mut report = LintReport::new("test");
        check_call_graph(&cfg, &cg, &mut report);
        assert!(report.is_clean());
    }
}
