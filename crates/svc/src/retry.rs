//! Bounded, deterministic retry/backoff: the PR 3 matrix-runner pattern
//! lifted to the service client.
//!
//! A retry schedule is a **pure function** of `(policy, seed, call_id)`:
//! the jitter comes from the testkit PRNG seeded with
//! [`mix_seed`], never from a clock or thread
//! identity, so a fixed-seed load run produces byte-identical schedules at
//! any worker count. The schedule respects three bounds by construction:
//!
//! - at most `max_attempts - 1` delays (one fewer than attempts),
//! - every delay `<= max_delay_us` (the jitter cap — exponential growth
//!   plus jitter never exceeds it),
//! - the cumulative sum `<= max_total_delay_us`.

use codepack_testkit::{mix_seed, Rng};

/// Knobs of the client's retry loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total tries, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, microseconds.
    pub base_delay_us: u64,
    /// Cap on any single delay, jitter included, microseconds.
    pub max_delay_us: u64,
    /// Cap on the whole schedule's summed delay, microseconds.
    pub max_total_delay_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay_us: 200,
            max_delay_us: 20_000,
            max_total_delay_us: 100_000,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_delay_us: 0,
            max_delay_us: 0,
            max_total_delay_us: 0,
        }
    }

    /// The deterministic backoff schedule for one call: the delays (in
    /// microseconds) slept before retry 1, 2, … — a pure function of the
    /// inputs, identical on every thread and every run.
    ///
    /// Each entry is an equal-jitter draw: half the exponential step plus
    /// a uniformly random other half, capped at `max_delay_us`, then
    /// clipped so the running total never exceeds `max_total_delay_us`
    /// (trailing zero-delay retries are still taken — the budget caps
    /// sleeping, not trying).
    pub fn schedule(&self, seed: u64, call_id: u64) -> Vec<u64> {
        let retries = self.max_attempts.saturating_sub(1) as usize;
        let mut rng = Rng::seed_from_u64(mix_seed(seed, call_id));
        let mut delays = Vec::with_capacity(retries);
        let mut budget = self.max_total_delay_us;
        for attempt in 0..retries {
            let step = self
                .base_delay_us
                .saturating_mul(1u64.checked_shl(attempt as u32).unwrap_or(u64::MAX))
                .min(self.max_delay_us);
            let half = step / 2;
            let jittered = if half == 0 {
                step
            } else {
                half + rng.gen_range(0..=half)
            };
            let clipped = jittered.min(self.max_delay_us).min(budget);
            budget -= clipped;
            delays.push(clipped);
        }
        delays
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_a_pure_function() {
        let p = RetryPolicy::default();
        let a = p.schedule(42, 7);
        let b = p.schedule(42, 7);
        assert_eq!(a, b);
        assert_ne!(a, p.schedule(42, 8), "different calls decorrelate");
        assert_ne!(a, p.schedule(43, 7), "different seeds decorrelate");
    }

    #[test]
    fn bounds_hold_by_construction() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_delay_us: 100,
            max_delay_us: 1_000,
            max_total_delay_us: 3_000,
        };
        for call in 0..200u64 {
            let s = p.schedule(1, call);
            assert_eq!(s.len(), 9);
            assert!(s.iter().all(|&d| d <= p.max_delay_us), "{s:?}");
            assert!(s.iter().sum::<u64>() <= p.max_total_delay_us, "{s:?}");
        }
    }

    #[test]
    fn no_retries_means_empty_schedule() {
        assert!(RetryPolicy::none().schedule(0, 0).is_empty());
        let one = RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        };
        assert!(one.schedule(9, 9).is_empty());
    }

    #[test]
    fn zero_base_never_sleeps() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_delay_us: 0,
            max_delay_us: 1_000,
            max_total_delay_us: 1_000,
        };
        assert_eq!(p.schedule(3, 3), vec![0, 0, 0, 0]);
    }
}
