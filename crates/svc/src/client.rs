//! The `cpackd` client: every call carries a deadline and runs through
//! bounded, deterministic retry/backoff.
//!
//! A client owns one connection (re-established lazily after any
//! failure) and issues calls serially. Each call:
//!
//! 1. draws its backoff schedule up front — a pure function of
//!    `(policy, seed, call_id)` via the testkit PRNG, so a fixed-seed
//!    load run retries identically at any worker count;
//! 2. stamps the wire id as `(call_id << 8) | attempt`, so a torn or
//!    duplicated response from a previous attempt can never be mistaken
//!    for this one;
//! 3. bounds every socket operation by the call deadline (plus a small
//!    margin so the server's own `DeadlineExceeded` answer usually wins
//!    the race and arrives typed);
//! 4. retries only failures that are transient by contract —
//!    [`Status::is_retryable`] statuses and connection-level errors —
//!    and never `BadRequest` / `Corrupt` / `TooLarge`, which are
//!    properties of the request itself.
//!
//! Every terminal outcome is a typed [`CallError`]; the client never
//! hangs past its deadline budget and never panics on hostile bytes.

use std::io::Read;
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

use crate::proto::{self, Op, Request, Response, Status, MAX_WIRE_PAYLOAD};
use crate::retry::RetryPolicy;

/// Client knobs.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Per-attempt deadline sent on the wire and enforced locally,
    /// milliseconds.
    pub deadline_ms: u32,
    /// The retry/backoff envelope.
    pub retry: RetryPolicy,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
    /// Largest response payload this client will buffer.
    pub max_payload: u32,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            deadline_ms: 2_000,
            retry: RetryPolicy::default(),
            seed: 0,
            max_payload: MAX_WIRE_PAYLOAD,
        }
    }
}

/// Why a call terminally failed (after all retries the policy allows).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallError {
    /// The server answered with a non-`Ok` status and either it is not
    /// retryable or the retry budget ran out.
    Rejected {
        /// The final status.
        status: Status,
        /// The server's message payload.
        message: String,
        /// Attempts consumed, including the first.
        attempts: u32,
    },
    /// The connection failed (connect, send, receive, or timeout) on
    /// every allowed attempt.
    Connection {
        /// The final transport error.
        message: String,
        /// Attempts consumed, including the first.
        attempts: u32,
    },
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::Rejected {
                status,
                message,
                attempts,
            } => write!(
                f,
                "rejected with {status} after {attempts} attempt(s): {message}"
            ),
            CallError::Connection { message, attempts } => {
                write!(
                    f,
                    "connection failed after {attempts} attempt(s): {message}"
                )
            }
        }
    }
}

impl std::error::Error for CallError {}

impl CallError {
    /// The final status, when the server produced one.
    pub fn status(&self) -> Option<Status> {
        match self {
            CallError::Rejected { status, .. } => Some(*status),
            CallError::Connection { .. } => None,
        }
    }
}

/// What one attempt produced, before the retry loop decides.
enum Attempt {
    Done(Vec<u8>),
    Status(Status, String),
    Transport(String),
}

/// A `cpackd` client. Not thread-safe by design — one connection, one
/// call at a time; clone-free workers each own their client.
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Option<TcpStream>,
    next_call: u64,
}

impl Client {
    /// A client for the server at `addr`. No connection is made until
    /// the first call.
    pub fn new(addr: SocketAddr, config: ClientConfig) -> Client {
        Client {
            addr,
            config,
            conn: None,
            next_call: 0,
        }
    }

    /// Issues `op` with the config deadline. See [`Client::call_with_deadline`].
    pub fn call(&mut self, op: Op, payload: &[u8]) -> Result<Vec<u8>, CallError> {
        self.call_with_deadline(op, payload, self.config.deadline_ms)
    }

    /// Issues `op` with an explicit per-attempt deadline, retrying per
    /// the policy. Returns the response payload on `Ok`.
    pub fn call_with_deadline(
        &mut self,
        op: Op,
        payload: &[u8],
        deadline_ms: u32,
    ) -> Result<Vec<u8>, CallError> {
        let call_id = self.next_call;
        self.next_call += 1;
        let delays = self.config.retry.schedule(self.config.seed, call_id);
        let max_attempts = self.config.retry.max_attempts.max(1);
        let mut last = Attempt::Transport("no attempt made".to_string());
        for attempt in 0..max_attempts {
            if attempt > 0 {
                let delay = delays
                    .get(attempt as usize - 1)
                    .copied()
                    .unwrap_or_default();
                if delay > 0 {
                    thread::sleep(Duration::from_micros(delay));
                }
            }
            // Wire ids never repeat across attempts, so a stale response
            // from attempt N-1 cannot satisfy attempt N.
            let wire_id = (call_id << 8) | u64::from(attempt & 0xff);
            match self.attempt(op, payload, deadline_ms, wire_id) {
                Attempt::Done(bytes) => return Ok(bytes),
                Attempt::Status(status, message) => {
                    if !status.is_retryable() {
                        return Err(CallError::Rejected {
                            status,
                            message,
                            attempts: attempt + 1,
                        });
                    }
                    last = Attempt::Status(status, message);
                }
                Attempt::Transport(message) => last = Attempt::Transport(message),
            }
        }
        Err(match last {
            Attempt::Status(status, message) => CallError::Rejected {
                status,
                message,
                attempts: max_attempts,
            },
            Attempt::Transport(message) => CallError::Connection {
                message,
                attempts: max_attempts,
            },
            Attempt::Done(_) => unreachable!("successful attempts return early"),
        })
    }

    /// One request/response exchange. Any transport failure tears the
    /// connection down so the next attempt starts from a clean stream.
    fn attempt(&mut self, op: Op, payload: &[u8], deadline_ms: u32, wire_id: u64) -> Attempt {
        let deadline = Duration::from_millis(u64::from(deadline_ms.max(1)));
        // Margin so the server's typed DeadlineExceeded beats the local
        // socket timeout when both fire.
        let socket_timeout = deadline + Duration::from_millis(150);
        let max_payload = self.config.max_payload;
        let stream = match self.ensure_conn(socket_timeout) {
            Ok(s) => s,
            Err(e) => return Attempt::Transport(e),
        };
        let req = Request {
            id: wire_id,
            op,
            deadline_ms,
            payload: payload.to_vec(),
        };
        if let Err(e) = proto::write_request(stream, &req) {
            self.conn = None;
            return Attempt::Transport(e.to_string());
        }
        match proto::read_response(stream, max_payload) {
            Ok(Some(resp)) => self.accept(resp, wire_id),
            Ok(None) => {
                // The server closed cleanly between frames (restart or
                // proto-level hangup): transient, retryable.
                self.conn = None;
                Attempt::Transport("server closed the connection".to_string())
            }
            Err(e) => {
                self.conn = None;
                Attempt::Transport(e.to_string())
            }
        }
    }

    fn accept(&mut self, resp: Response, wire_id: u64) -> Attempt {
        // Only one request is ever in flight per connection, so an error
        // response with id 0 (the server could not parse an id) is still
        // unambiguously ours. Anything else off-id means the stream
        // desynchronized: tear it down and retry on a fresh one.
        let ours = resp.id == wire_id || (resp.id == 0 && resp.status != Status::Ok);
        if !ours {
            self.conn = None;
            return Attempt::Transport(format!(
                "response id {} does not match request id {wire_id} (stream desync)",
                resp.id
            ));
        }
        match resp.status {
            Status::Ok => Attempt::Done(resp.payload),
            status => Attempt::Status(status, String::from_utf8_lossy(&resp.payload).into_owned()),
        }
    }

    fn ensure_conn(&mut self, timeout: Duration) -> Result<&mut TcpStream, String> {
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, timeout)
                .map_err(|e| format!("connect to {}: {e}", self.addr))?;
            let _ = stream.set_nodelay(true);
            self.conn = Some(stream);
        }
        let conn = self.conn.as_mut().expect("just ensured");
        // Refresh timeouts for this call's deadline.
        conn.set_read_timeout(Some(timeout))
            .map_err(|e| e.to_string())?;
        conn.set_write_timeout(Some(timeout))
            .map_err(|e| e.to_string())?;
        Ok(conn)
    }

    /// Drops the connection; the next call reconnects.
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    /// Calls made so far (successful or not) — the next call id.
    pub fn calls_issued(&self) -> u64 {
        self.next_call
    }
}

/// Sends raw bytes to the server and drains whatever comes back until
/// the peer closes or times out. Chaos tooling uses this to inject torn
/// and garbage traffic that a well-formed [`Client`] cannot produce.
pub fn send_raw(addr: SocketAddr, bytes: &[u8], timeout: Duration) -> Result<Vec<u8>, String> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    use std::io::Write as _;
    stream.write_all(bytes).map_err(|e| e.to_string())?;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out); // timeout or EOF both fine
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_error_display_is_informative() {
        let e = CallError::Rejected {
            status: Status::Overloaded,
            message: "admission queue full".to_string(),
            attempts: 4,
        };
        let s = e.to_string();
        assert!(s.contains("overloaded") && s.contains('4'), "{s}");
        assert_eq!(e.status(), Some(Status::Overloaded));
        let c = CallError::Connection {
            message: "refused".to_string(),
            attempts: 2,
        };
        assert_eq!(c.status(), None);
    }

    #[test]
    fn unreachable_server_fails_typed_after_all_attempts() {
        // A port nothing listens on: every attempt is a connection
        // error, and the client gives up after exactly max_attempts.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let mut client = Client::new(
            addr,
            ClientConfig {
                deadline_ms: 50,
                retry: RetryPolicy {
                    max_attempts: 3,
                    base_delay_us: 10,
                    max_delay_us: 50,
                    max_total_delay_us: 200,
                },
                seed: 7,
                max_payload: 1024,
            },
        );
        match client.call(Op::Ping, b"hello") {
            Err(CallError::Connection { attempts, .. }) => assert_eq!(attempts, 3),
            other => panic!("expected Connection error, got {other:?}"),
        }
        assert_eq!(client.calls_issued(), 1);
    }
}
