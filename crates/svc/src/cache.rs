//! Sharded in-memory cache of compressed images, keyed by content hash.
//!
//! The compress endpoint is a pure function of its payload, so identical
//! requests can be answered from memory. The cache is sharded to keep lock
//! contention off the hot path (shard = high bits of the key, so the
//! FNV-1a avalanche spreads load), and **bounded** in both entries and
//! bytes per shard with deterministic FIFO eviction: for a given sequence
//! of inserts into a shard, the same entries survive on every run —
//! there is no clock, no randomness, and no access-recency feedback to
//! make eviction order depend on timing.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cache shape knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of shards (0 disables the cache entirely).
    pub shards: usize,
    /// Max entries per shard.
    pub max_entries_per_shard: usize,
    /// Max value bytes per shard.
    pub max_bytes_per_shard: usize,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            shards: 8,
            max_entries_per_shard: 512,
            max_bytes_per_shard: 8 << 20,
        }
    }
}

/// FNV-1a 64-bit: the cache's content hash. Stable across runs and
/// platforms — the key of an entry is a pure function of the payload.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Shard {
    map: HashMap<u64, Vec<u8>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<u64>,
    bytes: usize,
}

/// The sharded, bounded cache.
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    config: CacheConfig,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ShardedCache {
    /// An empty cache with the given shape.
    pub fn new(config: CacheConfig) -> ShardedCache {
        let shards = (0..config.shards)
            .map(|_| {
                Mutex::new(Shard {
                    map: HashMap::new(),
                    order: VecDeque::new(),
                    bytes: 0,
                })
            })
            .collect();
        ShardedCache {
            shards,
            config,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: u64) -> &Mutex<Shard> {
        // High bits: FNV's avalanche is weakest in the low bits.
        let i = (key >> 32) as usize % self.shards.len();
        &self.shards[i]
    }

    /// Looks up `key`, counting the hit or miss.
    pub fn get(&self, key: u64) -> Option<Vec<u8>> {
        if self.shards.is_empty() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let shard = self.shard_of(key).lock().expect("cache shard poisoned");
        match shard.map.get(&key) {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `key -> value`, evicting oldest-inserted entries until the
    /// shard fits its bounds again. A value bigger than a whole shard is
    /// simply not cached.
    pub fn insert(&self, key: u64, value: Vec<u8>) {
        if self.shards.is_empty() || value.len() > self.config.max_bytes_per_shard {
            return;
        }
        let mut shard = self.shard_of(key).lock().expect("cache shard poisoned");
        if shard.map.contains_key(&key) {
            return; // same content hash ⇒ same value; nothing to update
        }
        while shard.order.len() >= self.config.max_entries_per_shard
            || shard.bytes + value.len() > self.config.max_bytes_per_shard
        {
            let oldest = match shard.order.pop_front() {
                Some(k) => k,
                None => break,
            };
            if let Some(v) = shard.map.remove(&oldest) {
                shard.bytes -= v.len();
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.bytes += value.len();
        shard.order.push_back(key);
        shard.map.insert(key, value);
    }

    /// (hits, misses, evictions) so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }

    /// Entries currently resident, across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ShardedCache {
        ShardedCache::new(CacheConfig {
            shards: 1,
            max_entries_per_shard: 3,
            max_bytes_per_shard: 100,
        })
    }

    #[test]
    fn content_hash_is_stable() {
        // FNV-1a reference values: the key is part of the on-wire contract
        // between loadgen's expectations and the server's cache.
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(content_hash(b"ab"), content_hash(b"ab"));
        assert_ne!(content_hash(b"ab"), content_hash(b"ba"));
    }

    #[test]
    fn hit_miss_and_round_trip() {
        let c = tiny();
        assert_eq!(c.get(1), None);
        c.insert(1, vec![1, 2, 3]);
        assert_eq!(c.get(1), Some(vec![1, 2, 3]));
        assert_eq!(c.stats(), (1, 1, 0));
    }

    #[test]
    fn entry_bound_evicts_fifo() {
        let c = tiny();
        for k in 0..5u64 {
            c.insert(k, vec![k as u8]);
        }
        // Capacity 3: the two oldest (0, 1) must be gone, newest resident.
        assert_eq!(c.get(0), None);
        assert_eq!(c.get(1), None);
        assert_eq!(c.get(2), Some(vec![2]));
        assert_eq!(c.get(4), Some(vec![4]));
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().2, 2);
    }

    #[test]
    fn byte_bound_evicts_until_fit() {
        let c = tiny();
        c.insert(1, vec![0; 60]);
        c.insert(2, vec![0; 30]);
        c.insert(3, vec![0; 50]); // 140 > 100: evict 1 (60) → 80, fits
        assert_eq!(c.get(1), None);
        assert!(c.get(2).is_some() && c.get(3).is_some());
    }

    #[test]
    fn oversized_value_not_cached() {
        let c = tiny();
        c.insert(1, vec![0; 101]);
        assert_eq!(c.get(1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn eviction_is_deterministic() {
        let survivors = |order: &[u64]| -> Vec<u64> {
            let c = tiny();
            for &k in order {
                c.insert(k, vec![k as u8]);
            }
            (0..10u64).filter(|&k| c.get(k).is_some()).collect()
        };
        let keys = [7u64, 3, 9, 1, 5, 2];
        assert_eq!(survivors(&keys), survivors(&keys));
        assert_eq!(survivors(&keys), vec![1, 2, 5]);
    }

    #[test]
    fn zero_shards_disables_cleanly() {
        let c = ShardedCache::new(CacheConfig {
            shards: 0,
            max_entries_per_shard: 10,
            max_bytes_per_shard: 10,
        });
        c.insert(1, vec![1]);
        assert_eq!(c.get(1), None);
        assert!(c.is_empty());
    }
}
