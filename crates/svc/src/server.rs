//! The `cpackd` server: a fault-tolerant compression service on loopback
//! TCP.
//!
//! The design goal is *typed degradation*: every way the service can fail
//! a request maps to a [`Status`] the client can reason about, never a
//! hang and never a silently dropped connection. The moving parts:
//!
//! - **Acceptor thread** — accepts connections and spawns one connection
//!   thread each; woken for shutdown by a self-connect.
//! - **Connection threads** — parse requests, enforce admission and
//!   deadlines, and write responses. A connection thread is the single
//!   writer for its socket, so responses are never interleaved.
//! - **Bounded admission queue** — an `mpsc::sync_channel` of configured
//!   depth. Admission uses `try_send`: a full queue sheds the request
//!   with a typed [`Status::Overloaded`] instead of queueing unboundedly
//!   or blocking the connection.
//! - **Worker pool** — threads draining the queue. A worker that dies
//!   mid-request (chaos kill, panic) drops its response channel, which
//!   the waiting connection observes as a typed [`Status::WorkerLost`];
//!   a drop guard respawns the worker so capacity recovers without
//!   operator action.
//! - **Deadlines** — every request carries one (clamped to the server's
//!   bounds). The connection waits at most that long for the worker and
//!   then answers [`Status::DeadlineExceeded`]; workers also refuse to
//!   start work on requests that expired while queued.
//! - **Graceful drain** — [`ServerHandle::shutdown`] stops admission
//!   (late requests get [`Status::ShuttingDown`]), lets in-flight work
//!   finish, joins every thread, and returns a final metrics snapshot.
//!
//! All `svc.*` accounting flows through one [`MetricsRegistry`];
//! response-status counters are incremented by the connection thread at
//! write time, so `svc.responses.<status>` counts exactly what clients
//! were told.

use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use codepack_analyze::{check_frame, LintReport};
use codepack_core::frame::{pack_frame, scan_frame, unpack_frame, PackOptions, UnpackOptions};
use codepack_mem::StreamIntegrity;
use codepack_obs::names::{
    SVC_CACHE_EVICTIONS, SVC_CACHE_HITS, SVC_CACHE_MISSES, SVC_DEADLINE_EXCEEDED, SVC_LATENCY_US,
    SVC_PROTO_ERRORS, SVC_REQUESTS, SVC_SHED, SVC_SHUTTING_DOWN, SVC_WORKER_DEATHS,
    SVC_WORKER_RESPAWNS,
};
use codepack_obs::MetricsRegistry;

use crate::cache::{content_hash, CacheConfig, ShardedCache};
use crate::proto::{
    self, Op, ProtoError, Request, Response, Status, CHAOS_EXIT_AFTER_REPLY,
    CHAOS_PANIC_MID_REQUEST,
};

/// Longest sleep one `Burn` request can hold a worker, milliseconds.
/// Bounds how much backlog a hostile client can manufacture per request.
pub const BURN_CAP_MS: u32 = 1_000;

/// Server shape and limits.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads draining the admission queue.
    pub workers: usize,
    /// Admission queue depth; a full queue sheds with `Overloaded`.
    pub queue_depth: usize,
    /// Per-request payload limit, bytes.
    pub max_payload: u32,
    /// Deadline applied when a request carries `deadline_ms == 0`.
    pub default_deadline_ms: u32,
    /// Upper clamp on any request's deadline.
    pub max_deadline_ms: u32,
    /// Idle-connection read timeout, milliseconds (0 = none).
    pub idle_timeout_ms: u64,
    /// Compress-result cache shape.
    pub cache: CacheConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            max_payload: 8 << 20,
            default_deadline_ms: 2_000,
            max_deadline_ms: 30_000,
            idle_timeout_ms: 60_000,
            cache: CacheConfig::default(),
        }
    }
}

impl ServerConfig {
    /// The effective deadline for a request-declared value: 0 means the
    /// server default, everything is clamped to `max_deadline_ms`.
    fn effective_deadline(&self, requested_ms: u32) -> Duration {
        let ms = if requested_ms == 0 {
            self.default_deadline_ms
        } else {
            requested_ms.min(self.max_deadline_ms)
        };
        Duration::from_millis(u64::from(ms))
    }
}

/// One unit of admitted work, in flight between a connection thread and
/// a worker. Dropping `resp_tx` unanswered is how a dead worker turns
/// into a typed `WorkerLost` at the connection.
struct Job {
    req: Request,
    accepted_at: Instant,
    deadline: Duration,
    resp_tx: mpsc::Sender<Response>,
}

/// State shared by every thread of one server.
struct Shared {
    config: ServerConfig,
    metrics: Mutex<MetricsRegistry>,
    cache: ShardedCache,
    shutting_down: AtomicBool,
    job_rx: Mutex<mpsc::Receiver<Job>>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
    worker_seq: AtomicUsize,
}

/// Locks a mutex, recovering from poisoning: a worker that panicked can
/// never take the metrics or queue down with it.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Live connections: the registered stream (so drain can shut its read
/// half) paired with its serving thread.
type ConnRegistry = Arc<Mutex<Vec<(TcpStream, thread::JoinHandle<()>)>>>;

/// A running `cpackd` server. Dropping the handle performs a graceful
/// shutdown; call [`ServerHandle::shutdown`] to also get the final
/// metrics snapshot.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<thread::JoinHandle<()>>,
    conns: ConnRegistry,
    job_tx: Option<mpsc::SyncSender<Job>>,
}

/// Starts a server bound to `addr` (use `"127.0.0.1:0"` for an ephemeral
/// port; the bound address is available via [`ServerHandle::addr`]).
pub fn start(addr: &str, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let (job_tx, job_rx) = mpsc::sync_channel::<Job>(config.queue_depth.max(1));
    let workers = config.workers.max(1);
    let cache = ShardedCache::new(config.cache);
    let shared = Arc::new(Shared {
        config,
        metrics: Mutex::new(MetricsRegistry::new()),
        cache,
        shutting_down: AtomicBool::new(false),
        job_rx: Mutex::new(job_rx),
        workers: Mutex::new(Vec::new()),
        worker_seq: AtomicUsize::new(0),
    });
    for _ in 0..workers {
        spawn_worker(&shared);
    }
    let conns: ConnRegistry = Arc::new(Mutex::new(Vec::new()));
    let acceptor = {
        let shared = Arc::clone(&shared);
        let conns = Arc::clone(&conns);
        let job_tx = job_tx.clone();
        thread::Builder::new()
            .name("cpackd-acceptor".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutting_down.load(Ordering::SeqCst) {
                        break;
                    }
                    let stream = match stream {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    let Ok(registered) = stream.try_clone() else {
                        continue;
                    };
                    let handle = {
                        let shared = Arc::clone(&shared);
                        let job_tx = job_tx.clone();
                        thread::Builder::new()
                            .name("cpackd-conn".to_string())
                            .spawn(move || run_conn(&shared, stream, &job_tx))
                    };
                    if let Ok(handle) = handle {
                        let mut conns = lock(&conns);
                        // Prune finished connections so a long-running
                        // daemon doesn't accumulate dead handles.
                        conns.retain(|(_, h)| !h.is_finished());
                        conns.push((registered, handle));
                    }
                }
            })?
    };
    Ok(ServerHandle {
        addr: local,
        shared,
        acceptor: Some(acceptor),
        conns,
        job_tx: Some(job_tx),
    })
}

impl ServerHandle {
    /// The bound address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Gracefully drains the server: stops admission, finishes in-flight
    /// requests, joins every thread, and returns the final metrics
    /// (cache stats folded in).
    pub fn shutdown(mut self) -> MetricsRegistry {
        self.drain();
        snapshot_metrics(&self.shared)
    }

    fn drain(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor out of accept(); it sees the flag and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // Stop reading new requests on every live connection. In-flight
        // requests still get their responses written before the
        // connection thread exits on the resulting EOF.
        let conns = std::mem::take(&mut *lock(&self.conns));
        for (stream, handle) in conns {
            let _ = stream.shutdown(Shutdown::Read);
            let _ = handle.join();
        }
        // With every connection gone, dropping the last job sender lets
        // the workers drain the queue and exit.
        self.job_tx = None;
        loop {
            let handle = lock(&self.shared.workers).pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.drain();
    }
}

/// A consistent metrics snapshot with the cache counters folded in.
fn snapshot_metrics(shared: &Shared) -> MetricsRegistry {
    let mut snap = MetricsRegistry::new();
    snap.merge(&lock(&shared.metrics));
    let (hits, misses, evictions) = shared.cache.stats();
    snap.incr(SVC_CACHE_HITS, hits);
    snap.incr(SVC_CACHE_MISSES, misses);
    snap.incr(SVC_CACHE_EVICTIONS, evictions);
    snap
}

/// Spawns one worker thread and registers its handle for shutdown.
fn spawn_worker(shared: &Arc<Shared>) {
    let n = shared.worker_seq.fetch_add(1, Ordering::SeqCst);
    let cloned = Arc::clone(shared);
    let spawned = thread::Builder::new()
        .name(format!("cpackd-worker-{n}"))
        .spawn(move || run_worker(&cloned));
    match spawned {
        Ok(handle) => lock(&shared.workers).push(handle),
        Err(e) => eprintln!("cpackd: failed to spawn worker: {e}"),
    }
}

/// Respawns the worker when it dies for any reason other than drain —
/// a chaos exit returns from `run_worker` with the guard armed, and a
/// panic unwinds through it. Either way the pool heals itself.
struct RespawnGuard {
    shared: Arc<Shared>,
    armed: bool,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        lock(&self.shared.metrics).incr(SVC_WORKER_DEATHS, 1);
        if !self.shared.shutting_down.load(Ordering::SeqCst) {
            lock(&self.shared.metrics).incr(SVC_WORKER_RESPAWNS, 1);
            spawn_worker(&self.shared);
        }
    }
}

fn run_worker(shared: &Arc<Shared>) {
    let mut guard = RespawnGuard {
        shared: Arc::clone(shared),
        armed: true,
    };
    loop {
        // Hold the receiver lock only for the dequeue, never during
        // request execution.
        let job = lock(&shared.job_rx).recv();
        match job {
            // Every sender is gone: the server is draining. Disarm so
            // the guard treats this as a clean exit.
            Err(_) => {
                guard.armed = false;
                return;
            }
            Ok(job) => {
                if serve(shared, job).is_break() {
                    // Chaos exit-after-reply: die with the guard armed
                    // so the pool respawns a replacement.
                    return;
                }
            }
        }
    }
}

/// Executes one admitted job. `Break` means the worker thread must die
/// (chaos). A panic inside propagates: the response channel drops
/// unanswered (→ `WorkerLost` at the connection) and the respawn guard
/// heals the pool.
fn serve(shared: &Arc<Shared>, job: Job) -> ControlFlow<()> {
    let Job {
        req,
        accepted_at,
        deadline,
        resp_tx,
    } = job;
    if accepted_at.elapsed() >= deadline {
        // Expired while queued: refuse to burn worker time on an answer
        // nobody is waiting for.
        let _ = resp_tx.send(Response {
            id: req.id,
            status: Status::DeadlineExceeded,
            payload: b"deadline expired while queued".to_vec(),
        });
        return ControlFlow::Continue(());
    }
    let (status, payload) = match req.op {
        Op::ChaosKill => match req.payload.first().copied() {
            Some(CHAOS_EXIT_AFTER_REPLY) => {
                let _ = resp_tx.send(Response {
                    id: req.id,
                    status: Status::Ok,
                    payload: Vec::new(),
                });
                return ControlFlow::Break(());
            }
            Some(CHAOS_PANIC_MID_REQUEST) => {
                // Unwinds through the respawn guard; `resp_tx` drops
                // unanswered and the connection reports `WorkerLost`.
                panic!("chaos: injected worker panic (request {})", req.id);
            }
            _ => (
                Status::BadRequest,
                b"chaos payload must be one mode byte".to_vec(),
            ),
        },
        Op::Burn => match <[u8; 4]>::try_from(req.payload.as_slice()) {
            Ok(le) => {
                let ms = u32::from_le_bytes(le).min(BURN_CAP_MS);
                thread::sleep(Duration::from_millis(u64::from(ms)));
                (Status::Ok, Vec::new())
            }
            Err(_) => (
                Status::BadRequest,
                b"burn payload must be a little-endian u32".to_vec(),
            ),
        },
        op => execute(shared, op, &req.payload),
    };
    let _ = resp_tx.send(Response {
        id: req.id,
        status,
        payload,
    });
    ControlFlow::Continue(())
}

fn integrity_name(i: StreamIntegrity) -> &'static str {
    match i {
        StreamIntegrity::None => "none",
        StreamIntegrity::Parity => "parity",
        StreamIntegrity::Crc32 => "crc32",
    }
}

fn words_from_le(payload: &[u8]) -> Option<Vec<u32>> {
    if !payload.len().is_multiple_of(4) {
        return None;
    }
    Some(
        payload
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect(),
    )
}

fn words_to_le(words: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 4);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

/// The pure endpoint handlers: a function of the payload (plus the
/// cache and metrics for `Compress` / `Metrics`). `Ok` responses are
/// byte-identical to the corresponding direct library calls.
fn execute(shared: &Arc<Shared>, op: Op, payload: &[u8]) -> (Status, Vec<u8>) {
    match op {
        Op::Ping => (Status::Ok, payload.to_vec()),
        Op::Compress => {
            let Some(words) = words_from_le(payload) else {
                return (
                    Status::BadRequest,
                    b"compress payload must be whole little-endian words".to_vec(),
                );
            };
            let key = content_hash(payload);
            if let Some(frame) = shared.cache.get(key) {
                return (Status::Ok, frame);
            }
            let frame = pack_frame(&words, &PackOptions::default());
            shared.cache.insert(key, frame.clone());
            (Status::Ok, frame)
        }
        Op::Decompress => match unpack_frame(payload, &UnpackOptions::default()) {
            Ok(words) => (Status::Ok, words_to_le(&words)),
            Err(e) => (Status::Corrupt, e.to_string().into_bytes()),
        },
        Op::Lint => {
            // Static frame verification: chunk extents, CRCs, integrity
            // trailers, payload decode, and the decode-table soundness
            // proof — one pass, no image materialized.
            let mut report = LintReport::new("stream");
            let walk = check_frame(payload, &mut report);
            if !report.is_clean() {
                return (Status::Corrupt, report.to_json().into_bytes());
            }
            let verdict = format!(
                "{{\"schema\":\"cpackd.lint.v1\",\"ok\":true,\"content_size\":{},\
                 \"groups\":{},\"integrity\":\"{}\",\"frame_bytes\":{},\
                 \"warnings\":{},\"checks_run\":{}}}",
                walk.content_size,
                walk.groups,
                integrity_name(walk.integrity),
                payload.len(),
                report.warnings(),
                report.checks_run.len(),
            );
            (Status::Ok, verdict.into_bytes())
        }
        Op::Profile => {
            let Some(words) = words_from_le(payload) else {
                return (
                    Status::BadRequest,
                    b"profile payload must be whole little-endian words".to_vec(),
                );
            };
            let frame = pack_frame(&words, &PackOptions::default());
            let summary = scan_frame(&frame).expect("freshly packed frame scans clean");
            let lens = &summary.group_payload_lens;
            let (min, max, sum) = lens.iter().fold((u32::MAX, 0u32, 0u64), |(lo, hi, s), &l| {
                (lo.min(l), hi.max(l), s + u64::from(l))
            });
            let mean = if lens.is_empty() {
                0.0
            } else {
                sum as f64 / lens.len() as f64
            };
            let ratio = if payload.is_empty() {
                0.0
            } else {
                frame.len() as f64 / payload.len() as f64
            };
            let profile = format!(
                "{{\"schema\":\"cpackd.profile.v1\",\"in_bytes\":{},\"out_bytes\":{},\
                 \"ratio\":{ratio:.6},\"groups\":{},\"group_payload_min\":{},\
                 \"group_payload_max\":{},\"group_payload_mean\":{mean:.2}}}",
                payload.len(),
                frame.len(),
                lens.len(),
                if lens.is_empty() { 0 } else { min },
                max,
            );
            (Status::Ok, profile.into_bytes())
        }
        Op::Metrics => (Status::Ok, snapshot_metrics(shared).to_json().into_bytes()),
        Op::ChaosKill | Op::Burn => unreachable!("handled by the worker loop"),
    }
}

/// Writes `resp` and does the authoritative client-visible accounting:
/// `svc.responses.<status>` counts exactly what was written to the wire.
fn respond(
    shared: &Shared,
    stream: &mut TcpStream,
    resp: &Response,
    latency: Option<Duration>,
) -> Result<(), ProtoError> {
    {
        let mut m = lock(&shared.metrics);
        m.incr(&format!("svc.responses.{}", resp.status.name()), 1);
        if resp.status == Status::DeadlineExceeded {
            m.incr(SVC_DEADLINE_EXCEEDED, 1);
        }
        if resp.status == Status::Ok {
            if let Some(lat) = latency {
                m.observe(SVC_LATENCY_US, lat.as_micros() as u64);
            }
        }
    }
    proto::write_response(stream, resp)
}

fn run_conn(shared: &Arc<Shared>, mut stream: TcpStream, job_tx: &mpsc::SyncSender<Job>) {
    if shared.config.idle_timeout_ms > 0 {
        let idle = Duration::from_millis(shared.config.idle_timeout_ms);
        let _ = stream.set_read_timeout(Some(idle));
    }
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    loop {
        let req = match proto::read_request(&mut stream, shared.config.max_payload) {
            Ok(None) => return, // clean close between frames
            Ok(Some(r)) => r,
            Err(e) => {
                lock(&shared.metrics).incr(SVC_PROTO_ERRORS, 1);
                let status = match &e {
                    // The peer is gone or the stream died: nothing to say.
                    ProtoError::Truncated | ProtoError::Io(_) => return,
                    ProtoError::TooLarge { .. } => Status::TooLarge,
                    _ => Status::BadRequest,
                };
                // A parse error loses the request id, so the reply
                // carries id 0; the stream may be desynchronized, so the
                // connection closes after answering.
                let _ = respond(
                    shared,
                    &mut stream,
                    &Response {
                        id: 0,
                        status,
                        payload: e.to_string().into_bytes(),
                    },
                    None,
                );
                return;
            }
        };
        let accepted_at = Instant::now();
        let deadline = shared.config.effective_deadline(req.deadline_ms);
        let id = req.id;
        if shared.shutting_down.load(Ordering::SeqCst) {
            lock(&shared.metrics).incr(SVC_SHUTTING_DOWN, 1);
            let _ = respond(
                shared,
                &mut stream,
                &Response {
                    id,
                    status: Status::ShuttingDown,
                    payload: b"server is draining".to_vec(),
                },
                None,
            );
            continue;
        }
        let (resp_tx, resp_rx) = mpsc::channel();
        let op_name = req.op.name();
        let job = Job {
            req,
            accepted_at,
            deadline,
            resp_tx,
        };
        match job_tx.try_send(job) {
            Ok(()) => {
                let mut m = lock(&shared.metrics);
                m.incr(SVC_REQUESTS, 1);
                m.incr(&format!("svc.requests.{op_name}"), 1);
            }
            Err(TrySendError::Full(_)) => {
                // Typed load shedding: the request never executes and the
                // client is told exactly why.
                lock(&shared.metrics).incr(SVC_SHED, 1);
                let _ = respond(
                    shared,
                    &mut stream,
                    &Response {
                        id,
                        status: Status::Overloaded,
                        payload: b"admission queue full".to_vec(),
                    },
                    None,
                );
                continue;
            }
            Err(TrySendError::Disconnected(_)) => {
                lock(&shared.metrics).incr(SVC_SHUTTING_DOWN, 1);
                let _ = respond(
                    shared,
                    &mut stream,
                    &Response {
                        id,
                        status: Status::ShuttingDown,
                        payload: b"server is draining".to_vec(),
                    },
                    None,
                );
                continue;
            }
        }
        let resp = match resp_rx.recv_timeout(deadline) {
            Ok(r) => r,
            Err(RecvTimeoutError::Timeout) => {
                lock(&shared.metrics).incr(SVC_DEADLINE_EXCEEDED, 1);
                Response {
                    id,
                    status: Status::DeadlineExceeded,
                    payload: b"deadline exceeded".to_vec(),
                }
            }
            // The worker died before answering: its end of the channel
            // dropped without a send. The respawn guard is already
            // healing the pool; the client gets a typed, retryable
            // status instead of a hang.
            Err(RecvTimeoutError::Disconnected) => Response {
                id,
                status: Status::WorkerLost,
                payload: b"worker died mid-request".to_vec(),
            },
        };
        // recv_timeout already bumped the deadline aggregate above;
        // responses.<status> is counted (once) inside respond().
        let latency = accepted_at.elapsed();
        if respond(shared, &mut stream, &resp, Some(latency)).is_err() {
            return;
        }
        let _ = stream.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_clamping() {
        let c = ServerConfig::default();
        assert_eq!(
            c.effective_deadline(0),
            Duration::from_millis(u64::from(c.default_deadline_ms))
        );
        assert_eq!(c.effective_deadline(50), Duration::from_millis(50));
        assert_eq!(
            c.effective_deadline(u32::MAX),
            Duration::from_millis(u64::from(c.max_deadline_ms))
        );
    }

    fn bare_shared() -> Arc<Shared> {
        let (_tx, rx) = mpsc::sync_channel::<Job>(1);
        Arc::new(Shared {
            config: ServerConfig::default(),
            metrics: Mutex::new(MetricsRegistry::new()),
            cache: ShardedCache::new(CacheConfig::default()),
            shutting_down: AtomicBool::new(false),
            job_rx: Mutex::new(rx),
            workers: Mutex::new(Vec::new()),
            worker_seq: AtomicUsize::new(0),
        })
    }

    fn sample_words(n: usize) -> Vec<u32> {
        (0..n as u32).map(|i| 0x3860_0000 | (i % 7)).collect()
    }

    #[test]
    fn compress_matches_direct_library_call() {
        let shared = bare_shared();
        let words = sample_words(200);
        let payload = words_to_le(&words);
        let (status, frame) = execute(&shared, Op::Compress, &payload);
        assert_eq!(status, Status::Ok);
        assert_eq!(frame, pack_frame(&words, &PackOptions::default()));
        // Second call is served from the cache, byte-identical.
        let (status2, frame2) = execute(&shared, Op::Compress, &payload);
        assert_eq!(status2, Status::Ok);
        assert_eq!(frame2, frame);
        assert_eq!(shared.cache.stats().0, 1, "one cache hit");
    }

    #[test]
    fn decompress_round_trips_and_types_corruption() {
        let shared = bare_shared();
        let words = sample_words(64);
        let frame = pack_frame(&words, &PackOptions::default());
        let (status, out) = execute(&shared, Op::Decompress, &frame);
        assert_eq!(status, Status::Ok);
        assert_eq!(out, words_to_le(&words));
        let (bad, msg) = execute(&shared, Op::Decompress, &frame[..frame.len() - 3]);
        assert_eq!(bad, Status::Corrupt);
        assert!(!msg.is_empty());
    }

    #[test]
    fn misaligned_compress_is_bad_request() {
        let shared = bare_shared();
        let (status, _) = execute(&shared, Op::Compress, &[1, 2, 3]);
        assert_eq!(status, Status::BadRequest);
        let (status, _) = execute(&shared, Op::Profile, &[1, 2, 3, 4, 5]);
        assert_eq!(status, Status::BadRequest);
    }

    #[test]
    fn lint_and_profile_emit_json_verdicts() {
        let shared = bare_shared();
        let words = sample_words(96);
        let payload = words_to_le(&words);
        let frame = pack_frame(&words, &PackOptions::default());
        let (status, verdict) = execute(&shared, Op::Lint, &frame);
        assert_eq!(status, Status::Ok);
        let verdict = String::from_utf8(verdict).unwrap();
        assert!(verdict.contains("\"ok\":true"), "{verdict}");
        assert!(verdict.contains("\"groups\":3"), "{verdict}");
        assert!(verdict.contains("\"integrity\":\"crc32\""), "{verdict}");
        let (status, profile) = execute(&shared, Op::Profile, &payload);
        assert_eq!(status, Status::Ok);
        let profile = String::from_utf8(profile).unwrap();
        assert!(profile.contains("\"in_bytes\":384"), "{profile}");
        assert!(profile.contains("\"groups\":3"), "{profile}");
        // Corrupt frames get a typed verdict, not a panic.
        let mut torn = frame.clone();
        torn[5] ^= 0xff;
        let (status, _) = execute(&shared, Op::Lint, &torn);
        assert_eq!(status, Status::Corrupt);
    }

    #[test]
    fn metrics_endpoint_folds_cache_stats() {
        let shared = bare_shared();
        let payload = words_to_le(&sample_words(32));
        execute(&shared, Op::Compress, &payload);
        execute(&shared, Op::Compress, &payload);
        let (status, json) = execute(&shared, Op::Metrics, &[]);
        assert_eq!(status, Status::Ok);
        let json = String::from_utf8(json).unwrap();
        assert!(json.contains(SVC_CACHE_HITS), "{json}");
        assert!(json.contains(SVC_CACHE_MISSES), "{json}");
    }
}
