//! The `cpackd` wire protocol: length-prefixed binary request/response
//! frames over a byte stream.
//!
//! The protocol is deliberately tiny — fixed-size headers, little-endian
//! integers, one length-prefixed payload per message — so both sides can
//! parse it with nothing but `std` and reject malformed traffic with a
//! typed error instead of a hang or a panic. Every request carries the
//! caller's deadline, so the server can enforce timeouts without trusting
//! the client to go away.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! request:  magic "CPRQ" | version u16 | op u16 | id u64
//!           | deadline_ms u32 | payload_len u32 | payload bytes
//! response: magic "CPRS" | version u16 | status u16 | id u64
//!           | payload_len u32 | payload bytes
//! ```
//!
//! The `id` is chosen by the client and echoed verbatim by the server;
//! a client detecting a mismatched id knows the stream has desynchronized
//! (a torn or duplicated response) and must drop the connection. Error
//! responses carry a human-readable message as their payload.

use std::fmt;
use std::io::{self, Read, Write};

/// Magic bytes opening every request frame.
pub const REQUEST_MAGIC: [u8; 4] = *b"CPRQ";
/// Magic bytes opening every response frame.
pub const RESPONSE_MAGIC: [u8; 4] = *b"CPRS";
/// The protocol version this build speaks.
pub const PROTO_VERSION: u16 = 1;
/// Hard wire-format bound on one payload. Servers may (and do) configure a
/// tighter per-request limit; this cap is what the parser will buffer at
/// most before rejecting, whatever the configuration.
pub const MAX_WIRE_PAYLOAD: u32 = 64 << 20;

/// Fixed request header size in bytes.
pub const REQUEST_HEADER_LEN: usize = 4 + 2 + 2 + 8 + 4 + 4;
/// Fixed response header size in bytes.
pub const RESPONSE_HEADER_LEN: usize = 4 + 2 + 2 + 8 + 4;

/// A service endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// Echo the payload back (health check).
    Ping,
    /// Payload: little-endian instruction words. Response: a `.cpk` frame,
    /// byte-identical to `pack_frame` with the server's options.
    Compress,
    /// Payload: a `.cpk` frame. Response: the decoded instruction words as
    /// little-endian bytes, byte-identical to `unpack_frame`.
    Decompress,
    /// Payload: a `.cpk` frame. Response: a small JSON verdict after a
    /// full structural + codec walk of the frame.
    Lint,
    /// Payload: little-endian instruction words. Response: a JSON
    /// compression profile (sizes, ratio, group-payload percentiles).
    Profile,
    /// Response: the server's metrics registry as JSON.
    Metrics,
    /// Chaos endpoint: payload byte 0 selects the failure mode (see
    /// [`CHAOS_EXIT_AFTER_REPLY`] / [`CHAOS_PANIC_MID_REQUEST`]). The
    /// worker thread that picks this up dies; the pool must respawn it
    /// and no response may be lost.
    ChaosKill,
    /// Busy-work endpoint: payload is a little-endian `u32` number of
    /// milliseconds the worker sleeps before replying. Used by tests and
    /// the load generator to create backlog and exercise deadlines.
    Burn,
}

/// `ChaosKill` payload byte: reply `Ok`, then the worker thread exits.
pub const CHAOS_EXIT_AFTER_REPLY: u8 = 0;
/// `ChaosKill` payload byte: the worker panics mid-request, before any
/// reply is produced. The connection must still answer (typed
/// `WorkerLost`), and the pool must respawn the worker.
pub const CHAOS_PANIC_MID_REQUEST: u8 = 1;

impl Op {
    fn code(self) -> u16 {
        match self {
            Op::Ping => 0,
            Op::Compress => 1,
            Op::Decompress => 2,
            Op::Lint => 3,
            Op::Profile => 4,
            Op::Metrics => 5,
            Op::ChaosKill => 6,
            Op::Burn => 7,
        }
    }

    fn from_code(code: u16) -> Option<Op> {
        Some(match code {
            0 => Op::Ping,
            1 => Op::Compress,
            2 => Op::Decompress,
            3 => Op::Lint,
            4 => Op::Profile,
            5 => Op::Metrics,
            6 => Op::ChaosKill,
            7 => Op::Burn,
            _ => return None,
        })
    }

    /// The endpoint's metric label (`svc.requests.<name>`).
    pub fn name(self) -> &'static str {
        match self {
            Op::Ping => "ping",
            Op::Compress => "compress",
            Op::Decompress => "decompress",
            Op::Lint => "lint",
            Op::Profile => "profile",
            Op::Metrics => "metrics",
            Op::ChaosKill => "chaos_kill",
            Op::Burn => "burn",
        }
    }

    /// All endpoints, in wire-code order.
    pub fn all() -> [Op; 8] {
        [
            Op::Ping,
            Op::Compress,
            Op::Decompress,
            Op::Lint,
            Op::Profile,
            Op::Metrics,
            Op::ChaosKill,
            Op::Burn,
        ]
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A response status. `Ok` carries the result payload; everything else
/// carries a message. The taxonomy mirrors the CLI's exit-code classes:
/// `BadRequest` is a usage error (exit 2 at the CLI), `Corrupt` is a data
/// error (exit 1), and the rest are service conditions a client may retry
/// or must surface.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Status {
    /// Success; the payload is the endpoint's result.
    Ok,
    /// The request itself is malformed (unknown op, bad payload shape).
    /// Not retryable.
    BadRequest,
    /// The payload failed integrity or codec checks (a `FrameError` or
    /// `DecompressError`). Not retryable.
    Corrupt,
    /// The payload exceeds the server's configured limit. Not retryable.
    TooLarge,
    /// The admission queue was full; the request was shed without being
    /// executed. Retryable.
    Overloaded,
    /// The deadline expired before (or while) the request executed.
    /// Retryable if the caller still has budget.
    DeadlineExceeded,
    /// The server is draining; no new work is admitted. Retryable against
    /// a restarted server.
    ShuttingDown,
    /// The worker thread processing the request died before replying.
    /// Retryable — the request may or may not have had side effects, but
    /// every `cpackd` endpoint is idempotent.
    WorkerLost,
}

impl Status {
    fn code(self) -> u16 {
        match self {
            Status::Ok => 0,
            Status::BadRequest => 1,
            Status::Corrupt => 2,
            Status::TooLarge => 3,
            Status::Overloaded => 4,
            Status::DeadlineExceeded => 5,
            Status::ShuttingDown => 6,
            Status::WorkerLost => 7,
        }
    }

    fn from_code(code: u16) -> Option<Status> {
        Some(match code {
            0 => Status::Ok,
            1 => Status::BadRequest,
            2 => Status::Corrupt,
            3 => Status::TooLarge,
            4 => Status::Overloaded,
            5 => Status::DeadlineExceeded,
            6 => Status::ShuttingDown,
            7 => Status::WorkerLost,
            _ => return None,
        })
    }

    /// The status's metric label (`svc.responses.<name>`).
    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::BadRequest => "bad_request",
            Status::Corrupt => "corrupt",
            Status::TooLarge => "too_large",
            Status::Overloaded => "overloaded",
            Status::DeadlineExceeded => "deadline_exceeded",
            Status::ShuttingDown => "shutting_down",
            Status::WorkerLost => "worker_lost",
        }
    }

    /// Whether a client retry can plausibly succeed. `BadRequest`,
    /// `Corrupt`, and `TooLarge` are properties of the request itself and
    /// never clear on their own.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            Status::Overloaded
                | Status::DeadlineExceeded
                | Status::ShuttingDown
                | Status::WorkerLost
        )
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen id, echoed in the response.
    pub id: u64,
    /// The endpoint.
    pub op: Op,
    /// The caller's deadline in milliseconds (0 = use the server default).
    pub deadline_ms: u32,
    /// The request payload.
    pub payload: Vec<u8>,
}

/// One parsed response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// The request id this answers.
    pub id: u64,
    /// The outcome.
    pub status: Status,
    /// Result bytes (`Ok`) or a message (any error status).
    pub payload: Vec<u8>,
}

/// Error reading or writing protocol frames. Every malformed byte stream
/// maps to one of these — the parser never panics and never hangs past
/// the configured socket timeout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// The stream ended mid-frame.
    Truncated,
    /// The frame does not start with the expected magic.
    BadMagic,
    /// The peer speaks an incompatible protocol version.
    VersionSkew {
        /// The version the frame declares.
        version: u16,
    },
    /// The op code is not one this build knows.
    UnknownOp(u16),
    /// The status code is not one this build knows.
    UnknownStatus(u16),
    /// The declared payload length exceeds the acceptable bound.
    TooLarge {
        /// The declared length.
        len: u32,
        /// The bound it violated.
        limit: u32,
    },
    /// The underlying socket failed (includes read/write timeouts).
    Io(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "stream truncated mid-frame"),
            ProtoError::BadMagic => write!(f, "not a cpackd protocol frame (bad magic)"),
            ProtoError::VersionSkew { version } => write!(
                f,
                "unsupported protocol version {version} (this build speaks {PROTO_VERSION})"
            ),
            ProtoError::UnknownOp(code) => write!(f, "unknown op code {code}"),
            ProtoError::UnknownStatus(code) => write!(f, "unknown status code {code}"),
            ProtoError::TooLarge { len, limit } => {
                write!(f, "payload of {len} bytes exceeds the {limit}-byte limit")
            }
            ProtoError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> ProtoError {
        match e.kind() {
            io::ErrorKind::UnexpectedEof => ProtoError::Truncated,
            _ => ProtoError::Io(e.to_string()),
        }
    }
}

fn read_exact(r: &mut impl Read, buf: &mut [u8]) -> Result<(), ProtoError> {
    r.read_exact(buf).map_err(ProtoError::from)
}

/// Reads exactly the first byte of a frame, distinguishing a clean EOF
/// (peer closed between frames → `Ok(None)`) from a truncation.
fn read_first_byte(r: &mut impl Read) -> Result<Option<u8>, ProtoError> {
    let mut b = [0u8; 1];
    loop {
        match r.read(&mut b) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(b[0])),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::from(e)),
        }
    }
}

fn payload_with_limit(r: &mut impl Read, len: u32, limit: u32) -> Result<Vec<u8>, ProtoError> {
    let limit = limit.min(MAX_WIRE_PAYLOAD);
    if len > limit {
        return Err(ProtoError::TooLarge { len, limit });
    }
    let mut payload = vec![0u8; len as usize];
    read_exact(r, &mut payload)?;
    Ok(payload)
}

/// Reads one request frame. `Ok(None)` means the peer closed the stream
/// cleanly between frames; anything else mid-frame is [`ProtoError`].
/// `max_payload` bounds how much this call will buffer (further capped by
/// [`MAX_WIRE_PAYLOAD`]).
pub fn read_request(r: &mut impl Read, max_payload: u32) -> Result<Option<Request>, ProtoError> {
    let first = match read_first_byte(r)? {
        None => return Ok(None),
        Some(b) => b,
    };
    let mut head = [0u8; REQUEST_HEADER_LEN];
    head[0] = first;
    read_exact(r, &mut head[1..])?;
    if head[..4] != REQUEST_MAGIC {
        return Err(ProtoError::BadMagic);
    }
    let version = u16::from_le_bytes([head[4], head[5]]);
    if version != PROTO_VERSION {
        return Err(ProtoError::VersionSkew { version });
    }
    let op_code = u16::from_le_bytes([head[6], head[7]]);
    let op = Op::from_code(op_code).ok_or(ProtoError::UnknownOp(op_code))?;
    let id = u64::from_le_bytes(head[8..16].try_into().expect("8 bytes"));
    let deadline_ms = u32::from_le_bytes(head[16..20].try_into().expect("4 bytes"));
    let len = u32::from_le_bytes(head[20..24].try_into().expect("4 bytes"));
    let payload = payload_with_limit(r, len, max_payload)?;
    Ok(Some(Request {
        id,
        op,
        deadline_ms,
        payload,
    }))
}

/// Writes one request frame.
pub fn write_request(w: &mut impl Write, req: &Request) -> Result<(), ProtoError> {
    let mut head = Vec::with_capacity(REQUEST_HEADER_LEN);
    head.extend_from_slice(&REQUEST_MAGIC);
    head.extend_from_slice(&PROTO_VERSION.to_le_bytes());
    head.extend_from_slice(&req.op.code().to_le_bytes());
    head.extend_from_slice(&req.id.to_le_bytes());
    head.extend_from_slice(&req.deadline_ms.to_le_bytes());
    head.extend_from_slice(&(req.payload.len() as u32).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(&req.payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one response frame. `Ok(None)` means the peer closed the stream
/// cleanly between frames.
pub fn read_response(r: &mut impl Read, max_payload: u32) -> Result<Option<Response>, ProtoError> {
    let first = match read_first_byte(r)? {
        None => return Ok(None),
        Some(b) => b,
    };
    let mut head = [0u8; RESPONSE_HEADER_LEN];
    head[0] = first;
    read_exact(r, &mut head[1..])?;
    if head[..4] != RESPONSE_MAGIC {
        return Err(ProtoError::BadMagic);
    }
    let version = u16::from_le_bytes([head[4], head[5]]);
    if version != PROTO_VERSION {
        return Err(ProtoError::VersionSkew { version });
    }
    let status_code = u16::from_le_bytes([head[6], head[7]]);
    let status = Status::from_code(status_code).ok_or(ProtoError::UnknownStatus(status_code))?;
    let id = u64::from_le_bytes(head[8..16].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(head[16..20].try_into().expect("4 bytes"));
    let payload = payload_with_limit(r, len, max_payload)?;
    Ok(Some(Response {
        id,
        status,
        payload,
    }))
}

/// Writes one response frame.
pub fn write_response(w: &mut impl Write, resp: &Response) -> Result<(), ProtoError> {
    let mut head = Vec::with_capacity(RESPONSE_HEADER_LEN);
    head.extend_from_slice(&RESPONSE_MAGIC);
    head.extend_from_slice(&PROTO_VERSION.to_le_bytes());
    head.extend_from_slice(&resp.status.code().to_le_bytes());
    head.extend_from_slice(&resp.id.to_le_bytes());
    head.extend_from_slice(&(resp.payload.len() as u32).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(&resp.payload)?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        for op in Op::all() {
            let req = Request {
                id: 0xdead_beef_1234,
                op,
                deadline_ms: 250,
                payload: vec![1, 2, 3, 4, 5],
            };
            let mut wire = Vec::new();
            write_request(&mut wire, &req).unwrap();
            let back = read_request(&mut wire.as_slice(), MAX_WIRE_PAYLOAD)
                .unwrap()
                .expect("one frame");
            assert_eq!(back, req);
        }
    }

    #[test]
    fn response_round_trips_every_status() {
        for status in [
            Status::Ok,
            Status::BadRequest,
            Status::Corrupt,
            Status::TooLarge,
            Status::Overloaded,
            Status::DeadlineExceeded,
            Status::ShuttingDown,
            Status::WorkerLost,
        ] {
            let resp = Response {
                id: 7,
                status,
                payload: status.name().as_bytes().to_vec(),
            };
            let mut wire = Vec::new();
            write_response(&mut wire, &resp).unwrap();
            let back = read_response(&mut wire.as_slice(), MAX_WIRE_PAYLOAD)
                .unwrap()
                .expect("one frame");
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn clean_eof_is_none_torn_is_truncated() {
        assert_eq!(read_request(&mut [].as_slice(), 1024), Ok(None));
        let req = Request {
            id: 1,
            op: Op::Ping,
            deadline_ms: 0,
            payload: vec![9; 32],
        };
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        for cut in 1..wire.len() {
            assert_eq!(
                read_request(&mut &wire[..cut], 1024),
                Err(ProtoError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn garbage_version_op_status_rejected() {
        let mut wire = Vec::new();
        write_request(
            &mut wire,
            &Request {
                id: 1,
                op: Op::Ping,
                deadline_ms: 0,
                payload: Vec::new(),
            },
        )
        .unwrap();
        let mut bad = wire.clone();
        bad[0] = b'X';
        assert_eq!(
            read_request(&mut bad.as_slice(), 1024),
            Err(ProtoError::BadMagic)
        );
        let mut skew = wire.clone();
        skew[4] = 99;
        assert_eq!(
            read_request(&mut skew.as_slice(), 1024),
            Err(ProtoError::VersionSkew { version: 99 })
        );
        let mut op = wire.clone();
        op[6] = 0xff;
        assert_eq!(
            read_request(&mut op.as_slice(), 1024),
            Err(ProtoError::UnknownOp(0xff))
        );
        let mut resp_wire = Vec::new();
        write_response(
            &mut resp_wire,
            &Response {
                id: 1,
                status: Status::Ok,
                payload: Vec::new(),
            },
        )
        .unwrap();
        resp_wire[6] = 0xee;
        assert_eq!(
            read_response(&mut resp_wire.as_slice(), 1024),
            Err(ProtoError::UnknownStatus(0xee))
        );
    }

    #[test]
    fn oversized_payload_rejected_before_buffering() {
        let req = Request {
            id: 1,
            op: Op::Compress,
            deadline_ms: 0,
            payload: vec![0; 100],
        };
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        assert_eq!(
            read_request(&mut wire.as_slice(), 64),
            Err(ProtoError::TooLarge {
                len: 100,
                limit: 64
            })
        );
        // A hostile length field never allocates past the wire cap.
        let mut hostile = wire.clone();
        hostile[20..24].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            read_request(&mut hostile.as_slice(), u32::MAX),
            Err(ProtoError::TooLarge {
                len: u32::MAX,
                limit: MAX_WIRE_PAYLOAD
            })
        );
    }

    #[test]
    fn retryable_statuses_match_contract() {
        assert!(Status::Overloaded.is_retryable());
        assert!(Status::ShuttingDown.is_retryable());
        assert!(Status::WorkerLost.is_retryable());
        assert!(Status::DeadlineExceeded.is_retryable());
        assert!(!Status::BadRequest.is_retryable());
        assert!(!Status::Corrupt.is_retryable());
        assert!(!Status::TooLarge.is_retryable());
    }
}
