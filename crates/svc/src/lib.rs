//! # codepack-svc — `cpackd`, a fault-tolerant compression service
//!
//! The workspace's codec behind a request/response daemon on loopback
//! TCP, built for *typed degradation*: under overload, deadline
//! pressure, worker death, or shutdown, every request gets an explicit
//! [`Status`] — never a hang, never a silently dropped
//! connection. Hermetic by construction: `std` only, loopback only.
//!
//! The pieces:
//!
//! - [`proto`] — the length-prefixed binary wire protocol (requests
//!   carry deadlines; responses carry a typed status).
//! - [`server`] — acceptor / connection threads / bounded admission
//!   queue / self-healing worker pool / graceful drain, with `svc.*`
//!   metrics through `codepack-obs`.
//! - [`client`] — deadline-carrying calls with bounded, deterministic
//!   retry/backoff (testkit-PRNG jitter; fixed seed ⇒ identical
//!   schedules at any worker count).
//! - [`cache`] — sharded, bounded, deterministically-evicting cache of
//!   compressed images keyed by content hash.
//! - [`retry`] — the backoff schedule as a pure function of
//!   `(policy, seed, call_id)`.
//!
//! The `cpackd` binary (this crate's `src/bin/cpackd.rs`) serves until
//! stdin closes, then drains gracefully; `cpack loadgen` (in the CLI
//! crate) drives it with a fixed-seed mixed workload and a chaos mode.

#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
pub mod proto;
pub mod retry;
pub mod server;

pub use cache::{content_hash, CacheConfig, ShardedCache};
pub use client::{send_raw, CallError, Client, ClientConfig};
pub use proto::{
    Op, ProtoError, Request, Response, Status, CHAOS_EXIT_AFTER_REPLY, CHAOS_PANIC_MID_REQUEST,
    MAX_WIRE_PAYLOAD, PROTO_VERSION,
};
pub use retry::RetryPolicy;
pub use server::{start, ServerConfig, ServerHandle, BURN_CAP_MS};
