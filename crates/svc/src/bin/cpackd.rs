//! `cpackd` — the compression service daemon.
//!
//! Binds loopback TCP, prints the bound address, and serves until stdin
//! closes (the hermetic substitute for signal handling: a supervisor
//! that wants a graceful drain closes the pipe; a hard kill exercises
//! the crash path the chaos tests cover).

use std::io::Read;
use std::process::ExitCode;

use codepack_svc::{server, ServerConfig};

const USAGE: &str = "usage: cpackd [--addr HOST:PORT] [--workers N] [--queue-depth N]\n\
       serves until stdin closes, then drains gracefully";

fn parse_args() -> Result<(String, ServerConfig), String> {
    let mut addr = "127.0.0.1:0".to_string();
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr")?,
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue-depth" => {
                config.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    Ok((addr, config))
}

fn main() -> ExitCode {
    let (addr, config) = match parse_args() {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let handle = match server::start(&addr, config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cpackd: failed to bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The one line supervisors parse; flushed by println's newline.
    println!("cpackd: listening on {}", handle.addr());
    // Block until the control pipe closes.
    let mut sink = [0u8; 256];
    let mut stdin = std::io::stdin().lock();
    loop {
        match stdin.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    let metrics = handle.shutdown();
    eprintln!(
        "cpackd: drained ({} requests served)",
        metrics.counter_value("svc.requests").unwrap_or(0)
    );
    ExitCode::SUCCESS
}
