//! End-to-end tests of the `cpackd` service over real loopback sockets:
//! correctness of every endpoint against direct library calls, and the
//! robustness contract — overload, deadlines, worker death, hostile
//! bytes, and graceful drain all degrade to *typed* statuses, never
//! hangs or dropped connections.

use std::thread;
use std::time::Duration;

use codepack_core::frame::{pack_frame, unpack_frame, PackOptions, UnpackOptions};
use codepack_obs::names::{
    SVC_CACHE_HITS, SVC_DEADLINE_EXCEEDED, SVC_PROTO_ERRORS, SVC_SHED, SVC_WORKER_DEATHS,
    SVC_WORKER_RESPAWNS,
};
use codepack_svc::{
    send_raw, server, CallError, Client, ClientConfig, Op, RetryPolicy, ServerConfig, Status,
    CHAOS_EXIT_AFTER_REPLY, CHAOS_PANIC_MID_REQUEST,
};

fn sample_words(n: usize) -> Vec<u32> {
    (0..n as u32)
        .map(|i| match i % 11 {
            10 => i.wrapping_mul(0x9e37_79b9),
            k => 0x7c08_0000 | (k << 5),
        })
        .collect()
}

fn words_to_le(words: &[u32]) -> Vec<u8> {
    words.iter().flat_map(|w| w.to_le_bytes()).collect()
}

fn no_retry(deadline_ms: u32) -> ClientConfig {
    ClientConfig {
        deadline_ms,
        retry: RetryPolicy::none(),
        seed: 1,
        ..ClientConfig::default()
    }
}

#[test]
fn endpoints_match_direct_library_calls() {
    let handle = server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::new(handle.addr(), ClientConfig::default());

    let echoed = client.call(Op::Ping, b"hello cpackd").unwrap();
    assert_eq!(echoed, b"hello cpackd");

    let words = sample_words(300);
    let payload = words_to_le(&words);
    let frame = client.call(Op::Compress, &payload).unwrap();
    assert_eq!(
        frame,
        pack_frame(&words, &PackOptions::default()),
        "service compression must be byte-identical to the library"
    );

    let decoded = client.call(Op::Decompress, &frame).unwrap();
    assert_eq!(decoded, payload);
    assert_eq!(
        unpack_frame(&frame, &UnpackOptions::default()).unwrap(),
        words
    );

    let verdict = String::from_utf8(client.call(Op::Lint, &frame).unwrap()).unwrap();
    assert!(verdict.contains("\"ok\":true"), "{verdict}");

    let profile = String::from_utf8(client.call(Op::Profile, &payload).unwrap()).unwrap();
    assert!(
        profile.contains("\"schema\":\"cpackd.profile.v1\""),
        "{profile}"
    );

    let metrics = String::from_utf8(client.call(Op::Metrics, &[]).unwrap()).unwrap();
    assert!(metrics.contains("svc.requests"), "{metrics}");

    // Same compress again: served from the cache, still byte-identical.
    let frame2 = client.call(Op::Compress, &payload).unwrap();
    assert_eq!(frame2, frame);
    let snap = handle.shutdown();
    assert_eq!(snap.counter_value(SVC_CACHE_HITS), Some(1));
}

#[test]
fn request_errors_are_typed_and_never_retried() {
    let handle = server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::new(handle.addr(), ClientConfig::default());

    // Misaligned compress payload: BadRequest, exactly one attempt.
    match client.call(Op::Compress, &[1, 2, 3]) {
        Err(CallError::Rejected {
            status: Status::BadRequest,
            attempts: 1,
            ..
        }) => {}
        other => panic!("expected BadRequest after 1 attempt, got {other:?}"),
    }

    // A torn frame: Corrupt, exactly one attempt, message from FrameError.
    let frame = pack_frame(&sample_words(64), &PackOptions::default());
    match client.call(Op::Decompress, &frame[..frame.len() - 5]) {
        Err(CallError::Rejected {
            status: Status::Corrupt,
            attempts: 1,
            message,
        }) => assert!(!message.is_empty()),
        other => panic!("expected Corrupt after 1 attempt, got {other:?}"),
    }

    // The connection survived both rejections.
    assert_eq!(client.call(Op::Ping, b"still here").unwrap(), b"still here");
}

#[test]
fn oversized_payload_is_typed_too_large() {
    let config = ServerConfig {
        max_payload: 1024,
        ..ServerConfig::default()
    };
    let handle = server::start("127.0.0.1:0", config).unwrap();
    let mut client = Client::new(handle.addr(), ClientConfig::default());
    match client.call(Op::Ping, &vec![0u8; 4096]) {
        Err(CallError::Rejected {
            status: Status::TooLarge,
            ..
        }) => {}
        other => panic!("expected TooLarge, got {other:?}"),
    }
    // The server closed that stream after the parse error; the client
    // transparently reconnects.
    assert_eq!(client.call(Op::Ping, b"ok").unwrap(), b"ok");
    drop(handle);
}

#[test]
fn overload_sheds_with_typed_overloaded() {
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    };
    let handle = server::start("127.0.0.1:0", config).unwrap();
    let addr = handle.addr();
    let burn_ms = 600u32.to_le_bytes();

    // Occupy the single worker, then fill the single queue slot.
    let burners: Vec<_> = (0..2)
        .map(|_| {
            let mut c = Client::new(addr, no_retry(5_000));
            let burn = burn_ms;
            let h = thread::spawn(move || c.call(Op::Burn, &burn));
            thread::sleep(Duration::from_millis(150));
            h
        })
        .collect();

    // Queue full: typed shed, no hang, no dropped connection.
    let mut probe = Client::new(addr, no_retry(5_000));
    match probe.call(Op::Ping, b"over capacity") {
        Err(CallError::Rejected {
            status: Status::Overloaded,
            attempts: 1,
            ..
        }) => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }

    // The burners themselves complete fine once the worker frees up.
    for h in burners {
        h.join().unwrap().expect("burner completes");
    }
    // And after the backlog clears, the same probe connection works.
    assert_eq!(probe.call(Op::Ping, b"after").unwrap(), b"after");
    let snap = handle.shutdown();
    assert!(snap.counter_value(SVC_SHED).unwrap_or(0) >= 1);
}

#[test]
fn deadlines_produce_typed_deadline_exceeded() {
    let handle = server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::new(handle.addr(), no_retry(120));
    let start = std::time::Instant::now();
    match client.call(Op::Burn, &800u32.to_le_bytes()) {
        Err(CallError::Rejected {
            status: Status::DeadlineExceeded,
            attempts: 1,
            ..
        }) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_millis(700),
        "client must not wait out the burn: {elapsed:?}"
    );
    let snap = handle.shutdown();
    assert!(snap.counter_value(SVC_DEADLINE_EXCEEDED).unwrap_or(0) >= 1);
}

#[test]
fn worker_death_is_typed_and_pool_heals() {
    let config = ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    };
    let handle = server::start("127.0.0.1:0", config).unwrap();
    let mut client = Client::new(handle.addr(), no_retry(2_000));

    // Mode 1: the worker panics mid-request. The waiting connection gets
    // a typed WorkerLost, not a hang.
    match client.call(Op::ChaosKill, &[CHAOS_PANIC_MID_REQUEST]) {
        Err(CallError::Rejected {
            status: Status::WorkerLost,
            attempts: 1,
            ..
        }) => {}
        other => panic!("expected WorkerLost, got {other:?}"),
    }

    // Mode 0: the worker replies Ok and then dies; the response must not
    // be lost.
    assert!(client
        .call(Op::ChaosKill, &[CHAOS_EXIT_AFTER_REPLY])
        .is_ok());

    // Both dead workers were respawned: the pool still serves more
    // concurrent work than the survivors could.
    let echoed = client.call(Op::Ping, b"healed").unwrap();
    assert_eq!(echoed, b"healed");
    let snap = handle.shutdown();
    assert_eq!(snap.counter_value(SVC_WORKER_DEATHS), Some(2));
    // A worker whose drop guard runs after the drain flag is set skips
    // its (now pointless) respawn, so the count may trail deaths by the
    // kills that raced the shutdown — but never exceed them.
    let respawns = snap.counter_value(SVC_WORKER_RESPAWNS).unwrap_or(0);
    assert!((1..=2).contains(&respawns), "respawns = {respawns}");
}

#[test]
fn retry_recovers_from_worker_loss() {
    // With retries enabled, a WorkerLost answer is absorbed by the
    // client: the next attempt lands on a healthy (respawned) worker.
    let handle = server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut chaos = Client::new(handle.addr(), no_retry(2_000));
    let mut client = Client::new(
        handle.addr(),
        ClientConfig {
            deadline_ms: 2_000,
            retry: RetryPolicy::default(),
            seed: 42,
            ..ClientConfig::default()
        },
    );
    for _ in 0..3 {
        // Kill a worker, then immediately issue a real call with retry.
        let _ = chaos.call(Op::ChaosKill, &[CHAOS_EXIT_AFTER_REPLY]);
        let words = sample_words(50);
        let frame = client.call(Op::Compress, &words_to_le(&words)).unwrap();
        assert_eq!(frame, pack_frame(&words, &PackOptions::default()));
    }
    drop(handle);
}

#[test]
fn hostile_bytes_cannot_kill_the_server() {
    let handle = server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.addr();
    let timeout = Duration::from_millis(500);

    // Pure garbage longer than a request header: the server answers a
    // typed BadRequest (bad magic) and closes.
    let reply = send_raw(addr, &[b'G'; 64], timeout).unwrap();
    assert!(!reply.is_empty(), "garbage deserves a typed answer");
    // Garbage shorter than a header: a truncation, closed quietly — the
    // server must not block waiting for bytes that never come.
    let quiet = send_raw(addr, b"GET / HTTP/1.1\r\n\r\n", timeout).unwrap();
    assert!(quiet.is_empty(), "torn header gets a clean close");

    // A torn request (valid header, missing payload): clean close.
    let mut torn = Vec::new();
    codepack_svc::proto::write_request(
        &mut torn,
        &codepack_svc::Request {
            id: 9,
            op: Op::Ping,
            deadline_ms: 0,
            payload: vec![0; 64],
        },
    )
    .unwrap();
    torn.truncate(torn.len() - 10);
    let _ = send_raw(addr, &torn, timeout).unwrap();

    // The server is still fully alive for well-formed clients.
    let mut client = Client::new(addr, ClientConfig::default());
    assert_eq!(client.call(Op::Ping, b"alive").unwrap(), b"alive");
    let snap = handle.shutdown();
    assert!(snap.counter_value(SVC_PROTO_ERRORS).unwrap_or(0) >= 1);
}

#[test]
fn graceful_drain_finishes_in_flight_work() {
    let handle = server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.addr();
    let worker = thread::spawn(move || {
        let mut c = Client::new(addr, no_retry(5_000));
        c.call(Op::Burn, &400u32.to_le_bytes())
    });
    // Let the burn get admitted, then drain while it is in flight.
    thread::sleep(Duration::from_millis(120));
    let snap = handle.shutdown();
    // The in-flight request completed with Ok — drain never drops work.
    worker
        .join()
        .unwrap()
        .expect("in-flight request survives drain");
    assert!(snap.counter_value("svc.responses.ok").unwrap_or(0) >= 1);

    // After drain the port is closed: connections fail fast and typed.
    let mut late = Client::new(addr, no_retry(200));
    match late.call(Op::Ping, b"too late") {
        Err(CallError::Connection { .. }) => {}
        other => panic!("expected Connection error after drain, got {other:?}"),
    }
}

#[test]
fn responses_survive_many_concurrent_clients() {
    // A small soak: several client threads, mixed ops, every response
    // must match the direct library result for its own payload (no
    // cross-talk, no lost or duplicated responses).
    let handle = server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.addr();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            thread::spawn(move || {
                let mut client = Client::new(
                    addr,
                    ClientConfig {
                        seed: t,
                        ..ClientConfig::default()
                    },
                );
                for i in 0..50u32 {
                    let words = sample_words(8 + ((t as u32 * 50 + i) % 90) as usize);
                    let payload = words_to_le(&words);
                    let frame = client.call(Op::Compress, &payload).unwrap();
                    assert_eq!(frame, pack_frame(&words, &PackOptions::default()));
                    let back = client.call(Op::Decompress, &frame).unwrap();
                    assert_eq!(back, payload);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let snap = handle.shutdown();
    assert_eq!(
        snap.counter_value("svc.responses.ok"),
        Some(4 * 50 * 2),
        "every request got exactly one Ok response"
    );
}
