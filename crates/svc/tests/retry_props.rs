//! Determinism and bounds properties of the client retry/backoff.
//!
//! The contract under test: a backoff schedule is a pure function of
//! `(policy, seed, call_id)` — byte-identical on every thread and every
//! run — and the policy's three bounds (attempt count, per-delay cap,
//! total budget) hold for *all* inputs, not just friendly ones.

use std::thread;

use codepack_svc::RetryPolicy;
use codepack_testkit::forall;
use codepack_testkit::prop::gen;

#[test]
fn schedules_are_identical_across_worker_counts() {
    let policy = RetryPolicy::default();
    let seed = 0xc0de_7ac4;
    let calls: Vec<u64> = (0..256).collect();
    let serial: Vec<Vec<u64>> = calls.iter().map(|&c| policy.schedule(seed, c)).collect();
    for workers in [2usize, 4, 8] {
        // Shard the same call ids across `workers` threads; the union of
        // their schedules must equal the serial run exactly.
        let mut parallel = vec![Vec::new(); calls.len()];
        thread::scope(|scope| {
            let mut pending: Vec<(usize, &mut Vec<u64>)> =
                parallel.iter_mut().enumerate().collect();
            let mut shards: Vec<Vec<(usize, &mut Vec<u64>)>> =
                (0..workers).map(|_| Vec::new()).collect();
            let mut i = 0;
            while let Some(slot) = pending.pop() {
                shards[i % workers].push(slot);
                i += 1;
            }
            for shard in shards {
                scope.spawn(move || {
                    for (call, out) in shard {
                        *out = policy.schedule(seed, call as u64);
                    }
                });
            }
        });
        assert_eq!(parallel, serial, "{workers} workers diverged from serial");
    }
}

#[test]
fn schedule_bounds_hold_for_all_policies() {
    // forall (policy, seed, call): length, per-delay cap, and total
    // budget hold — jitter can never push a delay past the cap.
    forall!(
        cases = 512,
        (
            gen::ints(0u32..12),
            gen::ints(0u64..50_000),
            gen::ints(0u64..20_000),
            gen::any_int::<u64>()
        ),
        |max_attempts, base_us, cap_us, entropy| {
            let budget_us = entropy % 60_000;
            let seed = entropy.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let call_id = entropy.rotate_left(17);
            let policy = RetryPolicy {
                max_attempts,
                base_delay_us: base_us,
                max_delay_us: cap_us,
                max_total_delay_us: budget_us,
            };
            let s = policy.schedule(seed, call_id);
            assert_eq!(s.len(), max_attempts.saturating_sub(1) as usize);
            assert!(
                s.iter().all(|&d| d <= cap_us),
                "delay exceeds cap: {s:?} vs {cap_us}"
            );
            assert!(
                s.iter().sum::<u64>() <= budget_us,
                "schedule exceeds budget: {s:?} vs {budget_us}"
            );
            // Purity: recomputing yields the same bytes.
            assert_eq!(s, policy.schedule(seed, call_id));
        }
    );
}

#[test]
fn distinct_calls_decorrelate_but_replay_exactly() {
    let policy = RetryPolicy {
        max_attempts: 6,
        base_delay_us: 1_000,
        max_delay_us: 50_000,
        max_total_delay_us: 500_000,
    };
    let run: Vec<Vec<u64>> = (0..64).map(|c| policy.schedule(99, c)).collect();
    let replay: Vec<Vec<u64>> = (0..64).map(|c| policy.schedule(99, c)).collect();
    assert_eq!(run, replay, "fixed seed must replay byte-identically");
    // At least some schedules must differ between calls (jitter is live).
    let distinct: std::collections::HashSet<_> = run.iter().collect();
    assert!(
        distinct.len() > 32,
        "jitter looks dead: {} distinct",
        distinct.len()
    );
}
