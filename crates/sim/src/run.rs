//! End-to-end simulation: program → (compression) → pipeline → statistics.

use std::sync::Arc;

use codepack_core::{CodePackFetch, CodePackImage, CompositionStats, FetchStats, NativeFetch};
use codepack_cpu::{ExecError, Machine, Pipeline, PipelineStats};
use codepack_isa::{Program, TEXT_BASE};
use codepack_mem::FaultStats;
use codepack_obs::{Obs, ObsReport};

use crate::{ArchConfig, CodeModel};

/// Results of one simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Architecture name.
    pub arch: &'static str,
    /// Code model label ("Native"/"CodePack").
    pub model: &'static str,
    /// Pipeline statistics (cycles, IPC, caches, branches).
    pub pipeline: PipelineStats,
    /// I-miss service engine statistics.
    pub fetch: FetchStats,
    /// Compression composition, when the code model was CodePack.
    pub compression: Option<CompositionStats>,
    /// Instructions the functional machine retired.
    pub retired_instructions: u64,
    /// Architectural state fingerprint at the end of the run (equal across
    /// code models: compression must not change execution).
    pub state_hash: u64,
    /// Soft-error ledger, when injection was armed on this run.
    pub faults: Option<FaultStats>,
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.pipeline.ipc()
    }

    /// Total simulated cycles.
    pub fn cycles(&self) -> u64 {
        self.pipeline.cycles
    }

    /// Speedup of `self` relative to `baseline` (>1 means `self` is
    /// faster), the paper's reporting convention for Tables 7–12.
    ///
    /// # Panics
    ///
    /// Panics if the two runs retired different instruction counts — they
    /// would not be comparable. Report code aggregating cells that may
    /// have failed or been cut short should use
    /// [`Self::checked_speedup_over`] instead.
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        assert_eq!(
            self.retired_instructions, baseline.retired_instructions,
            "speedup requires runs of identical work"
        );
        baseline.cycles() as f64 / self.cycles() as f64
    }

    /// Non-panicking [`Self::speedup_over`]: `None` when the two runs are
    /// not comparable (different retired-instruction counts — e.g. one of
    /// them is a partial or error cell) or when `self` retired zero
    /// cycles, so the ratio would be meaningless.
    pub fn checked_speedup_over(&self, baseline: &SimResult) -> Option<f64> {
        if self.retired_instructions != baseline.retired_instructions || self.cycles() == 0 {
            None
        } else {
            Some(baseline.cycles() as f64 / self.cycles() as f64)
        }
    }

    /// I-cache miss rate per retired instruction (the paper's Table 1
    /// metric).
    pub fn imiss_per_insn(&self) -> f64 {
        if self.retired_instructions == 0 {
            0.0
        } else {
            self.pipeline.icache.misses() as f64 / self.retired_instructions as f64
        }
    }
}

/// A runnable experiment: one architecture + one code model.
///
/// ```no_run
/// use codepack_sim::{ArchConfig, CodeModel, Simulation};
/// use codepack_synth::{generate, BenchmarkProfile};
///
/// let program = generate(&BenchmarkProfile::pegwit_like(), 42);
/// let native = Simulation::new(ArchConfig::four_issue(), CodeModel::Native)
///     .run(&program, 100_000);
/// let packed = Simulation::new(ArchConfig::four_issue(), CodeModel::codepack_baseline())
///     .run(&program, 100_000);
/// assert_eq!(native.state_hash, packed.state_hash);
/// println!("speedup {:.3}", packed.speedup_over(&native));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Simulation {
    arch: ArchConfig,
    model: CodeModel,
}

impl Simulation {
    /// Pairs an architecture with a code model.
    pub fn new(arch: ArchConfig, model: CodeModel) -> Simulation {
        Simulation { arch, model }
    }

    /// The architecture under simulation.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// The code model under simulation.
    pub fn model(&self) -> &CodeModel {
        &self.model
    }

    /// Runs `program` for at most `max_insns` instructions.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if the program traps (illegal instruction,
    /// wild PC, unknown syscall).
    pub fn try_run(&self, program: &Program, max_insns: u64) -> Result<SimResult, ExecError> {
        self.try_run_with_image(program, max_insns, None)
    }

    /// Like [`Self::try_run`], but reuses a pre-compressed `image` (the
    /// compression step dominates setup time in large sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if the program traps.
    ///
    /// # Panics
    ///
    /// Panics if `image` was compressed from a different text section.
    pub fn try_run_with_image(
        &self,
        program: &Program,
        max_insns: u64,
        image: Option<Arc<CodePackImage>>,
    ) -> Result<SimResult, ExecError> {
        self.try_run_observed(program, max_insns, image, Obs::disabled())
            .map(|(result, _)| result)
    }

    /// Like [`Self::try_run_with_image`], but threads an [`Obs`] handle
    /// through the pipeline and returns the closed-out [`ObsReport`]
    /// alongside the result. A disabled handle yields `None` for the
    /// report; an enabled one must not change any timing statistic (the
    /// traced fetch engines reconstruct their timeline from results, they
    /// never participate in it).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if the program traps.
    ///
    /// # Panics
    ///
    /// Panics if `image` was compressed from a different text section.
    pub fn try_run_observed(
        &self,
        program: &Program,
        max_insns: u64,
        image: Option<Arc<CodePackImage>>,
        obs: Obs,
    ) -> Result<(SimResult, Option<ObsReport>), ExecError> {
        let mut compression = None;
        let mut protection_armed = None;
        let engine: Box<dyn codepack_core::FetchEngine> = match &self.model {
            CodeModel::Native => Box::new(NativeFetch::new(self.arch.memory)),
            CodeModel::CodePack {
                decompressor,
                compression: ccfg,
                protection,
            } => {
                let image = match image {
                    Some(img) => {
                        assert_eq!(
                            img.len_insns() as usize,
                            program.text_words().len(),
                            "image does not match program"
                        );
                        img
                    }
                    None => Arc::new(CodePackImage::compress(program.text_words(), ccfg)),
                };
                compression = Some(*image.stats());
                protection_armed = *protection;
                let mut fetch =
                    CodePackFetch::new(image, self.arch.memory, *decompressor, TEXT_BASE);
                if let Some(p) = protection {
                    fetch = fetch.with_protection(*p);
                }
                Box::new(fetch)
            }
        };

        let mut pipeline = Pipeline::new(
            self.arch.pipeline,
            self.arch.icache,
            self.arch.dcache,
            self.arch.memory,
            engine,
        );
        if let Some(l2) = self.arch.l2 {
            pipeline.set_l2(l2);
        }
        pipeline.set_soft_errors(protection_armed);
        pipeline.set_obs(obs);
        let mut machine = Machine::load(program);
        let stats = pipeline.run(&mut machine, max_insns)?;

        let mut obs = pipeline.take_obs();
        if let Some(c) = &compression {
            obs.set_gauge("compression.ratio", c.compression_ratio());
        }
        let report = obs.into_report(stats.cycles, stats.instructions);

        Ok((
            SimResult {
                benchmark: program.name().to_string(),
                arch: self.arch.name,
                model: self.model.label(),
                pipeline: stats,
                fetch: pipeline.fetch_engine().stats(),
                compression,
                retired_instructions: stats.instructions,
                state_hash: machine.state_hash(),
                faults: protection_armed.map(|_| stats.faults),
            },
            report,
        ))
    }

    /// Runs `program`, panicking on functional-execution errors.
    ///
    /// Synthetic benchmarks are well-formed by construction, so the
    /// experiment harness uses this convenience wrapper; prefer
    /// [`Self::try_run`] for untrusted programs.
    ///
    /// # Panics
    ///
    /// Panics if the program traps during execution.
    pub fn run(&self, program: &Program, max_insns: u64) -> SimResult {
        self.try_run(program, max_insns)
            .unwrap_or_else(|e| panic!("program {:?} trapped: {e}", program.name()))
    }

    /// Like [`Self::run`] with a pre-compressed image.
    ///
    /// # Panics
    ///
    /// Panics if the program traps or the image does not match.
    pub fn run_with_image(
        &self,
        program: &Program,
        max_insns: u64,
        image: Option<Arc<CodePackImage>>,
    ) -> SimResult {
        self.try_run_with_image(program, max_insns, image)
            .unwrap_or_else(|e| panic!("program {:?} trapped: {e}", program.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codepack_synth::{generate, BenchmarkProfile};

    fn small_program() -> Program {
        // pegwit is the smallest profile: quickest to compress and run.
        generate(&BenchmarkProfile::pegwit_like(), 3)
    }

    #[test]
    fn native_and_codepack_execute_identically() {
        let p = small_program();
        let native = Simulation::new(ArchConfig::four_issue(), CodeModel::Native).run(&p, 50_000);
        let packed = Simulation::new(ArchConfig::four_issue(), CodeModel::codepack_baseline())
            .run(&p, 50_000);
        assert_eq!(native.retired_instructions, packed.retired_instructions);
        assert_eq!(native.state_hash, packed.state_hash);
        assert_eq!(native.pipeline.branches, packed.pipeline.branches);
    }

    #[test]
    fn codepack_reports_compression_stats() {
        let p = small_program();
        let r = Simulation::new(ArchConfig::one_issue(), CodeModel::codepack_baseline())
            .run(&p, 20_000);
        let c = r.compression.expect("codepack run has composition stats");
        assert!(c.compression_ratio() > 0.3 && c.compression_ratio() < 1.0);
        assert!(Simulation::new(ArchConfig::one_issue(), CodeModel::Native)
            .run(&p, 20_000)
            .compression
            .is_none());
    }

    #[test]
    fn optimized_is_at_least_as_fast_as_baseline() {
        let p = generate(&BenchmarkProfile::go_like(), 5);
        let base = Simulation::new(ArchConfig::four_issue(), CodeModel::codepack_baseline())
            .run(&p, 100_000);
        let opt = Simulation::new(ArchConfig::four_issue(), CodeModel::codepack_optimized())
            .run(&p, 100_000);
        assert!(
            opt.cycles() <= base.cycles(),
            "optimizations must not slow the machine: {} vs {}",
            opt.cycles(),
            base.cycles()
        );
    }

    #[test]
    fn image_reuse_matches_fresh_compression() {
        let p = small_program();
        let sim = Simulation::new(ArchConfig::four_issue(), CodeModel::codepack_baseline());
        let fresh = sim.run(&p, 30_000);
        let image = Arc::new(CodePackImage::compress(
            p.text_words(),
            &codepack_core::CompressionConfig::default(),
        ));
        let reused = sim.run_with_image(&p, 30_000, Some(image));
        assert_eq!(fresh.cycles(), reused.cycles());
    }

    #[test]
    fn observed_run_matches_plain_run_and_reports() {
        let p = small_program();
        let sim = Simulation::new(ArchConfig::four_issue(), CodeModel::codepack_optimized());
        let plain = sim.run(&p, 30_000);
        let (observed, report) = sim
            .try_run_observed(&p, 30_000, None, Obs::with_null_sink())
            .unwrap();
        assert_eq!(
            plain.cycles(),
            observed.cycles(),
            "obs must not perturb timing"
        );
        assert_eq!(plain.state_hash, observed.state_hash);
        let report = report.expect("enabled handle yields a report");
        assert_eq!(
            report.metrics.counter_value("pipeline.cycles"),
            Some(observed.cycles())
        );
        let ratio = observed.compression.unwrap().compression_ratio();
        assert_eq!(report.metrics.gauge_value("compression.ratio"), Some(ratio));
        let b = &report.breakdown;
        assert!((b.component_sum() - b.total).abs() < 1e-9, "CPI closes");

        // A disabled handle reports nothing and changes nothing.
        let (unobserved, none) = sim
            .try_run_observed(&p, 30_000, None, Obs::disabled())
            .unwrap();
        assert!(none.is_none());
        assert_eq!(unobserved.cycles(), plain.cycles());
    }

    #[test]
    fn speedup_is_relative_cycles() {
        let p = small_program();
        let a = Simulation::new(ArchConfig::four_issue(), CodeModel::Native).run(&p, 30_000);
        let b = Simulation::new(ArchConfig::four_issue(), CodeModel::codepack_baseline())
            .run(&p, 30_000);
        let s = b.speedup_over(&a);
        assert!((s - a.cycles() as f64 / b.cycles() as f64).abs() < 1e-12);
    }

    #[test]
    fn checked_speedup_rejects_mismatched_work_without_panicking() {
        let p = small_program();
        let sim = Simulation::new(ArchConfig::four_issue(), CodeModel::Native);
        let full = sim.run(&p, 30_000);
        let short = sim.run(&p, 500);
        assert_ne!(full.retired_instructions, short.retired_instructions);
        // Regression: `speedup_over` assert!-panics here; the checked
        // variant must yield None so a partial/error cell degrades.
        assert_eq!(short.checked_speedup_over(&full), None);
        assert_eq!(
            full.checked_speedup_over(&full),
            Some(1.0),
            "a run compared with itself is speedup 1"
        );
    }
}
