//! Whole-machine configurations (the paper's Table 2) and code models.

use codepack_core::{CompressionConfig, DecodeBackend, DecompressorConfig};
use codepack_cpu::{L2Config, PipelineConfig};
use codepack_mem::{CacheConfig, MemoryTiming, SoftErrorConfig};

/// A complete simulated machine: pipeline + L1 caches + main memory.
///
/// The three constructors are the paper's Table 2 architectures; the
/// `with_*` builders produce the variants swept by Tables 10–12.
///
/// ```
/// use codepack_sim::ArchConfig;
/// let a = ArchConfig::four_issue().with_icache_kb(64).with_bus_bits(16);
/// assert_eq!(a.icache.size_bytes(), 64 * 1024);
/// assert_eq!(a.memory.bus_bits(), 16);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArchConfig {
    /// Short name for tables ("1-issue", …).
    pub name: &'static str,
    /// Pipeline widths, windows, units, predictor.
    pub pipeline: PipelineConfig,
    /// L1 instruction cache geometry.
    pub icache: CacheConfig,
    /// L1 data cache geometry.
    pub dcache: CacheConfig,
    /// Main-memory timing (latency, rate, bus width).
    pub memory: MemoryTiming,
    /// Optional unified L2 between the L1 I-cache and the miss engine.
    pub l2: Option<L2Config>,
}

impl ArchConfig {
    /// Table 2, 1-issue: in-order 5-stage, 8 KB caches.
    pub fn one_issue() -> ArchConfig {
        ArchConfig {
            name: "1-issue",
            pipeline: PipelineConfig::one_issue(),
            icache: CacheConfig::icache_1issue(),
            dcache: CacheConfig::dcache_1issue(),
            memory: MemoryTiming::default(),
            l2: None,
        }
    }

    /// Table 2, 4-issue: out-of-order, 16 KB caches.
    pub fn four_issue() -> ArchConfig {
        ArchConfig {
            name: "4-issue",
            pipeline: PipelineConfig::four_issue(),
            icache: CacheConfig::icache_4issue(),
            dcache: CacheConfig::dcache_4issue(),
            memory: MemoryTiming::default(),
            l2: None,
        }
    }

    /// Table 2, 8-issue: out-of-order, 32 KB caches.
    pub fn eight_issue() -> ArchConfig {
        ArchConfig {
            name: "8-issue",
            pipeline: PipelineConfig::eight_issue(),
            icache: CacheConfig::icache_8issue(),
            dcache: CacheConfig::dcache_8issue(),
            memory: MemoryTiming::default(),
            l2: None,
        }
    }

    /// Same machine with a different I-cache capacity (Table 10 sweeps
    /// 1–64 KB).
    pub fn with_icache_kb(mut self, kb: u32) -> ArchConfig {
        self.icache = self.icache.with_size(kb * 1024);
        self
    }

    /// Same machine with a different main-memory bus width (Table 11
    /// sweeps 16–128 bits).
    pub fn with_bus_bits(mut self, bits: u32) -> ArchConfig {
        self.memory = self.memory.with_bus_bits(bits);
        self
    }

    /// Same machine with main-memory latency scaled by `factor` (Table 12
    /// sweeps 0.5×–8×).
    pub fn with_memory_scale(mut self, factor: f64) -> ArchConfig {
        self.memory = self.memory.scaled_latency(factor);
        self
    }

    /// Same machine with a unified L2 of `kb` KiB between the L1 I-cache
    /// and the miss engine (a beyond-the-paper design point: the
    /// decompressor then services only L2 misses).
    pub fn with_l2_kb(mut self, kb: u32) -> ArchConfig {
        self.l2 = Some(L2Config::unified_kb(kb));
        self
    }
}

/// How instructions reach the L1 I-cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodeModel {
    /// Native (uncompressed) code: critical-word-first line fills.
    Native,
    /// CodePack-compressed code serviced by the decompressor model.
    CodePack {
        /// Decompressor features (index cache, decode rate, buffer).
        decompressor: DecompressorConfig,
        /// Compression-time options.
        compression: CompressionConfig,
        /// Soft-error injection + integrity checking; `None` is the
        /// fault-free machine the paper models.
        protection: Option<SoftErrorConfig>,
    },
}

impl CodeModel {
    /// The paper's baseline CodePack configuration.
    pub fn codepack_baseline() -> CodeModel {
        CodeModel::CodePack {
            decompressor: DecompressorConfig::baseline(),
            compression: CompressionConfig::default(),
            protection: None,
        }
    }

    /// The paper's optimized CodePack (index cache + 2 decompressors).
    pub fn codepack_optimized() -> CodeModel {
        CodeModel::CodePack {
            decompressor: DecompressorConfig::optimized(),
            compression: CompressionConfig::default(),
            protection: None,
        }
    }

    /// CodePack with a custom decompressor and default compression.
    pub fn codepack_with(decompressor: DecompressorConfig) -> CodeModel {
        CodeModel::CodePack {
            decompressor,
            compression: CompressionConfig::default(),
            protection: None,
        }
    }

    /// Same model with soft-error injection and integrity checking armed
    /// (a no-op on [`CodeModel::Native`], which has no compressed state to
    /// strike).
    pub fn with_protection(mut self, soft_errors: SoftErrorConfig) -> CodeModel {
        if let CodeModel::CodePack { protection, .. } = &mut self {
            *protection = Some(soft_errors);
        }
        self
    }

    /// Same model with the given functional decode backend (a no-op on
    /// [`CodeModel::Native`]). Both backends are byte-identical; `Scalar`
    /// keeps the bit-at-a-time reference in the loop for differential runs.
    pub fn with_decode_backend(mut self, backend: DecodeBackend) -> CodeModel {
        if let CodeModel::CodePack { decompressor, .. } = &mut self {
            decompressor.decode_backend = backend;
        }
        self
    }

    /// Short label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            CodeModel::Native => "Native",
            CodeModel::CodePack { .. } => "CodePack",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_architectures_scale_caches_with_width() {
        assert_eq!(ArchConfig::one_issue().icache.size_bytes(), 8 * 1024);
        assert_eq!(ArchConfig::four_issue().icache.size_bytes(), 16 * 1024);
        assert_eq!(ArchConfig::eight_issue().icache.size_bytes(), 32 * 1024);
    }

    #[test]
    fn builders_compose() {
        let a = ArchConfig::one_issue()
            .with_icache_kb(4)
            .with_bus_bits(128)
            .with_memory_scale(2.0);
        assert_eq!(a.icache.size_bytes(), 4096);
        assert_eq!(a.memory.bus_bits(), 128);
        assert_eq!(a.memory.first_access_cycles(), 20);
        assert_eq!(a.dcache, ArchConfig::one_issue().dcache, "d-side untouched");
    }

    #[test]
    fn code_model_labels() {
        assert_eq!(CodeModel::Native.label(), "Native");
        assert_eq!(CodeModel::codepack_baseline().label(), "CodePack");
    }

    #[test]
    fn decode_backend_builder_selects_backend() {
        let scalar = CodeModel::codepack_baseline().with_decode_backend(DecodeBackend::Scalar);
        match scalar {
            CodeModel::CodePack { decompressor, .. } => {
                assert_eq!(decompressor.decode_backend, DecodeBackend::Scalar);
            }
            CodeModel::Native => panic!("builder must preserve the CodePack model"),
        }
        // Defaults to the fast backend; a no-op on native code.
        match CodeModel::codepack_baseline() {
            CodeModel::CodePack { decompressor, .. } => {
                assert_eq!(decompressor.decode_backend, DecodeBackend::Fast);
            }
            CodeModel::Native => unreachable!(),
        }
        assert_eq!(
            CodeModel::Native.with_decode_backend(DecodeBackend::Scalar),
            CodeModel::Native
        );
    }
}
