//! Plain-text table rendering for the experiment harness.
//!
//! Every bench target prints its paper table through this module so the
//! output format is uniform and diffable against EXPERIMENTS.md.

use std::fmt::Write as _;

/// A simple left-aligned-first-column, right-aligned-rest text table.
///
/// ```
/// use codepack_sim::Table;
/// let mut t = Table::new(vec!["Bench".into(), "IPC".into()]);
/// t.row(vec!["cc1".into(), "0.62".into()]);
/// let s = t.render();
/// assert!(s.contains("Bench") && s.contains("0.62"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
    footer: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Table {
        Table {
            headers,
            rows: Vec::new(),
            title: None,
            footer: None,
        }
    }

    /// Sets a title line printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Table {
        self.title = Some(title.into());
        self
    }

    /// Sets a footer line printed below the rows, separated by a rule.
    pub fn with_footer(mut self, footer: impl Into<String>) -> Table {
        self.footer = Some(footer.into());
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if let Some(title) = &self.title {
            let _ = writeln!(out, "=== {title} ===");
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(line, "{:<width$}", cell, width = widths[0]);
                } else {
                    let _ = write!(line, "  {:>width$}", cell, width = widths[i]);
                }
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        if let Some(footer) = &self.footer {
            let _ = writeln!(out, "{}", "-".repeat(total));
            let _ = writeln!(out, "{footer}");
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a ratio as the paper prints speedups (e.g. `1.14`).
pub fn fmt_speedup(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a fraction as a percentage (e.g. `61.4%`).
pub fn fmt_percent(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["Bench".into(), "Ratio".into()]).with_title("Table 3");
        t.row(vec!["cc1".into(), "60.4%".into()]);
        t.row(vec!["mpeg2enc".into(), "63.1%".into()]);
        let s = t.render();
        assert!(s.starts_with("=== Table 3 ==="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[1].len(), lines[3].len(), "rows pad to equal width");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["A".into(), "B".into()]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn footer_renders_below_a_rule() {
        let mut t = Table::new(vec!["A".into(), "B".into()]).with_footer("2 ok, 0 failed");
        t.row(vec!["x".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.last(), Some(&"2 ok, 0 failed"));
        assert!(
            lines[lines.len() - 2].starts_with('-'),
            "rule before footer"
        );
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_speedup(1.137), "1.14");
        assert_eq!(fmt_percent(0.614), "61.4%");
    }
}
