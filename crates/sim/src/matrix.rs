//! Parallel experiment fan-out: benchmark × architecture × code model.
//!
//! Every paper table is a slice of the same cube — profiles on one axis,
//! machines on another, decompressor configurations on the third.
//! [`run_matrix`] enumerates the full cross product once, runs the cells
//! on a fixed pool of worker threads, and returns a [`SimReport`] whose
//! cell order, rendered table, and JSON serialization are independent of
//! the worker count: cell `i` of the report is always job `i` of the
//! profile-major enumeration, no matter which thread ran it or when it
//! finished.
//!
//! # Fault tolerance
//!
//! A long sweep must degrade per-cell, not per-run. Each cell executes
//! under `catch_unwind` and writes its completion into a lock-free
//! single-writer slot, so a trapping or panicking cell becomes an error
//! record ([`CellOutcome::Trapped`]) in the report instead of poisoning
//! a shared lock and aborting the cube. Transiently-failing cells are
//! retried a bounded number of times ([`MatrixSpec::with_retries`]) with
//! deterministic, seed-derived jitter between attempts — no wall-clock
//! anywhere, so reports stay reproducible. A per-cell deadline in
//! simulated cycles ([`MatrixSpec::with_deadline_cycles`]) marks runaway
//! cells [`CellOutcome::TimedOut`].
//!
//! With a journal directory ([`MatrixOptions::with_journal`]), every
//! completed cell is appended to a crash-safe JSONL journal as it
//! finishes; a killed sweep resumes ([`MatrixOptions::resuming`]) by
//! re-running only missing and failed cells, and the resumed report is
//! byte-identical to an uninterrupted run for any worker count.
//!
//! ```no_run
//! use codepack_sim::{ArchConfig, CodeModel, MatrixSpec};
//!
//! let spec = MatrixSpec::new(42, 200_000)
//!     .with_archs(vec![ArchConfig::four_issue()])
//!     .with_models(vec![
//!         ("native", CodeModel::Native),
//!         ("cp-opt", CodeModel::codepack_optimized()),
//!     ]);
//! let report = codepack_sim::run_matrix(&spec, 4);
//! println!("{}", report.render());
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use codepack_core::{CodePackImage, CompressionConfig};
use codepack_isa::Program;
use codepack_obs::{names, BlockProfile, MetricsRegistry, Obs};
use codepack_synth::{generate, BenchmarkProfile};
use codepack_testkit::{mix_seed, Rng};

use crate::journal::{journal_exists, read_journal, JournalEntry, JournalWriter};
use crate::{ArchConfig, CodeModel, SimResult, Simulation, Table};

/// The experiment cube: which profiles, machines, and code models to
/// cross, plus the common run parameters and failure policy.
#[derive(Clone, Debug)]
pub struct MatrixSpec {
    /// Benchmark profiles (defaults to the paper's six-program suite).
    pub profiles: Vec<BenchmarkProfile>,
    /// Machines (defaults to the three Table 2 architectures).
    pub archs: Vec<ArchConfig>,
    /// Labeled code models (defaults to native/baseline/optimized).
    pub models: Vec<(&'static str, CodeModel)>,
    /// Program-generation seed (also seeds the retry jitter).
    pub seed: u64,
    /// Instruction budget per cell.
    pub max_insns: u64,
    /// Extra attempts granted to a cell that traps or panics (so a cell
    /// runs at most `retries + 1` times). Defaults to 1.
    pub retries: u32,
    /// Per-cell deadline in *simulated* cycles: a cell whose run exceeds
    /// it is recorded [`CellOutcome::TimedOut`] and its result dropped.
    /// `None` (the default) disables the deadline.
    pub deadline_cycles: Option<u64>,
    /// Deterministic fault injection, for exercising the failure paths.
    pub faults: FaultPlan,
}

impl MatrixSpec {
    /// The full default cube: six profiles × three machines × three code
    /// models.
    pub fn new(seed: u64, max_insns: u64) -> MatrixSpec {
        MatrixSpec {
            profiles: BenchmarkProfile::suite(),
            archs: vec![
                ArchConfig::one_issue(),
                ArchConfig::four_issue(),
                ArchConfig::eight_issue(),
            ],
            models: vec![
                ("native", CodeModel::Native),
                ("cp-base", CodeModel::codepack_baseline()),
                ("cp-opt", CodeModel::codepack_optimized()),
            ],
            seed,
            max_insns,
            retries: 1,
            deadline_cycles: None,
            faults: FaultPlan::default(),
        }
    }

    /// Replaces the profile axis.
    pub fn with_profiles(mut self, profiles: Vec<BenchmarkProfile>) -> MatrixSpec {
        self.profiles = profiles;
        self
    }

    /// Replaces the architecture axis.
    pub fn with_archs(mut self, archs: Vec<ArchConfig>) -> MatrixSpec {
        self.archs = archs;
        self
    }

    /// Replaces the code-model axis.
    pub fn with_models(mut self, models: Vec<(&'static str, CodeModel)>) -> MatrixSpec {
        self.models = models;
        self
    }

    /// Sets the bounded retry budget for trapping/panicking cells.
    pub fn with_retries(mut self, retries: u32) -> MatrixSpec {
        self.retries = retries;
        self
    }

    /// Sets the per-cell deadline in simulated cycles.
    pub fn with_deadline_cycles(mut self, cycles: u64) -> MatrixSpec {
        self.deadline_cycles = Some(cycles);
        self
    }

    /// Adds an injected fault (testing aid; see [`FaultPlan`]).
    pub fn with_fault(mut self, fault: InjectedFault) -> MatrixSpec {
        self.faults.push(fault);
        self
    }

    /// Number of cells in the cube.
    pub fn len(&self) -> usize {
        self.profiles.len() * self.archs.len() * self.models.len()
    }

    /// True when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The (profile, arch, model) names at job index `i` of the
    /// profile-major enumeration, when `i` is in range.
    pub fn coordinate(&self, i: usize) -> Option<(&'static str, &'static str, &'static str)> {
        if self.is_empty() || i >= self.len() {
            return None;
        }
        let per_profile = self.archs.len() * self.models.len();
        let profile = self.profiles[i / per_profile].name;
        let arch = self.archs[(i / self.models.len()) % self.archs.len()].name;
        let model = self.models[i % self.models.len()].0;
        Some((profile, arch, model))
    }
}

/// Deterministic fault injection for the matrix runner: which cells
/// fail, how, and for how many attempts. This is how the failure paths
/// — degradation, retry, journaling of error cells — are exercised by
/// tests without depending on a real simulator defect.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    faults: Vec<InjectedFault>,
}

impl FaultPlan {
    /// True when no faults are planned.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Adds a fault.
    pub fn push(&mut self, fault: InjectedFault) {
        self.faults.push(fault);
    }

    /// The fault to inject for `cell` on `attempt` (0-based), if any.
    fn kind_for(&self, cell: usize, attempt: u32) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|f| f.cell == cell && attempt < f.failing_attempts)
            .map(|f| f.kind)
    }
}

/// One planned fault.
#[derive(Clone, Copy, Debug)]
pub struct InjectedFault {
    /// Job index (profile-major) of the cell to fail.
    pub cell: usize,
    /// How the cell fails.
    pub kind: FaultKind,
    /// How many leading attempts fail; `u32::MAX` means every attempt
    /// (a permanent fault), `1` models a transient glitch that a retry
    /// clears.
    pub failing_attempts: u32,
}

impl InjectedFault {
    /// A fault that fails `cell` on every attempt.
    pub fn permanent(cell: usize, kind: FaultKind) -> InjectedFault {
        InjectedFault {
            cell,
            kind,
            failing_attempts: u32::MAX,
        }
    }

    /// A fault that fails only the first `n` attempts of `cell`.
    pub fn transient(cell: usize, kind: FaultKind, n: u32) -> InjectedFault {
        InjectedFault {
            cell,
            kind,
            failing_attempts: n,
        }
    }
}

/// How an injected fault manifests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The cell reports a functional trap (a typed `ExecError`-shaped
    /// failure surfaced as an error string).
    Trap,
    /// The cell panics mid-execution — the worst case the runner must
    /// absorb without poisoning shared state.
    Panic,
    /// The cell is never executed and recorded [`CellOutcome::Skipped`].
    Skip,
}

/// How a cell ended.
#[derive(Clone, Debug, PartialEq)]
pub enum CellOutcome {
    /// The cell completed and carries a result.
    Ok,
    /// Every attempt trapped or panicked; `error` is the last failure.
    Trapped {
        /// Message of the final failed attempt.
        error: String,
    },
    /// The run exceeded the per-cell cycle deadline.
    TimedOut {
        /// The configured deadline.
        deadline_cycles: u64,
        /// Cycles the cell actually took.
        actual_cycles: u64,
    },
    /// The cell was never executed.
    Skipped {
        /// Why it was skipped.
        reason: String,
    },
}

impl CellOutcome {
    /// True for [`CellOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, CellOutcome::Ok)
    }

    /// Stable lowercase tag: `ok`, `trapped`, `timed-out`, `skipped`.
    pub fn label(&self) -> &'static str {
        match self {
            CellOutcome::Ok => "ok",
            CellOutcome::Trapped { .. } => "trapped",
            CellOutcome::TimedOut { .. } => "timed-out",
            CellOutcome::Skipped { .. } => "skipped",
        }
    }
}

/// One cell of the experiment cube.
#[derive(Clone, Debug)]
pub struct MatrixCell {
    /// Benchmark profile name.
    pub profile: &'static str,
    /// Architecture name.
    pub arch: &'static str,
    /// Code-model label from the spec.
    pub model: &'static str,
    /// How the cell ended.
    pub outcome: CellOutcome,
    /// Attempts the cell consumed (1 for a first-try success).
    pub attempts: u32,
    /// True when the cell was restored from a journal, not executed.
    pub resumed: bool,
    /// The simulation result, present when `outcome` is ok.
    pub result: Option<SimResult>,
    /// Per-cell metrics snapshot (an [`codepack_obs::ObsReport`] JSON
    /// document), when the cube ran under [`run_matrix_observed`].
    /// Deterministic for a given cell regardless of worker count.
    pub metrics: Option<String>,
}

impl MatrixCell {
    /// A filesystem-safe stem naming this cell: `profile-arch-model`.
    pub fn file_stem(&self) -> String {
        format!("{}-{}-{}", self.profile, self.arch, self.model)
    }

    /// The result, when the cell completed.
    pub fn ok(&self) -> Option<&SimResult> {
        self.result.as_ref()
    }

    /// The result of a cell known to have completed.
    ///
    /// # Panics
    ///
    /// Panics (with the outcome in the message) if the cell failed.
    pub fn expect_ok(&self) -> &SimResult {
        match &self.result {
            Some(r) => r,
            None => panic!(
                "cell {} has no result (outcome: {})",
                self.file_stem(),
                self.outcome.label()
            ),
        }
    }
}

/// Failure/retry totals of a completed cube.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatrixSummary {
    /// Cells that completed.
    pub ok: usize,
    /// Cells that trapped/panicked on every attempt.
    pub trapped: usize,
    /// Cells that exceeded the cycle deadline.
    pub timed_out: usize,
    /// Cells that were never executed.
    pub skipped: usize,
    /// Cells restored from a journal.
    pub resumed: usize,
    /// Attempts beyond the first, summed over all cells.
    pub retries: u64,
}

impl MatrixSummary {
    /// True when every cell completed.
    pub fn all_ok(&self) -> bool {
        self.trapped == 0 && self.timed_out == 0 && self.skipped == 0
    }

    /// One-line rendering for logs and table footers.
    pub fn render(&self) -> String {
        format!(
            "cells: {} ok, {} trapped, {} timed-out, {} skipped ({} resumed, {} retries)",
            self.ok, self.trapped, self.timed_out, self.skipped, self.resumed, self.retries
        )
    }
}

/// The completed cube, in profile-major (profile, arch, model) order.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Seed the programs were generated from.
    pub seed: u64,
    /// Instruction budget per cell.
    pub max_insns: u64,
    /// One cell per (profile, arch, model), profile-major.
    pub cells: Vec<MatrixCell>,
    /// The block profiles of all CodePack cells, merged in cell
    /// (enumeration) order, when the cube ran profiled
    /// ([`MatrixOptions::profiling`]). Merging is commutative and
    /// associative, so the merged artifact is byte-identical for any
    /// worker count; each contributing cell's `file_stem` appears in the
    /// merged source label. Exported as its own versioned document via
    /// [`BlockProfile::to_json`], never spliced into
    /// [`SimReport::to_json`].
    pub profile: Option<BlockProfile>,
}

impl SimReport {
    /// The cell for an exact (profile, arch, model) coordinate.
    pub fn cell(&self, profile: &str, arch: &str, model: &str) -> Option<&MatrixCell> {
        self.cells
            .iter()
            .find(|c| c.profile == profile && c.arch == arch && c.model == model)
    }

    /// Speedup of `model` over `baseline` at the same (profile, arch),
    /// when both cells exist, both completed, and they retired identical
    /// work — a failed or partial cell yields `None`, never a panic.
    pub fn speedup(&self, profile: &str, arch: &str, model: &str, baseline: &str) -> Option<f64> {
        let m = self.cell(profile, arch, model)?.ok()?;
        let b = self.cell(profile, arch, baseline)?.ok()?;
        m.checked_speedup_over(b)
    }

    /// Failure/retry totals across the cube.
    pub fn summary(&self) -> MatrixSummary {
        let mut s = MatrixSummary::default();
        for c in &self.cells {
            match &c.outcome {
                CellOutcome::Ok => s.ok += 1,
                CellOutcome::Trapped { .. } => s.trapped += 1,
                CellOutcome::TimedOut { .. } => s.timed_out += 1,
                CellOutcome::Skipped { .. } => s.skipped += 1,
            }
            if c.resumed {
                s.resumed += 1;
            }
            s.retries += u64::from(c.attempts.saturating_sub(1));
        }
        s
    }

    /// The cube's fault-tolerance counters as a metrics registry, under
    /// the well-known [`codepack_obs::names`] `matrix.*` names.
    pub fn run_metrics(&self) -> MetricsRegistry {
        let s = self.summary();
        let mut m = MetricsRegistry::new();
        m.incr(names::MATRIX_CELLS_OK, s.ok as u64);
        m.incr(names::MATRIX_CELLS_TRAPPED, s.trapped as u64);
        m.incr(names::MATRIX_CELLS_TIMED_OUT, s.timed_out as u64);
        m.incr(names::MATRIX_CELLS_SKIPPED, s.skipped as u64);
        m.incr(names::MATRIX_CELLS_RESUMED, s.resumed as u64);
        m.incr(names::MATRIX_RETRIES, s.retries);
        m
    }

    /// Renders the cube as one table: a row per cell with outcome,
    /// cycles, IPC, miss rate, and compression ratio, plus a summary
    /// footer. Deterministic for a given cube.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            [
                "Profile",
                "Arch",
                "Model",
                "Outcome",
                "Cycles",
                "IPC",
                "I-miss/insn",
                "Ratio",
            ]
            .map(String::from)
            .to_vec(),
        )
        .with_title(format!(
            "matrix: seed {}, {} insns/cell, {} cells",
            self.seed,
            self.max_insns,
            self.cells.len()
        ))
        .with_footer(self.summary().render());
        for c in &self.cells {
            let (cycles, ipc, imiss, ratio) = match &c.result {
                Some(r) => (
                    r.cycles().to_string(),
                    format!("{:.3}", r.ipc()),
                    format!("{:.5}", r.imiss_per_insn()),
                    match &r.compression {
                        Some(s) => format!("{:.1}%", s.compression_ratio() * 100.0),
                        None => "-".to_string(),
                    },
                ),
                None => ("-".into(), "-".into(), "-".into(), "-".into()),
            };
            t.row(vec![
                c.profile.to_string(),
                c.arch.to_string(),
                c.model.to_string(),
                c.outcome.label().to_string(),
                cycles,
                ipc,
                imiss,
                ratio,
            ]);
        }
        t.render()
    }

    /// Serializes the cube as JSON. Every numeric field is an integer
    /// counter or a fixed-precision decimal, so two runs of the same cube
    /// produce byte-identical output regardless of worker count — and a
    /// journal-resumed run is byte-identical to an uninterrupted one.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"max_insns\": {},", self.max_insns);
        let _ = writeln!(out, "  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"profile\": \"{}\", \"arch\": \"{}\", \"model\": \"{}\", \
                 \"outcome\": \"{}\", \"attempts\": {}",
                c.profile,
                c.arch,
                c.model,
                c.outcome.label(),
                c.attempts,
            );
            match &c.outcome {
                CellOutcome::Ok => {}
                CellOutcome::Trapped { error } => {
                    let _ = write!(
                        out,
                        ", \"error\": \"{}\"",
                        codepack_obs::json::escape(error)
                    );
                }
                CellOutcome::TimedOut {
                    deadline_cycles,
                    actual_cycles,
                } => {
                    let _ = write!(
                        out,
                        ", \"deadline_cycles\": {deadline_cycles}, \"actual_cycles\": {actual_cycles}"
                    );
                }
                CellOutcome::Skipped { reason } => {
                    let _ = write!(
                        out,
                        ", \"reason\": \"{}\"",
                        codepack_obs::json::escape(reason)
                    );
                }
            }
            if let Some(r) = &c.result {
                let _ = write!(
                    out,
                    ", \"cycles\": {}, \"instructions\": {}, \
                     \"icache_accesses\": {}, \"icache_misses\": {}, \
                     \"dcache_accesses\": {}, \"dcache_misses\": {}, \
                     \"branches\": {}, \"mispredicts\": {}, \
                     \"fetch_misses\": {}, \"fetch_buffer_hits\": {}, \
                     \"index_hits\": {}, \"index_misses\": {}, \
                     \"memory_beats\": {}, \"state_hash\": {}",
                    r.cycles(),
                    r.pipeline.instructions,
                    r.pipeline.icache.accesses,
                    r.pipeline.icache.misses(),
                    r.pipeline.dcache.accesses,
                    r.pipeline.dcache.misses(),
                    r.pipeline.branches,
                    r.pipeline.mispredicts,
                    r.fetch.misses,
                    r.fetch.buffer_hits,
                    r.fetch.index_hits,
                    r.fetch.index_misses,
                    r.fetch.memory_beats,
                    r.state_hash,
                );
                if let Some(s) = &r.compression {
                    let _ = write!(
                        out,
                        ", \"original_bytes\": {}, \"compressed_bytes\": {}, \"ratio\": {:.6}",
                        s.original_bytes,
                        s.total_bytes(),
                        s.compression_ratio()
                    );
                }
                if let Some(ft) = &r.faults {
                    let _ = write!(
                        out,
                        ", \"faults_injected\": {}, \"faults_detected\": {}, \
                         \"faults_recovered\": {}, \"faults_trapped\": {}, \
                         \"faults_silent\": {}, \"fault_retries\": {}, \
                         \"machine_checks\": {}",
                        ft.injected,
                        ft.detected,
                        ft.recovered,
                        ft.trapped,
                        ft.silent,
                        ft.retries,
                        ft.machine_checks,
                    );
                }
            }
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            let _ = writeln!(out, "}}{comma}");
        }
        let _ = writeln!(out, "  ]");
        let _ = write!(out, "}}");
        out
    }
}

/// How to run the cube: worker count, observation, journaling.
#[derive(Clone, Debug)]
pub struct MatrixOptions {
    /// Worker threads (must be at least 1).
    pub workers: usize,
    /// Attach a metrics-only observer to every cell.
    pub observed: bool,
    /// Arm a per-block access profile in every cell and merge the cells'
    /// profiles into [`SimReport::profile`]. Mutually exclusive with
    /// journaling (the journal schema has no profile record).
    pub profiled: bool,
    /// Directory for the crash-safe completion journal, if any.
    pub journal_dir: Option<PathBuf>,
    /// Restore completed cells from an existing journal before running.
    /// Without an existing journal this degrades to a fresh run (so a
    /// sweep killed before its journal header was written still resumes
    /// cleanly).
    pub resume: bool,
}

impl MatrixOptions {
    /// Plain unjournaled run on `workers` threads.
    pub fn new(workers: usize) -> MatrixOptions {
        MatrixOptions {
            workers,
            observed: false,
            profiled: false,
            journal_dir: None,
            resume: false,
        }
    }

    /// Enables the per-cell metrics observer.
    pub fn observed(mut self, yes: bool) -> MatrixOptions {
        self.observed = yes;
        self
    }

    /// Arms the per-block access profiler in every cell.
    pub fn profiling(mut self, yes: bool) -> MatrixOptions {
        self.profiled = yes;
        self
    }

    /// Journals completed cells into `dir`.
    pub fn with_journal(mut self, dir: impl Into<PathBuf>) -> MatrixOptions {
        self.journal_dir = Some(dir.into());
        self
    }

    /// Resumes from the journal in [`MatrixOptions::journal_dir`].
    pub fn resuming(mut self, yes: bool) -> MatrixOptions {
        self.resume = yes;
        self
    }
}

/// Runs the full cube on `workers` threads and returns the report.
///
/// Programs are generated and compressed once per profile (all CodePack
/// cells of a profile share the image when their compression options
/// agree), then the cells run independently: a shared atomic counter
/// hands out job indices, each worker writes its completion into the
/// lock-free slot for that index, and the report keeps enumeration
/// order. One worker or sixteen, the report is identical.
///
/// A cell that traps or panics does **not** abort the cube — it is
/// retried per [`MatrixSpec::retries`] and, still failing, recorded as
/// [`CellOutcome::Trapped`].
///
/// # Panics
///
/// Panics if `workers` is zero or the spec has an empty axis.
pub fn run_matrix(spec: &MatrixSpec, workers: usize) -> SimReport {
    run_matrix_with(spec, &MatrixOptions::new(workers))
        .expect("unjournaled runs perform no fallible I/O")
}

/// Like [`run_matrix`], but every cell runs with a metrics-only observer
/// and carries its [`codepack_obs::ObsReport`] JSON in
/// [`MatrixCell::metrics`]. Observation never perturbs timing, and the
/// snapshot for cell `i` is byte-identical whether one worker ran the
/// cube or sixteen did.
///
/// # Panics
///
/// Panics under the same conditions as [`run_matrix`].
pub fn run_matrix_observed(spec: &MatrixSpec, workers: usize) -> SimReport {
    run_matrix_with(spec, &MatrixOptions::new(workers).observed(true))
        .expect("unjournaled runs perform no fallible I/O")
}

/// What one finished cell carries into its report slot.
struct Done {
    outcome: CellOutcome,
    attempts: u32,
    resumed: bool,
    result: Option<SimResult>,
    metrics: Option<String>,
    profile: Option<BlockProfile>,
}

/// Runs the cube with full control over observation and journaling.
///
/// # Errors
///
/// Returns an error for journal I/O failures or a resume against a
/// journal recorded for a different cube. Cell failures are *not*
/// errors — they are recorded per-cell in the report.
///
/// # Panics
///
/// Panics if `opts.workers` is zero or the spec has an empty axis.
pub fn run_matrix_with(spec: &MatrixSpec, opts: &MatrixOptions) -> Result<SimReport, String> {
    assert!(opts.workers > 0, "run_matrix needs at least one worker");
    assert!(!spec.is_empty(), "run_matrix needs a non-empty cube");
    if opts.profiled && opts.journal_dir.is_some() {
        return Err(
            "profiled runs cannot be journaled: the journal schema carries no \
             profile record; run the profiled sweep without a journal"
                .to_string(),
        );
    }

    // Profile-major job list; index into it IS the report order.
    struct Job {
        profile: &'static str,
        arch: ArchConfig,
        model_label: &'static str,
        model: CodeModel,
        prepared: usize,
    }
    let mut jobs: Vec<Job> = Vec::with_capacity(spec.len());
    for (pi, profile) in spec.profiles.iter().enumerate() {
        for arch in &spec.archs {
            for (label, model) in &spec.models {
                jobs.push(Job {
                    profile: profile.name,
                    arch: *arch,
                    model_label: label,
                    model: *model,
                    prepared: pi,
                });
            }
        }
    }

    // Lock-free completion slots: exactly one writer per slot, and no
    // lock a panicking worker could poison.
    let slots: Vec<OnceLock<Done>> = jobs.iter().map(|_| OnceLock::new()).collect();

    // Journal: restore completed cells, then open for appending.
    let journal: Option<Mutex<JournalWriter>> = match &opts.journal_dir {
        None => None,
        Some(dir) => {
            let writer = if opts.resume && journal_exists(dir) {
                let contents = read_journal(dir, spec, opts.observed)?;
                for e in contents.entries {
                    if !e.outcome.is_ok() {
                        continue; // failed cells re-run on resume
                    }
                    slots[e.cell]
                        .set(Done {
                            outcome: e.outcome,
                            attempts: e.attempts,
                            resumed: true,
                            result: e.result,
                            metrics: e.metrics,
                            profile: None,
                        })
                        .unwrap_or_else(|_| unreachable!("journal restore precedes workers"));
                }
                JournalWriter::reopen(dir)?
            } else {
                JournalWriter::create(dir, spec, opts.observed)?
            };
            Some(Mutex::new(writer))
        }
    };
    let journal_error: OnceLock<String> = OnceLock::new();

    // Per-profile setup, done once, and only for profiles that still
    // have unfinished cells: the generated program and one compressed
    // image per distinct compression configuration.
    let per_profile = spec.archs.len() * spec.models.len();
    let prepared: Vec<Option<Prepared>> = spec
        .profiles
        .iter()
        .enumerate()
        .map(|(pi, profile)| {
            let all_restored =
                (pi * per_profile..(pi + 1) * per_profile).all(|i| slots[i].get().is_some());
            if all_restored {
                return None;
            }
            let program = Arc::new(generate(profile, spec.seed));
            let mut images: Vec<(CompressionConfig, Arc<CodePackImage>)> = Vec::new();
            for (_, model) in &spec.models {
                if let CodeModel::CodePack { compression, .. } = model {
                    if !images.iter().any(|(c, _)| c == compression) {
                        images.push((
                            *compression,
                            Arc::new(CodePackImage::compress(program.text_words(), compression)),
                        ));
                    }
                }
            }
            Some(Prepared { program, images })
        })
        .collect();

    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..opts.workers.min(jobs.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                if slots[i].get().is_some() {
                    continue; // restored from the journal
                }
                let prep = prepared[job.prepared]
                    .as_ref()
                    .expect("profiles with pending cells are prepared");

                let done = run_cell(spec, opts, i, job.arch, job.model, prep);

                if let Some(w) = &journal {
                    let entry = JournalEntry {
                        cell: i,
                        profile: job.profile.to_string(),
                        arch: job.arch.name.to_string(),
                        model: job.model_label.to_string(),
                        outcome: done.outcome.clone(),
                        attempts: done.attempts,
                        result: done.result.clone(),
                        metrics: done.metrics.clone(),
                    };
                    if let Err(e) = w.lock().expect("journal lock").append(&entry) {
                        let _ = journal_error.set(e);
                    }
                }
                slots[i]
                    .set(done)
                    .unwrap_or_else(|_| unreachable!("slot {i} written twice"));
            });
        }
    });

    if let Some(e) = journal_error.get() {
        return Err(e.clone());
    }

    // Merge cell profiles in enumeration order. The merge is commutative
    // and associative anyway, so this is belt-and-braces for worker-count
    // independence; empty profiles (native cells never touch a block) are
    // skipped so they do not pollute the merged source label.
    let mut merged_profile: Option<BlockProfile> = None;
    let cells: Vec<MatrixCell> = jobs
        .iter()
        .zip(slots)
        .map(|(job, slot)| {
            let done = slot.into_inner().expect("every job ran");
            let cell = MatrixCell {
                profile: job.profile,
                arch: job.arch.name,
                model: job.model_label,
                outcome: done.outcome,
                attempts: done.attempts,
                resumed: done.resumed,
                result: done.result,
                metrics: done.metrics,
            };
            if let Some(mut p) = done.profile {
                if p.blocks_touched() > 0 {
                    p.set_source(&cell.file_stem());
                    match &mut merged_profile {
                        Some(m) => m.merge(&p),
                        None => merged_profile = Some(p),
                    }
                }
            }
            cell
        })
        .collect();

    Ok(SimReport {
        seed: spec.seed,
        max_insns: spec.max_insns,
        cells,
        profile: merged_profile,
    })
}

/// Runs one cell to completion: bounded attempts, each isolated behind
/// `catch_unwind`, with deterministic jitter between retries and the
/// cycle-deadline check on success.
fn run_cell(
    spec: &MatrixSpec,
    opts: &MatrixOptions,
    i: usize,
    arch: ArchConfig,
    model: CodeModel,
    prep: &Prepared,
) -> Done {
    let (observed, profiled) = (opts.observed, opts.profiled);
    let max_attempts = spec.retries.saturating_add(1);
    let mut attempt: u32 = 0;
    loop {
        if let Some(FaultKind::Skip) = spec.faults.kind_for(i, attempt) {
            return Done {
                outcome: CellOutcome::Skipped {
                    reason: "skipped by fault plan".into(),
                },
                attempts: attempt + 1,
                resumed: false,
                result: None,
                metrics: None,
                profile: None,
            };
        }

        let attempt_result = catch_unwind(AssertUnwindSafe(|| {
            match spec.faults.kind_for(i, attempt) {
                Some(FaultKind::Panic) => {
                    panic!("injected panic: cell {i} attempt {attempt}")
                }
                Some(FaultKind::Trap) => {
                    return Err(format!("injected trap: cell {i} attempt {attempt}"))
                }
                Some(FaultKind::Skip) | None => {}
            }
            let image = match &model {
                CodeModel::Native => None,
                CodeModel::CodePack { compression, .. } => Some(Arc::clone(
                    &prep
                        .images
                        .iter()
                        .find(|(c, _)| c == compression)
                        .expect("image prepared for every compression config")
                        .1,
                )),
            };
            let mut obs = if observed || profiled {
                Obs::with_null_sink()
            } else {
                Obs::disabled()
            };
            if profiled {
                obs.arm_profile();
            }
            Simulation::new(arch, model)
                .try_run_observed(&prep.program, spec.max_insns, image, obs)
                .map_err(|e| e.to_string())
        }));

        let error = match attempt_result {
            Ok(Ok((result, report))) => {
                if let Some(deadline) = spec.deadline_cycles {
                    if result.cycles() > deadline {
                        // Deterministic overrun: retrying cannot help.
                        return Done {
                            outcome: CellOutcome::TimedOut {
                                deadline_cycles: deadline,
                                actual_cycles: result.cycles(),
                            },
                            attempts: attempt + 1,
                            resumed: false,
                            result: None,
                            metrics: None,
                            profile: None,
                        };
                    }
                }
                let mut report = report;
                let profile = report.as_mut().and_then(|r| r.profile.take());
                return Done {
                    outcome: CellOutcome::Ok,
                    attempts: attempt + 1,
                    resumed: false,
                    result: Some(result),
                    // Metrics snapshots belong to observed mode only: a
                    // profiled-but-unobserved cube must not grow them.
                    metrics: if observed {
                        report.map(|r| r.to_json())
                    } else {
                        None
                    },
                    profile,
                };
            }
            Ok(Err(trap)) => trap,
            Err(payload) => format!("panic: {}", panic_message(payload.as_ref())),
        };

        attempt += 1;
        if attempt >= max_attempts {
            return Done {
                outcome: CellOutcome::Trapped { error },
                attempts: attempt,
                resumed: false,
                result: None,
                metrics: None,
                profile: None,
            };
        }
        retry_jitter(spec.seed, i, attempt);
    }
}

/// Per-profile setup shared by every cell of that profile: the generated
/// program and one compressed image per distinct compression config.
struct Prepared {
    program: Arc<Program>,
    images: Vec<(CompressionConfig, Arc<CodePackImage>)>,
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Deterministic backoff between retry attempts: a seed-derived number
/// of spin-loop hints, decorrelating simultaneous retries across worker
/// threads without consulting any clock. Reports therefore stay a pure
/// function of the spec.
fn retry_jitter(seed: u64, cell: usize, attempt: u32) {
    let stream = ((cell as u64) << 8) ^ u64::from(attempt);
    let mut rng = Rng::seed_from_u64(mix_seed(seed, stream));
    let spins = rng.gen_range(64u64..4096);
    for _ in 0..spins {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> MatrixSpec {
        MatrixSpec::new(7, 20_000)
            .with_profiles(vec![BenchmarkProfile::pegwit_like()])
            .with_archs(vec![ArchConfig::one_issue()])
    }

    #[test]
    fn report_keeps_enumeration_order() {
        let spec = tiny_spec();
        let report = run_matrix(&spec, 2);
        assert_eq!(report.cells.len(), 3);
        let labels: Vec<&str> = report.cells.iter().map(|c| c.model).collect();
        assert_eq!(labels, ["native", "cp-base", "cp-opt"]);
        assert!(report.cell("pegwit", "1-issue", "native").is_some());
        assert!(report.cell("pegwit", "1-issue", "nope").is_none());
        assert!(report.summary().all_ok());
    }

    #[test]
    fn coordinate_matches_enumeration() {
        let spec = MatrixSpec::new(1, 1000);
        for (i, _) in (0..spec.len()).enumerate() {
            let (p, a, m) = spec.coordinate(i).unwrap();
            let per_profile = spec.archs.len() * spec.models.len();
            assert_eq!(p, spec.profiles[i / per_profile].name);
            assert_eq!(m, spec.models[i % spec.models.len()].0);
            assert!(spec.archs.iter().any(|x| x.name == a));
        }
        assert!(spec.coordinate(spec.len()).is_none());
    }

    #[test]
    fn speedup_lookup_matches_direct_computation() {
        let report = run_matrix(&tiny_spec(), 1);
        let s = report
            .speedup("pegwit", "1-issue", "cp-opt", "native")
            .unwrap();
        let direct = report
            .cell("pegwit", "1-issue", "cp-opt")
            .unwrap()
            .expect_ok()
            .speedup_over(
                report
                    .cell("pegwit", "1-issue", "native")
                    .unwrap()
                    .expect_ok(),
            );
        assert_eq!(s, direct);
    }

    #[test]
    fn render_and_json_mention_every_cell() {
        let report = run_matrix(&tiny_spec(), 1);
        let txt = report.render();
        let json = report.to_json();
        for c in &report.cells {
            assert!(txt.contains(c.model));
            assert!(json.contains(&format!("\"model\": \"{}\"", c.model)));
            assert!(json.contains("\"outcome\": \"ok\""));
        }
        assert!(json.contains("\"ratio\""), "codepack cells carry the ratio");
        assert!(
            txt.contains("cells: 3 ok"),
            "render carries the summary footer"
        );
        codepack_obs::json::parse(&json).expect("report JSON parses");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_rejected() {
        run_matrix(&tiny_spec(), 0);
    }

    #[test]
    fn trapping_cell_degrades_not_aborts() {
        let spec = tiny_spec().with_fault(InjectedFault::permanent(1, FaultKind::Trap));
        let report = run_matrix(&spec, 2);
        assert_eq!(report.cells.len(), 3);
        match &report.cells[1].outcome {
            CellOutcome::Trapped { error } => assert!(error.contains("injected trap")),
            other => panic!("expected trapped, got {other:?}"),
        }
        assert!(report.cells[1].result.is_none());
        assert!(report.cells[0].outcome.is_ok() && report.cells[2].outcome.is_ok());
        let s = report.summary();
        assert_eq!((s.ok, s.trapped), (2, 1));
        assert!(!s.all_ok());
        // Retries were spent on the permanent fault.
        assert_eq!(report.cells[1].attempts, spec.retries + 1);
    }

    #[test]
    fn transient_fault_clears_after_retry() {
        let clean = run_matrix(&tiny_spec(), 1);
        let spec = tiny_spec().with_fault(InjectedFault::transient(2, FaultKind::Trap, 1));
        let report = run_matrix(&spec, 2);
        assert!(report.summary().all_ok());
        assert_eq!(report.cells[2].attempts, 2);
        assert_eq!(report.summary().retries, 1);
        assert_eq!(
            report.cells[2].expect_ok().cycles(),
            clean.cells[2].expect_ok().cycles(),
            "a retried cell produces the same deterministic result"
        );
    }

    #[test]
    fn panicking_cell_is_contained() {
        let spec = tiny_spec()
            .with_retries(0)
            .with_fault(InjectedFault::permanent(0, FaultKind::Panic));
        let report = run_matrix(&spec, 2);
        match &report.cells[0].outcome {
            CellOutcome::Trapped { error } => {
                assert!(error.contains("panic") && error.contains("injected"))
            }
            other => panic!("expected trapped, got {other:?}"),
        }
        assert!(report.cells[1].outcome.is_ok());
    }

    #[test]
    fn skip_fault_marks_cell_skipped() {
        let spec = tiny_spec().with_fault(InjectedFault::permanent(1, FaultKind::Skip));
        let report = run_matrix(&spec, 1);
        assert_eq!(report.cells[1].outcome.label(), "skipped");
        assert_eq!(report.summary().skipped, 1);
    }

    #[test]
    fn deadline_marks_cells_timed_out() {
        let spec = tiny_spec().with_deadline_cycles(1);
        let report = run_matrix(&spec, 1);
        for c in &report.cells {
            match c.outcome {
                CellOutcome::TimedOut {
                    deadline_cycles,
                    actual_cycles,
                } => {
                    assert_eq!(deadline_cycles, 1);
                    assert!(actual_cycles > 1);
                }
                ref other => panic!("expected timed-out, got {other:?}"),
            }
        }
        assert!(report.render().contains("timed-out"));
    }

    #[test]
    fn profiled_cube_merges_profiles_byte_identically_across_workers() {
        let spec = tiny_spec();
        let one = run_matrix_with(&spec, &MatrixOptions::new(1).profiling(true)).unwrap();
        let four = run_matrix_with(&spec, &MatrixOptions::new(4).profiling(true)).unwrap();
        let a = one.profile.as_ref().expect("codepack cells profiled");
        let b = four.profile.as_ref().expect("codepack cells profiled");
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "merged profile must not depend on worker count"
        );
        // The merged source label names exactly the contributing cells —
        // native cells never touch a compressed block.
        assert!(a.source().contains("cp-base") && a.source().contains("cp-opt"));
        assert!(!a.source().contains("native"));
        assert!(a.blocks_touched() > 0 && a.total_blocks() > 0);
        // Profiling changes no timing and observed-mode metrics stay off.
        let plain = run_matrix(&spec, 1);
        assert!(
            plain.profile.is_none(),
            "unprofiled cube carries no profile"
        );
        for (p, c) in one.cells.iter().zip(&plain.cells) {
            assert_eq!(
                p.expect_ok().cycles(),
                c.expect_ok().cycles(),
                "profiling must not perturb timing"
            );
            assert!(p.metrics.is_none(), "profiled-only cells carry no metrics");
        }
    }

    #[test]
    fn profiled_journaled_run_is_rejected() {
        let dir = std::env::temp_dir().join("cpack-profiled-journal-guard");
        let opts = MatrixOptions::new(1).profiling(true).with_journal(&dir);
        let err = run_matrix_with(&tiny_spec(), &opts).unwrap_err();
        assert!(err.contains("cannot be journaled"), "got: {err}");
        assert!(!dir.exists(), "the guard fires before any journal I/O");
    }

    #[test]
    fn run_metrics_carry_failure_counters() {
        let spec = tiny_spec().with_fault(InjectedFault::permanent(0, FaultKind::Trap));
        let m = run_matrix(&spec, 1).run_metrics();
        assert_eq!(m.counter_value(names::MATRIX_CELLS_OK), Some(2));
        assert_eq!(m.counter_value(names::MATRIX_CELLS_TRAPPED), Some(1));
        assert_eq!(
            m.counter_value(names::MATRIX_RETRIES),
            Some(u64::from(spec.retries))
        );
    }
}
