//! Parallel experiment fan-out: benchmark × architecture × code model.
//!
//! Every paper table is a slice of the same cube — profiles on one axis,
//! machines on another, decompressor configurations on the third.
//! [`run_matrix`] enumerates the full cross product once, runs the cells
//! on a fixed pool of worker threads, and returns a [`SimReport`] whose
//! cell order, rendered table, and JSON serialization are independent of
//! the worker count: cell `i` of the report is always job `i` of the
//! profile-major enumeration, no matter which thread ran it or when it
//! finished.
//!
//! ```no_run
//! use codepack_sim::{ArchConfig, CodeModel, MatrixSpec};
//!
//! let spec = MatrixSpec::new(42, 200_000)
//!     .with_archs(vec![ArchConfig::four_issue()])
//!     .with_models(vec![
//!         ("native", CodeModel::Native),
//!         ("cp-opt", CodeModel::codepack_optimized()),
//!     ]);
//! let report = codepack_sim::run_matrix(&spec, 4);
//! println!("{}", report.render());
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use codepack_core::{CodePackImage, CompressionConfig};
use codepack_isa::Program;
use codepack_obs::Obs;
use codepack_synth::{generate, BenchmarkProfile};

use crate::{ArchConfig, CodeModel, SimResult, Simulation, Table};

/// The experiment cube: which profiles, machines, and code models to
/// cross, plus the common run parameters.
#[derive(Clone, Debug)]
pub struct MatrixSpec {
    /// Benchmark profiles (defaults to the paper's six-program suite).
    pub profiles: Vec<BenchmarkProfile>,
    /// Machines (defaults to the three Table 2 architectures).
    pub archs: Vec<ArchConfig>,
    /// Labeled code models (defaults to native/baseline/optimized).
    pub models: Vec<(&'static str, CodeModel)>,
    /// Program-generation seed.
    pub seed: u64,
    /// Instruction budget per cell.
    pub max_insns: u64,
}

impl MatrixSpec {
    /// The full default cube: six profiles × three machines × three code
    /// models.
    pub fn new(seed: u64, max_insns: u64) -> MatrixSpec {
        MatrixSpec {
            profiles: BenchmarkProfile::suite(),
            archs: vec![
                ArchConfig::one_issue(),
                ArchConfig::four_issue(),
                ArchConfig::eight_issue(),
            ],
            models: vec![
                ("native", CodeModel::Native),
                ("cp-base", CodeModel::codepack_baseline()),
                ("cp-opt", CodeModel::codepack_optimized()),
            ],
            seed,
            max_insns,
        }
    }

    /// Replaces the profile axis.
    pub fn with_profiles(mut self, profiles: Vec<BenchmarkProfile>) -> MatrixSpec {
        self.profiles = profiles;
        self
    }

    /// Replaces the architecture axis.
    pub fn with_archs(mut self, archs: Vec<ArchConfig>) -> MatrixSpec {
        self.archs = archs;
        self
    }

    /// Replaces the code-model axis.
    pub fn with_models(mut self, models: Vec<(&'static str, CodeModel)>) -> MatrixSpec {
        self.models = models;
        self
    }

    /// Number of cells in the cube.
    pub fn len(&self) -> usize {
        self.profiles.len() * self.archs.len() * self.models.len()
    }

    /// True when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One cell of the experiment cube.
#[derive(Clone, Debug)]
pub struct MatrixCell {
    /// Benchmark profile name.
    pub profile: &'static str,
    /// Architecture name.
    pub arch: &'static str,
    /// Code-model label from the spec.
    pub model: &'static str,
    /// The simulation result.
    pub result: SimResult,
    /// Per-cell metrics snapshot (an [`codepack_obs::ObsReport`] JSON
    /// document), when the cube ran under [`run_matrix_observed`].
    /// Deterministic for a given cell regardless of worker count.
    pub metrics: Option<String>,
}

impl MatrixCell {
    /// A filesystem-safe stem naming this cell: `profile-arch-model`.
    pub fn file_stem(&self) -> String {
        format!("{}-{}-{}", self.profile, self.arch, self.model)
    }
}

/// The completed cube, in profile-major (profile, arch, model) order.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Seed the programs were generated from.
    pub seed: u64,
    /// Instruction budget per cell.
    pub max_insns: u64,
    /// One cell per (profile, arch, model), profile-major.
    pub cells: Vec<MatrixCell>,
}

impl SimReport {
    /// The cell for an exact (profile, arch, model) coordinate.
    pub fn cell(&self, profile: &str, arch: &str, model: &str) -> Option<&MatrixCell> {
        self.cells
            .iter()
            .find(|c| c.profile == profile && c.arch == arch && c.model == model)
    }

    /// Speedup of `model` over `baseline` at the same (profile, arch),
    /// when both cells exist.
    pub fn speedup(&self, profile: &str, arch: &str, model: &str, baseline: &str) -> Option<f64> {
        let m = self.cell(profile, arch, model)?;
        let b = self.cell(profile, arch, baseline)?;
        Some(m.result.speedup_over(&b.result))
    }

    /// Renders the cube as one table: a row per cell with cycles, IPC,
    /// miss rate, and compression ratio. Deterministic for a given cube.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            [
                "Profile",
                "Arch",
                "Model",
                "Cycles",
                "IPC",
                "I-miss/insn",
                "Ratio",
            ]
            .map(String::from)
            .to_vec(),
        )
        .with_title(format!(
            "matrix: seed {}, {} insns/cell, {} cells",
            self.seed,
            self.max_insns,
            self.cells.len()
        ));
        for c in &self.cells {
            let ratio = match &c.result.compression {
                Some(s) => format!("{:.1}%", s.compression_ratio() * 100.0),
                None => "-".to_string(),
            };
            t.row(vec![
                c.profile.to_string(),
                c.arch.to_string(),
                c.model.to_string(),
                c.result.cycles().to_string(),
                format!("{:.3}", c.result.ipc()),
                format!("{:.5}", c.result.imiss_per_insn()),
                ratio,
            ]);
        }
        t.render()
    }

    /// Serializes the cube as JSON. Every numeric field is an integer
    /// counter or a fixed-precision decimal, so two runs of the same cube
    /// produce byte-identical output regardless of worker count.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"max_insns\": {},", self.max_insns);
        let _ = writeln!(out, "  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            let r = &c.result;
            let _ = write!(
                out,
                "    {{\"profile\": \"{}\", \"arch\": \"{}\", \"model\": \"{}\", \
                 \"cycles\": {}, \"instructions\": {}, \
                 \"icache_accesses\": {}, \"icache_misses\": {}, \
                 \"dcache_accesses\": {}, \"dcache_misses\": {}, \
                 \"branches\": {}, \"mispredicts\": {}, \
                 \"fetch_misses\": {}, \"fetch_buffer_hits\": {}, \
                 \"index_hits\": {}, \"index_misses\": {}, \
                 \"memory_beats\": {}, \"state_hash\": {}",
                c.profile,
                c.arch,
                c.model,
                r.cycles(),
                r.pipeline.instructions,
                r.pipeline.icache.accesses,
                r.pipeline.icache.misses(),
                r.pipeline.dcache.accesses,
                r.pipeline.dcache.misses(),
                r.pipeline.branches,
                r.pipeline.mispredicts,
                r.fetch.misses,
                r.fetch.buffer_hits,
                r.fetch.index_hits,
                r.fetch.index_misses,
                r.fetch.memory_beats,
                r.state_hash,
            );
            if let Some(s) = &r.compression {
                let _ = write!(
                    out,
                    ", \"original_bytes\": {}, \"compressed_bytes\": {}, \"ratio\": {:.6}",
                    s.original_bytes,
                    s.total_bytes(),
                    s.compression_ratio()
                );
            }
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            let _ = writeln!(out, "}}{comma}");
        }
        let _ = writeln!(out, "  ]");
        let _ = write!(out, "}}");
        out
    }
}

/// Runs the full cube on `workers` threads and returns the report.
///
/// Programs are generated and compressed once per profile (all CodePack
/// cells of a profile share the image when their compression options
/// agree), then the cells run independently: a shared atomic counter
/// hands out job indices, each worker writes its result into the slot
/// for that index, and the report keeps enumeration order. One worker or
/// sixteen, the report is identical.
///
/// # Panics
///
/// Panics if `workers` is zero, the spec has an empty axis, or any cell
/// traps during functional execution.
pub fn run_matrix(spec: &MatrixSpec, workers: usize) -> SimReport {
    run_matrix_inner(spec, workers, false)
}

/// Like [`run_matrix`], but every cell runs with a metrics-only observer
/// and carries its [`codepack_obs::ObsReport`] JSON in
/// [`MatrixCell::metrics`]. Observation never perturbs timing, and the
/// snapshot for cell `i` is byte-identical whether one worker ran the
/// cube or sixteen did.
///
/// # Panics
///
/// Panics under the same conditions as [`run_matrix`].
pub fn run_matrix_observed(spec: &MatrixSpec, workers: usize) -> SimReport {
    run_matrix_inner(spec, workers, true)
}

fn run_matrix_inner(spec: &MatrixSpec, workers: usize, observed: bool) -> SimReport {
    assert!(workers > 0, "run_matrix needs at least one worker");
    assert!(!spec.is_empty(), "run_matrix needs a non-empty cube");

    // Per-profile setup, done once: the generated program and one
    // compressed image per distinct compression configuration.
    struct Prepared {
        program: Arc<Program>,
        images: Vec<(CompressionConfig, Arc<CodePackImage>)>,
    }
    let prepared: Vec<Prepared> = spec
        .profiles
        .iter()
        .map(|profile| {
            let program = Arc::new(generate(profile, spec.seed));
            let mut images: Vec<(CompressionConfig, Arc<CodePackImage>)> = Vec::new();
            for (_, model) in &spec.models {
                if let CodeModel::CodePack { compression, .. } = model {
                    if !images.iter().any(|(c, _)| c == compression) {
                        images.push((
                            *compression,
                            Arc::new(CodePackImage::compress(program.text_words(), compression)),
                        ));
                    }
                }
            }
            Prepared { program, images }
        })
        .collect();

    // Profile-major job list; index into it IS the report order.
    struct Job {
        profile: &'static str,
        arch: ArchConfig,
        model_label: &'static str,
        model: CodeModel,
        prepared: usize,
    }
    let mut jobs: Vec<Job> = Vec::with_capacity(spec.len());
    for (pi, profile) in spec.profiles.iter().enumerate() {
        for arch in &spec.archs {
            for (label, model) in &spec.models {
                jobs.push(Job {
                    profile: profile.name,
                    arch: *arch,
                    model_label: label,
                    model: *model,
                    prepared: pi,
                });
            }
        }
    }

    let next = AtomicUsize::new(0);
    type Slot = Mutex<Option<(SimResult, Option<String>)>>;
    let slots: Vec<Slot> = jobs.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|s| {
        for _ in 0..workers.min(jobs.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                let prep = &prepared[job.prepared];
                let image = match &job.model {
                    CodeModel::Native => None,
                    CodeModel::CodePack { compression, .. } => Some(Arc::clone(
                        &prep
                            .images
                            .iter()
                            .find(|(c, _)| c == compression)
                            .expect("image prepared for every compression config")
                            .1,
                    )),
                };
                let obs = if observed {
                    Obs::with_null_sink()
                } else {
                    Obs::disabled()
                };
                let (result, report) = Simulation::new(job.arch, job.model)
                    .try_run_observed(&prep.program, spec.max_insns, image, obs)
                    .unwrap_or_else(|e| panic!("cell {i} trapped: {e}"));
                let metrics = report.map(|r| r.to_json());
                *slots[i].lock().unwrap() = Some((result, metrics));
            });
        }
    });

    let cells = jobs
        .iter()
        .zip(slots)
        .map(|(job, slot)| {
            let (result, metrics) = slot.into_inner().unwrap().expect("every job ran");
            MatrixCell {
                profile: job.profile,
                arch: job.arch.name,
                model: job.model_label,
                result,
                metrics,
            }
        })
        .collect();

    SimReport {
        seed: spec.seed,
        max_insns: spec.max_insns,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> MatrixSpec {
        MatrixSpec::new(7, 20_000)
            .with_profiles(vec![BenchmarkProfile::pegwit_like()])
            .with_archs(vec![ArchConfig::one_issue()])
    }

    #[test]
    fn report_keeps_enumeration_order() {
        let spec = tiny_spec();
        let report = run_matrix(&spec, 2);
        assert_eq!(report.cells.len(), 3);
        let labels: Vec<&str> = report.cells.iter().map(|c| c.model).collect();
        assert_eq!(labels, ["native", "cp-base", "cp-opt"]);
        assert!(report.cell("pegwit", "1-issue", "native").is_some());
        assert!(report.cell("pegwit", "1-issue", "nope").is_none());
    }

    #[test]
    fn speedup_lookup_matches_direct_computation() {
        let report = run_matrix(&tiny_spec(), 1);
        let s = report
            .speedup("pegwit", "1-issue", "cp-opt", "native")
            .unwrap();
        let direct = report
            .cell("pegwit", "1-issue", "cp-opt")
            .unwrap()
            .result
            .speedup_over(&report.cell("pegwit", "1-issue", "native").unwrap().result);
        assert_eq!(s, direct);
    }

    #[test]
    fn render_and_json_mention_every_cell() {
        let report = run_matrix(&tiny_spec(), 1);
        let txt = report.render();
        let json = report.to_json();
        for c in &report.cells {
            assert!(txt.contains(c.model));
            assert!(json.contains(&format!("\"model\": \"{}\"", c.model)));
        }
        assert!(json.contains("\"ratio\""), "codepack cells carry the ratio");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_rejected() {
        run_matrix(&tiny_spec(), 0);
    }
}
