//! Soft-error fault-injection campaigns: fault rates × integrity configs.
//!
//! A campaign is a thin layer over the journaled matrix runner
//! ([`run_matrix_with`]): the code-model axis carries one protected
//! CodePack model per (rate, integrity) point, plus the native machine
//! and the unprotected CodePack machine as baselines. Everything the
//! matrix runner guarantees — per-cell isolation, bounded retries,
//! crash-safe journaling, worker-count-independent byte-identical output
//! — carries over, because the fault process itself is a pure function
//! of (seed, cycle, address): no wall clock, no shared RNG state.
//!
//! A protected cell that exhausts its re-fetch budget machine-checks;
//! the matrix runner records it as a trapped cell whose error message
//! names the faulting pc, which the campaign report surfaces as a
//! trapped machine rather than a harness failure.

use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

use codepack_mem::{FaultStats, IntegrityConfig, SoftErrorConfig};
use codepack_synth::BenchmarkProfile;

use crate::matrix::{run_matrix_with, MatrixOptions, MatrixSpec, SimReport};
use crate::{ArchConfig, CodeModel, Table};

/// A fault-injection campaign: the cube to sweep and the fault points.
#[derive(Clone, Debug)]
pub struct FaultCampaignSpec {
    /// Benchmark profiles (defaults to the smallest profile — campaigns
    /// multiply cells quickly).
    pub profiles: Vec<BenchmarkProfile>,
    /// The machine under test.
    pub arch: ArchConfig,
    /// Fault rates in parts-per-billion per probed access.
    pub rates_ppb: Vec<u32>,
    /// Integrity configurations to cross with the rates.
    pub integrity: Vec<IntegrityConfig>,
    /// Program-generation and fault-process seed.
    pub seed: u64,
    /// Instruction budget per cell.
    pub max_insns: u64,
    /// Matrix-runner retry budget (machine checks are deterministic, so
    /// retries only help against harness-level faults).
    pub retries: u32,
}

impl FaultCampaignSpec {
    /// A small default campaign: one profile, three integrity configs,
    /// rate 0 plus two nonzero rates.
    pub fn new(seed: u64, max_insns: u64) -> FaultCampaignSpec {
        FaultCampaignSpec {
            profiles: vec![BenchmarkProfile::pegwit_like()],
            arch: ArchConfig::four_issue(),
            rates_ppb: vec![0, 2_000_000, 20_000_000],
            integrity: vec![
                IntegrityConfig::none(),
                IntegrityConfig::parity(),
                IntegrityConfig::crc32(),
            ],
            seed,
            max_insns,
            retries: 1,
        }
    }

    /// Replaces the profile axis.
    pub fn with_profiles(mut self, profiles: Vec<BenchmarkProfile>) -> FaultCampaignSpec {
        self.profiles = profiles;
        self
    }

    /// Replaces the machine under test.
    pub fn with_arch(mut self, arch: ArchConfig) -> FaultCampaignSpec {
        self.arch = arch;
        self
    }

    /// Replaces the fault-rate axis (parts per billion).
    pub fn with_rates_ppb(mut self, rates: Vec<u32>) -> FaultCampaignSpec {
        self.rates_ppb = rates;
        self
    }

    /// Replaces the integrity axis.
    pub fn with_integrity(mut self, integrity: Vec<IntegrityConfig>) -> FaultCampaignSpec {
        self.integrity = integrity;
        self
    }

    /// Sets the matrix-runner retry budget.
    pub fn with_retries(mut self, retries: u32) -> FaultCampaignSpec {
        self.retries = retries;
        self
    }

    /// Lowers the campaign onto the matrix runner's cube: the model axis
    /// is native + unprotected CodePack + one protected CodePack per
    /// (integrity, rate) point, in that deterministic order.
    pub fn to_matrix_spec(&self) -> MatrixSpec {
        let mut models: Vec<(&'static str, CodeModel)> = vec![
            ("native", CodeModel::Native),
            ("cp-opt", CodeModel::codepack_optimized()),
        ];
        for integrity in &self.integrity {
            for &ppb in &self.rates_ppb {
                let label = intern_label(&format!("cp-{}-r{}", integrity.label(), ppb));
                let protection = SoftErrorConfig::new(self.seed, ppb, *integrity);
                models.push((
                    label,
                    CodeModel::codepack_optimized().with_protection(protection),
                ));
            }
        }
        MatrixSpec::new(self.seed, self.max_insns)
            .with_profiles(self.profiles.clone())
            .with_archs(vec![self.arch])
            .with_models(models)
            .with_retries(self.retries)
    }
}

/// Model labels live on the matrix spec as `&'static str`; campaign
/// labels are computed, so they are interned once per distinct string
/// (re-running a campaign in-process re-uses the allocation).
fn intern_label(label: &str) -> &'static str {
    static LABELS: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut set = LABELS
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .expect("label intern lock");
    match set.get(label) {
        Some(s) => s,
        None => {
            let leaked: &'static str = Box::leak(label.to_string().into_boxed_str());
            set.insert(leaked);
            leaked
        }
    }
}

/// Runs a fault campaign; journaling/resume/workers come from `opts`.
///
/// # Errors
///
/// Returns journal I/O and resume-mismatch errors, exactly as
/// [`run_matrix_with`] does. Machine-checked cells are *not* errors.
///
/// # Panics
///
/// Panics if `opts.workers` is zero or an axis is empty.
pub fn run_fault_campaign(
    spec: &FaultCampaignSpec,
    opts: &MatrixOptions,
) -> Result<FaultReport, String> {
    let report = run_matrix_with(&spec.to_matrix_spec(), opts)?;
    Ok(FaultReport { report })
}

/// A completed campaign: the underlying matrix report plus fault-aware
/// rendering (ledger columns, protection slowdown, conservation check).
#[derive(Clone, Debug)]
pub struct FaultReport {
    /// The underlying cube, cell order identical to the lowered spec.
    pub report: SimReport,
}

impl FaultReport {
    /// Sums the fault ledgers of every completed protected cell.
    pub fn total_faults(&self) -> FaultStats {
        let mut total = FaultStats::default();
        for cell in &self.report.cells {
            if let Some(ft) = cell.result.as_ref().and_then(|r| r.faults.as_ref()) {
                total.merge(ft);
            }
        }
        total
    }

    /// Verifies `injected == recovered + trapped + silent` (and
    /// `detected == recovered + trapped`) over every completed cell's
    /// ledger and the campaign total.
    pub fn conservation_holds(&self) -> bool {
        let conserved = |s: &FaultStats| {
            s.injected == s.recovered + s.trapped + s.silent
                && s.detected == s.recovered + s.trapped
        };
        self.report
            .cells
            .iter()
            .filter_map(|c| c.result.as_ref().and_then(|r| r.faults.as_ref()))
            .all(conserved)
            && conserved(&self.total_faults())
    }

    /// Renders the campaign as one table: a row per cell with the fault
    /// ledger and the protection slowdown against the native machine of
    /// the same (profile, arch). Deterministic for a given campaign.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            [
                "Profile", "Model", "Outcome", "Cycles", "Slowdown", "Inject", "Detect", "Recover",
                "Trap", "Silent", "MChk",
            ]
            .map(String::from)
            .to_vec(),
        )
        .with_title(format!(
            "fault campaign: seed {}, {} insns/cell, {} cells",
            self.report.seed,
            self.report.max_insns,
            self.report.cells.len()
        ))
        .with_footer(format!(
            "{}; ledger {}",
            self.report.summary().render(),
            if self.conservation_holds() {
                "conserved (injected == recovered + trapped + silent)"
            } else {
                "NOT CONSERVED"
            }
        ));
        for cell in &self.report.cells {
            let native = self
                .report
                .cell(cell.profile, cell.arch, "native")
                .and_then(|c| c.ok());
            let slowdown = match (&cell.result, native) {
                (Some(r), Some(n)) => match n.checked_speedup_over(r) {
                    // speedup of native over this cell == this cell's slowdown
                    Some(s) if s.is_finite() => format!("{s:.3}x"),
                    _ => "-".into(),
                },
                _ => "-".into(),
            };
            let cycles = match &cell.result {
                Some(r) => r.cycles().to_string(),
                None => "-".into(),
            };
            let ledger = cell.result.as_ref().and_then(|r| r.faults);
            let col = |f: fn(&FaultStats) -> u64| match &ledger {
                Some(ft) => f(ft).to_string(),
                None => "-".into(),
            };
            t.row(vec![
                cell.profile.to_string(),
                cell.model.to_string(),
                cell.outcome.label().to_string(),
                cycles,
                slowdown,
                col(|f| f.injected),
                col(|f| f.detected),
                col(|f| f.recovered),
                col(|f| f.trapped),
                col(|f| f.silent),
                col(|f| f.machine_checks),
            ]);
        }
        t.render()
    }

    /// JSON serialization: the underlying matrix JSON (which already
    /// carries per-cell `faults_*` fields), byte-identical for any
    /// worker count and across journal resumes.
    pub fn to_json(&self) -> String {
        self.report.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codepack_mem::StreamIntegrity;

    fn tiny_spec() -> FaultCampaignSpec {
        FaultCampaignSpec::new(7, 4_000)
            .with_rates_ppb(vec![0, 50_000_000])
            .with_integrity(vec![IntegrityConfig::none(), IntegrityConfig::crc32()])
    }

    #[test]
    fn campaign_lowered_axis_is_deterministic() {
        let a = tiny_spec().to_matrix_spec();
        let b = tiny_spec().to_matrix_spec();
        let names_a: Vec<_> = a.models.iter().map(|(n, _)| *n).collect();
        let names_b: Vec<_> = b.models.iter().map(|(n, _)| *n).collect();
        assert_eq!(names_a, names_b);
        assert_eq!(
            names_a,
            vec![
                "native",
                "cp-opt",
                "cp-none-r0",
                "cp-none-r50000000",
                "cp-crc32-r0",
                "cp-crc32-r50000000",
            ]
        );
        // Interned labels are pointer-stable across lowerings.
        assert!(std::ptr::eq(names_a[3], names_b[3]));
    }

    #[test]
    fn protected_models_carry_their_point() {
        let spec = tiny_spec().to_matrix_spec();
        let (_, model) = spec.models.last().unwrap();
        match model {
            CodeModel::CodePack {
                protection: Some(p),
                ..
            } => {
                assert_eq!(p.faults.ppb, 50_000_000);
                assert_eq!(p.integrity.stream, StreamIntegrity::Crc32);
            }
            other => panic!("expected protected CodePack, got {other:?}"),
        }
    }

    #[test]
    fn campaign_runs_conserve_and_serialize_deterministically() {
        let spec = tiny_spec();
        let one = run_fault_campaign(&spec, &MatrixOptions::new(1)).unwrap();
        let four = run_fault_campaign(&spec, &MatrixOptions::new(4)).unwrap();
        assert!(one.conservation_holds());
        assert_eq!(
            one.to_json(),
            four.to_json(),
            "worker count must not change campaign output"
        );
        assert_eq!(one.render(), four.render());

        // Rate 0 with no integrity hardware is byte-identical to the
        // unprotected machine; rate 0 with CRC armed pays the integrity
        // overhead (the protection slowdown) but records zero faults.
        for cell in &one.report.cells {
            if !cell.model.ends_with("-r0") {
                continue;
            }
            let unprotected = one
                .report
                .cell(cell.profile, cell.arch, "cp-opt")
                .and_then(|c| c.ok())
                .expect("unprotected baseline present");
            let r = cell.ok().expect("rate-0 cell completes");
            assert_eq!(r.state_hash, unprotected.state_hash);
            assert_eq!(r.faults, Some(FaultStats::default()));
            if cell.model == "cp-none-r0" {
                assert_eq!(r.cycles(), unprotected.cycles(), "{}", cell.model);
            } else {
                assert!(
                    r.cycles() >= unprotected.cycles(),
                    "integrity checking cannot speed the machine up: {}",
                    cell.model
                );
            }
        }

        // The nonzero-rate CRC cell actually exercised the machinery.
        let crc = one
            .report
            .cells
            .iter()
            .find(|c| c.model == "cp-crc32-r50000000")
            .unwrap();
        if let Some(r) = crc.ok() {
            let ft = r.faults.expect("protected run carries a ledger");
            assert!(ft.injected > 0, "rate 5e-2 must strike within 4k insns");
        }
    }
}
