//! Crash-safe sweep journal: one JSONL file recording every completed
//! cell of a matrix run, so an interrupted sweep resumes by re-running
//! only missing or failed cells.
//!
//! # Format
//!
//! `<dir>/journal.jsonl`, one JSON object per line:
//!
//! * Line 1 is a **header** binding the journal to its spec:
//!   `{"kind": "header", "v": 1, "seed": …, "max_insns": …, "cells": …,
//!   "observed": …, "profiles": […], "archs": […], "models": […]}`.
//!   A resume whose spec does not match the header is refused — silently
//!   mixing results from two different cubes would be a wrong answer,
//!   not a convenience.
//! * Every later line is a **cell record**: coordinate, outcome,
//!   attempt count, and (for `ok` cells) the full [`SimResult`] plus the
//!   optional per-cell metrics snapshot. Numeric counters are emitted as
//!   integers; `state_hash` is a decimal *string* so the full 64-bit
//!   value survives the float-typed JSON parser byte-exactly.
//!
//! Each record is appended and flushed as its cell completes, so a
//! `kill -9` loses at most the cells still in flight. A line torn by a
//! crash is detected on read (it fails to parse) and ignored; before
//! appending to a resumed journal the writer re-terminates the file so
//! new records never concatenate onto a torn tail.
//!
//! Only `ok` records are restored on resume — trapped / timed-out /
//! skipped cells are re-run, which is what makes resume the natural
//! retry loop for a sweep that degraded per-cell.

use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use codepack_core::{CompositionStats, FetchStats};
use codepack_cpu::PipelineStats;
use codepack_mem::CacheStats;
use codepack_obs::json::{self, Value};

use crate::{CellOutcome, MatrixSpec, SimResult};

/// Journal format version this build writes and understands.
pub const JOURNAL_VERSION: u64 = 1;

/// File name of the journal inside the `--journal` directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// One cell record read back from a journal.
#[derive(Clone, Debug)]
pub struct JournalEntry {
    /// Job index in profile-major enumeration order.
    pub cell: usize,
    /// Coordinate, as recorded (owned: the journal outlives any spec).
    pub profile: String,
    /// Architecture name.
    pub arch: String,
    /// Code-model label.
    pub model: String,
    /// How the cell ended.
    pub outcome: CellOutcome,
    /// Attempts the cell consumed (>= 1).
    pub attempts: u32,
    /// The result, present for `ok` cells.
    pub result: Option<SimResult>,
    /// Per-cell metrics snapshot, when the cube ran observed.
    pub metrics: Option<String>,
}

/// Append-only writer over `<dir>/journal.jsonl`.
#[derive(Debug)]
pub struct JournalWriter {
    file: std::fs::File,
    path: PathBuf,
}

impl JournalWriter {
    /// Opens `<dir>/journal.jsonl` fresh (truncating any previous
    /// journal) and writes the header for `spec`.
    pub fn create(dir: &Path, spec: &MatrixSpec, observed: bool) -> Result<JournalWriter, String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        let path = dir.join(JOURNAL_FILE);
        let file = std::fs::File::create(&path)
            .map_err(|e| format!("creating {}: {e}", path.display()))?;
        let mut w = JournalWriter { file, path };
        w.append_line(&header_json(spec, observed))?;
        Ok(w)
    }

    /// Reopens an existing journal for appending (resume). If the file
    /// does not end in a newline — the tail was torn by a crash — a
    /// newline is written first so new records stay on their own lines.
    pub fn reopen(dir: &Path) -> Result<JournalWriter, String> {
        let path = dir.join(JOURNAL_FILE);
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("opening {}: {e}", path.display()))?;
        let len = file
            .seek(SeekFrom::End(0))
            .map_err(|e| format!("seeking {}: {e}", path.display()))?;
        if len > 0 {
            file.seek(SeekFrom::End(-1))
                .map_err(|e| format!("seeking {}: {e}", path.display()))?;
            let mut last = [0u8; 1];
            file.read_exact(&mut last)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            if last[0] != b'\n' {
                file.write_all(b"\n")
                    .map_err(|e| format!("terminating torn line in {}: {e}", path.display()))?;
            }
        }
        Ok(JournalWriter { file, path })
    }

    /// Appends one completed cell and flushes, so the record survives the
    /// process dying immediately afterwards.
    pub fn append(&mut self, entry: &JournalEntry) -> Result<(), String> {
        self.append_line(&entry_json(entry))
    }

    fn append_line(&mut self, line: &str) -> Result<(), String> {
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.write_all(b"\n"))
            .and_then(|()| self.file.flush())
            .map_err(|e| format!("appending to {}: {e}", self.path.display()))
    }
}

/// What a journal read yields: the validated entries (last record per
/// cell wins) and how many lines were unreadable (torn by a crash).
#[derive(Debug, Default)]
pub struct JournalContents {
    /// Cell records, at most one per cell index.
    pub entries: Vec<JournalEntry>,
    /// Lines that failed to parse and were skipped.
    pub torn_lines: usize,
}

/// True when `<dir>/journal.jsonl` exists.
pub fn journal_exists(dir: &Path) -> bool {
    dir.join(JOURNAL_FILE).is_file()
}

/// Reads a journal back, validating the header against `spec` and every
/// record against the cell coordinate the spec assigns to its index.
///
/// # Errors
///
/// * the file cannot be read, or has no parseable header;
/// * the header names a different cube (seed, budget, axes, observer) —
///   resuming would splice results from a different experiment;
/// * a record's coordinate disagrees with the spec at its index.
///
/// Torn lines (crash mid-append) are skipped, not errors.
pub fn read_journal(
    dir: &Path,
    spec: &MatrixSpec,
    observed: bool,
) -> Result<JournalContents, String> {
    let path = dir.join(JOURNAL_FILE);
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());

    let header_line = lines.next().ok_or_else(|| {
        format!(
            "{}: empty journal (no header); re-run without --resume",
            path.display()
        )
    })?;
    let header = json::parse(header_line)
        .map_err(|e| format!("{}: unreadable journal header: {e}", path.display()))?;
    check_header(&header, spec, observed).map_err(|e| format!("{}: {e}", path.display()))?;

    let mut slots: Vec<Option<JournalEntry>> = (0..spec.len()).map(|_| None).collect();
    let mut torn_lines = 0usize;
    for line in lines {
        let Ok(v) = json::parse(line) else {
            torn_lines += 1;
            continue;
        };
        let entry = match parse_entry(&v) {
            Ok(e) => e,
            Err(_) => {
                torn_lines += 1;
                continue;
            }
        };
        let (profile, arch, model) = spec.coordinate(entry.cell).ok_or_else(|| {
            format!(
                "journal cell {} outside the {}-cell cube",
                entry.cell,
                spec.len()
            )
        })?;
        if entry.profile != profile || entry.arch != arch || entry.model != model {
            return Err(format!(
                "journal cell {} is {}/{}/{} but the spec says {}/{}/{}",
                entry.cell, entry.profile, entry.arch, entry.model, profile, arch, model
            ));
        }
        let cell = entry.cell;
        slots[cell] = Some(entry); // last record wins
    }
    Ok(JournalContents {
        entries: slots.into_iter().flatten().collect(),
        torn_lines,
    })
}

fn header_json(spec: &MatrixSpec, observed: bool) -> String {
    let list = |names: Vec<&str>| -> String {
        let quoted: Vec<String> = names
            .iter()
            .map(|n| format!("\"{}\"", json::escape(n)))
            .collect();
        format!("[{}]", quoted.join(", "))
    };
    format!(
        "{{\"kind\": \"header\", \"v\": {JOURNAL_VERSION}, \"seed\": {}, \"max_insns\": {}, \
         \"cells\": {}, \"observed\": {}, \"profiles\": {}, \"archs\": {}, \"models\": {}}}",
        spec.seed,
        spec.max_insns,
        spec.len(),
        observed,
        list(spec.profiles.iter().map(|p| p.name).collect()),
        list(spec.archs.iter().map(|a| a.name).collect()),
        list(spec.models.iter().map(|(l, _)| *l).collect()),
    )
}

fn check_header(header: &Value, spec: &MatrixSpec, observed: bool) -> Result<(), String> {
    let field = |k: &str| header.get(k).ok_or_else(|| format!("header lacks `{k}`"));
    if field("kind")?.as_str() != Some("header") {
        return Err("first journal line is not a header".into());
    }
    let v = field("v")?.as_u64().unwrap_or(0);
    if v != JOURNAL_VERSION {
        return Err(format!(
            "journal version {v}, this build writes {JOURNAL_VERSION}"
        ));
    }
    let mismatch = |what: &str| {
        Err(format!(
            "journal was recorded for a different cube ({what} differs); \
             start a fresh journal instead of resuming"
        ))
    };
    if field("seed")?.as_u64() != Some(spec.seed) {
        return mismatch("seed");
    }
    if field("max_insns")?.as_u64() != Some(spec.max_insns) {
        return mismatch("max_insns");
    }
    if field("cells")?.as_u64() != Some(spec.len() as u64) {
        return mismatch("cell count");
    }
    if field("observed")?.as_bool() != Some(observed) {
        return mismatch("observer mode");
    }
    let names_match = |key: &str, want: Vec<&str>| -> bool {
        field(key).ok().and_then(|v| {
            v.as_array().map(|a| {
                a.len() == want.len() && a.iter().zip(&want).all(|(v, w)| v.as_str() == Some(w))
            })
        }) == Some(true)
    };
    if !names_match("profiles", spec.profiles.iter().map(|p| p.name).collect()) {
        return mismatch("profile axis");
    }
    if !names_match("archs", spec.archs.iter().map(|a| a.name).collect()) {
        return mismatch("architecture axis");
    }
    if !names_match("models", spec.models.iter().map(|(l, _)| *l).collect()) {
        return mismatch("model axis");
    }
    Ok(())
}

fn entry_json(e: &JournalEntry) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "{{\"kind\": \"cell\", \"cell\": {}, \"profile\": \"{}\", \"arch\": \"{}\", \
         \"model\": \"{}\", \"outcome\": \"{}\", \"attempts\": {}",
        e.cell,
        json::escape(&e.profile),
        json::escape(&e.arch),
        json::escape(&e.model),
        e.outcome.label(),
        e.attempts
    );
    match &e.outcome {
        CellOutcome::Ok => {}
        CellOutcome::Trapped { error } => {
            let _ = write!(out, ", \"error\": \"{}\"", json::escape(error));
        }
        CellOutcome::TimedOut {
            deadline_cycles,
            actual_cycles,
        } => {
            let _ = write!(
                out,
                ", \"deadline_cycles\": {deadline_cycles}, \"actual_cycles\": {actual_cycles}"
            );
        }
        CellOutcome::Skipped { reason } => {
            let _ = write!(out, ", \"reason\": \"{}\"", json::escape(reason));
        }
    }
    if let Some(r) = &e.result {
        let _ = write!(out, ", \"result\": {}", result_json(r));
    }
    if let Some(m) = &e.metrics {
        let _ = write!(out, ", \"metrics\": \"{}\"", json::escape(m));
    }
    out.push('}');
    out
}

fn parse_entry(v: &Value) -> Result<JournalEntry, String> {
    if v.get("kind").and_then(Value::as_str) != Some("cell") {
        return Err("not a cell record".into());
    }
    let str_field = |k: &str| -> Result<String, String> {
        v.get(k)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("cell record lacks `{k}`"))
    };
    let cell = v
        .get("cell")
        .and_then(Value::as_u64)
        .ok_or("cell record lacks `cell`")? as usize;
    let attempts = v.get("attempts").and_then(Value::as_u64).unwrap_or(1) as u32;
    let outcome = match str_field("outcome")?.as_str() {
        "ok" => CellOutcome::Ok,
        "trapped" => CellOutcome::Trapped {
            error: str_field("error")?,
        },
        "timed-out" => CellOutcome::TimedOut {
            deadline_cycles: v
                .get("deadline_cycles")
                .and_then(Value::as_u64)
                .ok_or("timed-out record lacks `deadline_cycles`")?,
            actual_cycles: v
                .get("actual_cycles")
                .and_then(Value::as_u64)
                .ok_or("timed-out record lacks `actual_cycles`")?,
        },
        "skipped" => CellOutcome::Skipped {
            reason: str_field("reason")?,
        },
        other => return Err(format!("unknown outcome `{other}`")),
    };
    let result = match v.get("result") {
        Some(r) => Some(parse_result(r)?),
        None => None,
    };
    if matches!(outcome, CellOutcome::Ok) && result.is_none() {
        return Err("ok record lacks a result".into());
    }
    Ok(JournalEntry {
        cell,
        profile: str_field("profile")?,
        arch: str_field("arch")?,
        model: str_field("model")?,
        outcome,
        attempts,
        result,
        metrics: v.get("metrics").and_then(Value::as_str).map(str::to_string),
    })
}

/// Serializes a complete [`SimResult`] — every field, not just the ones
/// the report table shows — so a restored cell is indistinguishable from
/// a re-run one.
pub fn result_json(r: &SimResult) -> String {
    use std::fmt::Write as _;
    let cache = |c: &CacheStats| {
        format!(
            "{{\"accesses\": {}, \"hits\": {}, \"evictions\": {}}}",
            c.accesses, c.hits, c.evictions
        )
    };
    let mut out = format!(
        "{{\"benchmark\": \"{}\", \"arch\": \"{}\", \"model\": \"{}\"",
        json::escape(&r.benchmark),
        json::escape(r.arch),
        json::escape(r.model)
    );
    let fault_obj = |s: &codepack_mem::FaultStats| {
        format!(
            "{{\"injected\": {}, \"detected\": {}, \"recovered\": {}, \"trapped\": {}, \
             \"silent\": {}, \"retries\": {}, \"machine_checks\": {}}}",
            s.injected, s.detected, s.recovered, s.trapped, s.silent, s.retries, s.machine_checks
        )
    };
    let p = &r.pipeline;
    let _ = write!(
        out,
        ", \"pipeline\": {{\"cycles\": {}, \"instructions\": {}, \"icache\": {}, \
         \"dcache\": {}, \"l2\": {}, \"branches\": {}, \"mispredicts\": {}, \
         \"indirect_mispredicts\": {}, \"faults\": {}}}",
        p.cycles,
        p.instructions,
        cache(&p.icache),
        cache(&p.dcache),
        p.l2.as_ref().map_or("null".to_string(), cache),
        p.branches,
        p.mispredicts,
        p.indirect_mispredicts,
        fault_obj(&p.faults)
    );
    let f = &r.fetch;
    let _ = write!(
        out,
        ", \"fetch\": {{\"misses\": {}, \"buffer_hits\": {}, \"index_hits\": {}, \
         \"index_misses\": {}, \"memory_beats\": {}, \"total_critical_cycles\": {}}}",
        f.misses,
        f.buffer_hits,
        f.index_hits,
        f.index_misses,
        f.memory_beats,
        f.total_critical_cycles
    );
    match &r.compression {
        None => out.push_str(", \"compression\": null"),
        Some(c) => {
            let _ = write!(
                out,
                ", \"compression\": {{\"original_bytes\": {}, \"index_table_bytes\": {}, \
                 \"dictionary_bytes\": {}, \"compressed_tag_bits\": {}, \"dict_index_bits\": {}, \
                 \"raw_tag_bits\": {}, \"raw_literal_bits\": {}, \"pad_bits\": {}, \
                 \"raw_halfwords\": {}, \"raw_blocks\": {}, \"blocks\": {}}}",
                c.original_bytes,
                c.index_table_bytes,
                c.dictionary_bytes,
                c.compressed_tag_bits,
                c.dict_index_bits,
                c.raw_tag_bits,
                c.raw_literal_bits,
                c.pad_bits,
                c.raw_halfwords,
                c.raw_blocks,
                c.blocks
            );
        }
    }
    match &r.faults {
        None => out.push_str(", \"faults\": null"),
        Some(s) => {
            let _ = write!(out, ", \"faults\": {}", fault_obj(s));
        }
    }
    // state_hash is a full 64-bit fingerprint; as a bare JSON number it
    // would round through the parser's f64. A decimal string is exact.
    let _ = write!(
        out,
        ", \"retired_instructions\": {}, \"state_hash\": \"{}\"}}",
        r.retired_instructions, r.state_hash
    );
    out
}

/// Reconstructs a [`SimResult`] from [`result_json`] output. The `arch`
/// and `model` names are interned against the process-static name sets
/// (`ArchConfig` names via the caller's spec check; model labels here).
pub fn parse_result(v: &Value) -> Result<SimResult, String> {
    let u = |node: &Value, k: &str| -> Result<u64, String> {
        node.get(k)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("result lacks integer `{k}`"))
    };
    let cache = |node: &Value, k: &str| -> Result<CacheStats, String> {
        let c = node.get(k).ok_or_else(|| format!("result lacks `{k}`"))?;
        Ok(CacheStats {
            accesses: u(c, "accesses")?,
            hits: u(c, "hits")?,
            evictions: u(c, "evictions")?,
        })
    };
    let p = v.get("pipeline").ok_or("result lacks `pipeline`")?;
    let l2 = match p.get("l2") {
        None | Some(Value::Null) => None,
        Some(c) => Some(CacheStats {
            accesses: u(c, "accesses").map_err(|e| format!("l2: {e}"))?,
            hits: u(c, "hits").map_err(|e| format!("l2: {e}"))?,
            evictions: u(c, "evictions").map_err(|e| format!("l2: {e}"))?,
        }),
    };
    let fault_stats = |node: &Value| -> Result<codepack_mem::FaultStats, String> {
        Ok(codepack_mem::FaultStats {
            injected: u(node, "injected")?,
            detected: u(node, "detected")?,
            recovered: u(node, "recovered")?,
            trapped: u(node, "trapped")?,
            silent: u(node, "silent")?,
            retries: u(node, "retries")?,
            machine_checks: u(node, "machine_checks")?,
        })
    };
    let pipeline = PipelineStats {
        cycles: u(p, "cycles")?,
        instructions: u(p, "instructions")?,
        icache: cache(p, "icache")?,
        dcache: cache(p, "dcache")?,
        l2,
        branches: u(p, "branches")?,
        mispredicts: u(p, "mispredicts")?,
        indirect_mispredicts: u(p, "indirect_mispredicts")?,
        // Pre-fault journals lack the ledger; default keeps them readable.
        faults: match p.get("faults") {
            None | Some(Value::Null) => codepack_mem::FaultStats::default(),
            Some(node) => fault_stats(node)?,
        },
    };
    let f = v.get("fetch").ok_or("result lacks `fetch`")?;
    let fetch = FetchStats {
        misses: u(f, "misses")?,
        buffer_hits: u(f, "buffer_hits")?,
        index_hits: u(f, "index_hits")?,
        index_misses: u(f, "index_misses")?,
        memory_beats: u(f, "memory_beats")?,
        total_critical_cycles: u(f, "total_critical_cycles")?,
    };
    let compression = match v.get("compression") {
        None | Some(Value::Null) => None,
        Some(c) => Some(CompositionStats {
            original_bytes: u(c, "original_bytes")?,
            index_table_bytes: u(c, "index_table_bytes")?,
            dictionary_bytes: u(c, "dictionary_bytes")?,
            compressed_tag_bits: u(c, "compressed_tag_bits")?,
            dict_index_bits: u(c, "dict_index_bits")?,
            raw_tag_bits: u(c, "raw_tag_bits")?,
            raw_literal_bits: u(c, "raw_literal_bits")?,
            pad_bits: u(c, "pad_bits")?,
            raw_halfwords: u(c, "raw_halfwords")?,
            raw_blocks: u(c, "raw_blocks")?,
            blocks: u(c, "blocks")?,
        }),
    };
    let model = match v.get("model").and_then(Value::as_str) {
        Some("Native") => "Native",
        Some("CodePack") => "CodePack",
        other => return Err(format!("unknown model label {other:?}")),
    };
    let arch = intern_arch(v.get("arch").and_then(Value::as_str).unwrap_or(""))?;
    let state_hash = v
        .get("state_hash")
        .and_then(Value::as_str)
        .ok_or("result lacks string `state_hash`")?
        .parse::<u64>()
        .map_err(|e| format!("bad state_hash: {e}"))?;
    Ok(SimResult {
        benchmark: v
            .get("benchmark")
            .and_then(Value::as_str)
            .ok_or("result lacks `benchmark`")?
            .to_string(),
        arch,
        model,
        pipeline,
        fetch,
        compression,
        retired_instructions: u(v, "retired_instructions")?,
        state_hash,
        faults: match v.get("faults") {
            None | Some(Value::Null) => None,
            Some(node) => Some(fault_stats(node)?),
        },
    })
}

/// Maps an architecture name back to its `&'static str` (the Table 2
/// machines plus any name a custom spec could have used — custom names
/// resolve through the spec's own axis during [`read_journal`], so by
/// the time a result is parsed the standard set suffices).
fn intern_arch(name: &str) -> Result<&'static str, String> {
    for a in [
        crate::ArchConfig::one_issue(),
        crate::ArchConfig::four_issue(),
        crate::ArchConfig::eight_issue(),
    ] {
        if a.name == name {
            return Ok(a.name);
        }
    }
    Err(format!("unknown architecture `{name}` in journal result"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchConfig, CodeModel, Simulation};
    use codepack_synth::{generate, BenchmarkProfile};

    fn sample_result(model: CodeModel) -> SimResult {
        let p = generate(&BenchmarkProfile::pegwit_like(), 3);
        Simulation::new(ArchConfig::four_issue(), model).run(&p, 20_000)
    }

    #[test]
    fn result_round_trips_byte_exactly() {
        for model in [CodeModel::Native, CodeModel::codepack_optimized()] {
            let r = sample_result(model);
            let doc = result_json(&r);
            let back = parse_result(&json::parse(&doc).unwrap()).unwrap();
            assert_eq!(result_json(&back), doc, "second trip is a fixed point");
            assert_eq!(back.state_hash, r.state_hash);
            assert_eq!(back.cycles(), r.cycles());
            assert_eq!(back.compression.is_some(), r.compression.is_some());
        }
    }

    #[test]
    fn fault_ledger_round_trips() {
        let mut r = sample_result(CodeModel::Native);
        r.faults = Some(codepack_mem::FaultStats {
            injected: 9,
            detected: 7,
            recovered: 5,
            trapped: 2,
            silent: 2,
            retries: 6,
            machine_checks: 1,
        });
        r.pipeline.faults = r.faults.unwrap();
        let doc = result_json(&r);
        let back = parse_result(&json::parse(&doc).unwrap()).unwrap();
        assert_eq!(back.faults, r.faults);
        assert_eq!(back.pipeline.faults, r.pipeline.faults);
        assert_eq!(result_json(&back), doc, "second trip is a fixed point");
    }

    #[test]
    fn pre_fault_journal_lines_still_parse() {
        // A journal written before the soft-error subsystem existed has no
        // `faults` keys anywhere; both omissions must default cleanly.
        let r = sample_result(CodeModel::Native);
        let doc = result_json(&r)
            .replace(", \"faults\": {\"injected\": 0, \"detected\": 0, \"recovered\": 0, \"trapped\": 0, \"silent\": 0, \"retries\": 0, \"machine_checks\": 0}", "")
            .replace(", \"faults\": null", "");
        assert!(!doc.contains("faults"), "both fault fields stripped");
        let back = parse_result(&json::parse(&doc).unwrap()).unwrap();
        assert_eq!(back.faults, None);
        assert!(back.pipeline.faults.is_empty());
    }

    #[test]
    fn extreme_state_hash_survives_the_float_parser() {
        let mut r = sample_result(CodeModel::Native);
        r.state_hash = u64::MAX - 1; // not representable in f64
        let back = parse_result(&json::parse(&result_json(&r)).unwrap()).unwrap();
        assert_eq!(back.state_hash, u64::MAX - 1);
    }

    #[test]
    fn entry_round_trips_every_outcome() {
        let result = sample_result(CodeModel::Native);
        let outcomes = vec![
            (CellOutcome::Ok, Some(result.clone())),
            (
                CellOutcome::Trapped {
                    error: "cell \"x\" trapped\nbadly".into(),
                },
                None,
            ),
            (
                CellOutcome::TimedOut {
                    deadline_cycles: 10,
                    actual_cycles: 99,
                },
                None,
            ),
            (
                CellOutcome::Skipped {
                    reason: "fault plan".into(),
                },
                None,
            ),
        ];
        for (outcome, result) in outcomes {
            let e = JournalEntry {
                cell: 5,
                profile: "pegwit".into(),
                arch: "4-issue".into(),
                model: "native".into(),
                outcome: outcome.clone(),
                attempts: 2,
                result,
                metrics: Some("{\"counters\": {}}".into()),
            };
            let line = entry_json(&e);
            let back = parse_entry(&json::parse(&line).unwrap()).unwrap();
            assert_eq!(back.cell, 5);
            assert_eq!(back.attempts, 2);
            assert_eq!(back.outcome.label(), outcome.label());
            assert_eq!(back.metrics.as_deref(), Some("{\"counters\": {}}"));
            if let (CellOutcome::Trapped { error: a }, CellOutcome::Trapped { error: b }) =
                (&back.outcome, &outcome)
            {
                assert_eq!(a, b, "error text survives escaping");
            }
        }
    }
}
