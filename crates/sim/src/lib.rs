//! # codepack-sim — whole-system experiments
//!
//! Ties the workspace together: pick an [`ArchConfig`] (the paper's Table 2
//! machines), a [`CodeModel`] (native vs. CodePack, baseline or optimized),
//! and a synthetic benchmark, then [`Simulation::run`] produces cycles, IPC,
//! miss rates, decompressor statistics, and compression composition — the
//! raw material of every table in the paper.
//!
//! ```no_run
//! use codepack_sim::{ArchConfig, CodeModel, Simulation};
//! use codepack_synth::{generate, BenchmarkProfile};
//!
//! let program = generate(&BenchmarkProfile::go_like(), 42);
//! let sim = Simulation::new(ArchConfig::four_issue(), CodeModel::codepack_optimized());
//! let result = sim.run(&program, 2_000_000);
//! println!("{}: IPC {:.2}", result.benchmark, result.ipc());
//! ```

#![forbid(unsafe_code)]

mod arch;
mod faults;
mod journal;
mod matrix;
mod report;
mod run;

pub use arch::{ArchConfig, CodeModel};
pub use faults::{run_fault_campaign, FaultCampaignSpec, FaultReport};
pub use journal::{journal_exists, read_journal, JournalContents, JournalEntry, JOURNAL_FILE};
pub use matrix::{
    run_matrix, run_matrix_observed, run_matrix_with, CellOutcome, FaultKind, FaultPlan,
    InjectedFault, MatrixCell, MatrixOptions, MatrixSpec, MatrixSummary, SimReport,
};
pub use report::{fmt_percent, fmt_speedup, Table};
pub use run::{SimResult, Simulation};
