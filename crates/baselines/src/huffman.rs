//! Length-limited canonical Huffman coding, the substrate of CCRP
//! (Wolfe & Chanin: cache-line bytes are Huffman encoded at compile time).

use codepack_core::{BitReader, BitWriter, DecompressError};

/// Maximum codeword length. CCRP-era hardware decoders used short maximum
/// lengths; 16 bits also keeps the canonical tables tiny.
pub const MAX_CODE_LEN: u8 = 16;

/// A canonical, length-limited Huffman code over a dense symbol alphabet.
///
/// ```
/// use codepack_baselines::HuffmanCode;
/// use codepack_core::{BitReader, BitWriter};
///
/// // Symbol 0 is ten times more common than the others.
/// let mut freqs = vec![1u64; 4];
/// freqs[0] = 10;
/// let code = HuffmanCode::build(&freqs);
/// assert!(code.len_of(0) < code.len_of(3));
///
/// let mut w = BitWriter::new();
/// for sym in [0u16, 3, 0, 1] {
///     code.encode(&mut w, sym);
/// }
/// let bytes = w.into_bytes();
/// let mut r = BitReader::new(&bytes);
/// for sym in [0u16, 3, 0, 1] {
///     assert_eq!(code.decode(&mut r).unwrap(), sym);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct HuffmanCode {
    lengths: Vec<u8>,
    codes: Vec<u32>,
    /// Symbols sorted by (length, symbol) — canonical order.
    sorted_symbols: Vec<u16>,
    /// For each length L: the first canonical code of that length.
    first_code: [u32; MAX_CODE_LEN as usize + 1],
    /// For each length L: index into `sorted_symbols` of that first code.
    first_index: [u32; MAX_CODE_LEN as usize + 1],
    /// For each length L: number of codes of exactly that length.
    count: [u32; MAX_CODE_LEN as usize + 1],
    max_len: u8,
}

impl HuffmanCode {
    /// Builds a code from symbol frequencies (`freqs[s]` = occurrences of
    /// symbol `s`). Symbols with zero frequency get no code. Code lengths
    /// are limited to [`MAX_CODE_LEN`] by flattening the frequency
    /// distribution when the optimal tree is too deep.
    ///
    /// # Panics
    ///
    /// Panics if no symbol has a nonzero frequency, or if there are more
    /// than `u16::MAX` symbols.
    pub fn build(freqs: &[u64]) -> HuffmanCode {
        assert!(freqs.len() <= usize::from(u16::MAX), "alphabet too large");
        assert!(
            freqs.iter().any(|&f| f > 0),
            "cannot build a code for an empty stream"
        );

        let mut working: Vec<u64> = freqs.to_vec();
        let mut floor = 1u64;
        let mut lengths = loop {
            let lengths = optimal_lengths(&working);
            let deepest = lengths.iter().copied().max().unwrap_or(0);
            if deepest <= MAX_CODE_LEN {
                break lengths;
            }
            // Flatten: raising the floor of the distribution bounds depth.
            // The floor doubles every round, so this terminates: with all
            // frequencies equal the tree is balanced and ≤16 deep for any
            // alphabet of ≤ 2^16 symbols.
            let total: u64 = working.iter().sum();
            floor = (floor * 2).max(total >> 12);
            for f in working.iter_mut().filter(|f| **f > 0) {
                *f = (*f).max(floor);
            }
        };

        // Degenerate single-symbol alphabet: give it a 1-bit code.
        if lengths.iter().filter(|&&l| l > 0).count() == 1 {
            let only = lengths.iter().position(|&l| l > 0).expect("one symbol");
            lengths[only] = 1;
        }

        // Canonical assignment: sort by (length, symbol).
        let mut sorted_symbols: Vec<u16> = (0..freqs.len() as u16)
            .filter(|&s| lengths[s as usize] > 0)
            .collect();
        sorted_symbols.sort_by_key(|&s| (lengths[s as usize], s));

        let max_len = sorted_symbols
            .iter()
            .map(|&s| lengths[s as usize])
            .max()
            .expect("non-empty");
        let mut codes = vec![0u32; freqs.len()];
        let mut first_code = [0u32; MAX_CODE_LEN as usize + 1];
        let mut first_index = [0u32; MAX_CODE_LEN as usize + 1];
        let mut count = [0u32; MAX_CODE_LEN as usize + 1];
        let mut code = 0u32;
        let mut prev_len = 0u8;
        for (i, &s) in sorted_symbols.iter().enumerate() {
            let len = lengths[s as usize];
            code <<= len - prev_len;
            if len != prev_len {
                first_code[len as usize] = code;
                first_index[len as usize] = i as u32;
            }
            count[len as usize] += 1;
            codes[s as usize] = code;
            code += 1;
            prev_len = len;
        }

        HuffmanCode {
            lengths,
            codes,
            sorted_symbols,
            first_code,
            first_index,
            count,
            max_len,
        }
    }

    /// Code length (bits) of `symbol`; 0 if the symbol has no code.
    pub fn len_of(&self, symbol: u16) -> u8 {
        self.lengths[usize::from(symbol)]
    }

    /// Number of distinct coded symbols.
    pub fn coded_symbols(&self) -> usize {
        self.sorted_symbols.len()
    }

    /// Bytes needed to ship the code with the program: one length byte per
    /// alphabet symbol (canonical codes are reconstructible from lengths).
    pub fn table_bytes(&self) -> u32 {
        self.lengths.len() as u32
    }

    /// Appends `symbol`'s codeword.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` has no code (was absent from the build stream).
    pub fn encode(&self, w: &mut BitWriter, symbol: u16) {
        let len = self.lengths[usize::from(symbol)];
        assert!(len > 0, "symbol {symbol} has no code");
        w.write(self.codes[usize::from(symbol)], u32::from(len));
    }

    /// Decodes one symbol.
    ///
    /// # Errors
    ///
    /// Returns [`DecompressError::Truncated`] when the stream ends inside a
    /// codeword, or [`DecompressError::BadDictIndex`] for a bit pattern
    /// outside the code (possible only with corrupt input).
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, DecompressError> {
        let mut code = 0u32;
        for len in 1..=self.max_len {
            code = (code << 1) | r.read(1)?;
            let first = self.first_code[len as usize];
            let count = self.count[len as usize];
            if count > 0 && code >= first && code < first + count {
                let idx0 = self.first_index[len as usize];
                return Ok(self.sorted_symbols[(idx0 + code - first) as usize]);
            }
        }
        Err(DecompressError::BadDictIndex {
            high: false,
            rank: code as u16,
            dict_len: self.sorted_symbols.len() as u16,
        })
    }

    /// Total encoded bits for a stream with the given frequencies.
    pub fn encoded_bits(&self, freqs: &[u64]) -> u64 {
        freqs
            .iter()
            .enumerate()
            .map(|(s, &f)| f * u64::from(self.lengths[s]))
            .sum()
    }
}

/// Optimal (unlimited) Huffman code lengths via pairwise merging.
fn optimal_lengths(freqs: &[u64]) -> Vec<u8> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct Node {
        weight: u64,
        id: usize,
    }

    let mut heap: BinaryHeap<Reverse<Node>> = BinaryHeap::new();
    // Tree nodes: leaves are symbol indices, internal nodes appended after.
    let mut parent: Vec<usize> = vec![usize::MAX; freqs.len()];
    for (s, &f) in freqs.iter().enumerate() {
        if f > 0 {
            heap.push(Reverse(Node { weight: f, id: s }));
        }
    }
    if heap.len() == 1 {
        let mut lengths = vec![0u8; freqs.len()];
        let only = heap.pop().expect("one").0.id;
        lengths[only] = 1;
        return lengths;
    }
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1").0;
        let b = heap.pop().expect("len > 1").0;
        let id = parent.len();
        parent.push(usize::MAX);
        parent[a.id] = id;
        parent[b.id] = id;
        heap.push(Reverse(Node {
            weight: a.weight + b.weight,
            id,
        }));
    }
    let root = heap.pop().map(|n| n.0.id);
    let mut lengths = vec![0u8; freqs.len()];
    for (s, f) in freqs.iter().enumerate() {
        if *f == 0 {
            continue;
        }
        let mut depth = 0u8;
        let mut node = s;
        while Some(node) != root {
            node = parent[node];
            depth = depth.saturating_add(1);
        }
        lengths[s] = depth;
    }
    lengths
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(code: &HuffmanCode, stream: &[u16]) {
        let mut w = BitWriter::new();
        for &s in stream {
            code.encode(&mut w, s);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &s in stream {
            assert_eq!(code.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn frequent_symbols_get_shorter_codes() {
        let freqs = [100u64, 50, 10, 10, 5, 1];
        let code = HuffmanCode::build(&freqs);
        assert!(code.len_of(0) <= code.len_of(1));
        assert!(code.len_of(1) <= code.len_of(5));
    }

    #[test]
    fn kraft_inequality_holds() {
        let freqs: Vec<u64> = (1..=200).map(|i| i * i).collect();
        let code = HuffmanCode::build(&freqs);
        let kraft: f64 = (0..200u16)
            .map(|s| {
                let l = code.len_of(s);
                if l == 0 {
                    0.0
                } else {
                    2f64.powi(-i32::from(l))
                }
            })
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft = {kraft}");
    }

    #[test]
    fn roundtrip_skewed_byte_alphabet() {
        let freqs: Vec<u64> = (0..256u64)
            .map(|i| if i < 8 { 1000 } else { 1 + i % 5 })
            .collect();
        let code = HuffmanCode::build(&freqs);
        let stream: Vec<u16> = (0..2000u32).map(|i| ((i * 37) % 256) as u16).collect();
        roundtrip(&code, &stream);
    }

    #[test]
    fn length_limit_is_respected_under_extreme_skew() {
        // Fibonacci-ish frequencies force deep optimal trees.
        let mut freqs = vec![0u64; 64];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let code = HuffmanCode::build(&freqs);
        for s in 0..64u16 {
            assert!(
                code.len_of(s) <= MAX_CODE_LEN,
                "symbol {s}: {}",
                code.len_of(s)
            );
        }
        roundtrip(&code, &(0..64u16).collect::<Vec<_>>());
    }

    #[test]
    fn single_symbol_alphabet_gets_one_bit() {
        let mut freqs = vec![0u64; 10];
        freqs[7] = 42;
        let code = HuffmanCode::build(&freqs);
        assert_eq!(code.len_of(7), 1);
        roundtrip(&code, &[7, 7, 7]);
    }

    #[test]
    fn decode_truncated_stream_errors() {
        let code = HuffmanCode::build(&[10, 1, 1, 1]);
        let mut r = BitReader::new(&[]);
        assert!(code.decode(&mut r).is_err());
    }

    #[test]
    fn encoded_bits_matches_actual_encoding() {
        let freqs = [50u64, 30, 20, 5];
        let code = HuffmanCode::build(&freqs);
        let mut w = BitWriter::new();
        for (s, &f) in freqs.iter().enumerate() {
            for _ in 0..f {
                code.encode(&mut w, s as u16);
            }
        }
        assert_eq!(w.bit_len(), code.encoded_bits(&freqs));
    }
}
