//! A Thumb/MIPS16-style 16-bit re-encoding estimator (paper §2.1).
//!
//! Thumb and MIPS16 shrink programs by re-encoding a *subset* of the ISA in
//! 16 bits: two-operand ALU forms over eight "low" registers, small
//! immediates, short branch ranges. Everything else needs a 32-bit form
//! (or an extra instruction). The paper quotes ~30% size reduction for
//! Thumb (at a 15–20% speed cost on ideal memory) and ~40% for MIPS16.
//!
//! This module is a **static estimator**: it classifies each SR32
//! instruction as 16-bit-encodable or not under MIPS16-like rules and
//! reports the resulting size and the instruction-count overhead (extra
//! `mov`s for three-operand forms, immediate splitting). It does not
//! execute 16-bit code — dense-fetch *performance* questions are CodePack's
//! territory and are covered by the main simulator.

use codepack_isa::{decode, Instruction, Reg};

/// Outcome of re-encoding one instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reencoding {
    /// Fits a 16-bit form directly.
    Half,
    /// Needs a 16-bit pair or a 32-bit form (same size as native).
    Full,
    /// Fits 16 bits only with one extra helper instruction (e.g. a `mov`
    /// to make a three-operand form two-operand): 2 × 16 bits.
    HalfWithFixup,
}

/// Static size/overhead estimate for a 16-bit re-encoding of a program.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ThumbEstimate {
    /// Instructions encodable in 16 bits directly.
    pub half_insns: u64,
    /// Instructions that needed a fixup instruction.
    pub fixup_insns: u64,
    /// Instructions kept at 32 bits.
    pub full_insns: u64,
    /// Words that failed to decode (counted at full size).
    pub undecodable: u64,
}

impl ThumbEstimate {
    /// Total bytes of the re-encoded text.
    pub fn reencoded_bytes(&self) -> u64 {
        self.half_insns * 2 + self.fixup_insns * 4 + (self.full_insns + self.undecodable) * 4
    }

    /// Original bytes.
    pub fn original_bytes(&self) -> u64 {
        (self.half_insns + self.fixup_insns + self.full_insns + self.undecodable) * 4
    }

    /// Size ratio (re-encoded / original); Thumb reports ~0.70.
    pub fn size_ratio(&self) -> f64 {
        if self.original_bytes() == 0 {
            1.0
        } else {
            self.reencoded_bytes() as f64 / self.original_bytes() as f64
        }
    }

    /// Fractional increase in static instruction count (the "executes more
    /// instructions" cost the paper attributes to 16-bit ISAs).
    pub fn insn_overhead(&self) -> f64 {
        let base = self.half_insns + self.fixup_insns + self.full_insns + self.undecodable;
        if base == 0 {
            0.0
        } else {
            self.fixup_insns as f64 / base as f64
        }
    }
}

/// Is `r` one of the eight "low" registers a 16-bit format can name?
///
/// MIPS16 uses `$2–$7, $16, $17`; a compiler retargeting to the 16-bit ISA
/// allocates into those. Our programs were "compiled" for full SR32, so we
/// map the low set onto the eight registers the generator actually
/// favours. Even so, the estimate is a *lower bound* on what a true
/// 16-bit-targeting compiler would achieve.
fn low(r: Reg) -> bool {
    matches!(r.index(), 3..=6 | 8..=11)
}

/// Classifies one instruction under MIPS16-like encodability rules.
pub fn reencode(insn: &Instruction) -> Reencoding {
    use Instruction::*;
    use Reencoding::*;
    match *insn {
        // Two-operand ALU over low registers fits; three-operand needs a mov.
        Addu { rd, rs, rt }
        | Subu { rd, rs, rt }
        | And { rd, rs, rt }
        | Or { rd, rs, rt }
        | Xor { rd, rs, rt }
        | Slt { rd, rs, rt }
        | Sltu { rd, rs, rt }
        | Nor { rd, rs, rt } => {
            if !(low(rd) && low(rs) && low(rt)) {
                Full
            } else if rd == rs || rd == rt {
                Half
            } else {
                HalfWithFixup
            }
        }
        Sll { rd, rt, shamt } | Srl { rd, rt, shamt } | Sra { rd, rt, shamt } => {
            if low(rd) && low(rt) && shamt < 8 && rd == rt {
                Half
            } else if low(rd) && low(rt) && shamt < 8 {
                HalfWithFixup
            } else {
                Full
            }
        }
        Sllv { rd, rt, rs } | Srlv { rd, rt, rs } | Srav { rd, rt, rs } => {
            if low(rd) && low(rt) && low(rs) && rd == rt {
                Half
            } else {
                Full
            }
        }
        Addiu { rt, rs, imm } => {
            // MIPS16 ADDIU8: rd == rs, 8-bit immediate. SP-relative forms
            // also exist.
            if rt == rs && (low(rt) || rt == Reg::SP) && (-128..128).contains(&imm) {
                Half
            } else if low(rt) && low(rs) && (-128..128).contains(&imm) {
                HalfWithFixup
            } else {
                Full
            }
        }
        Slti { rt, rs, imm } | Sltiu { rt, rs, imm } => {
            if low(rt) && low(rs) && (0..256).contains(&imm) {
                Half
            } else {
                Full
            }
        }
        Andi { rt, rs, imm } | Ori { rt, rs, imm } | Xori { rt, rs, imm } => {
            if low(rt) && low(rs) && rt == rs && imm < 256 {
                Half
            } else {
                Full
            }
        }
        Lui { .. } => Full,
        Lw { rt, base, offset } | Sw { rt, base, offset } => {
            // 5-bit scaled word offsets, low or SP base.
            let scaled = (0..128).contains(&offset) && offset % 4 == 0;
            if low(rt) && (low(base) || base == Reg::SP) && scaled {
                Half
            } else {
                Full
            }
        }
        Lb { rt, base, offset } | Lbu { rt, base, offset } | Sb { rt, base, offset } => {
            if low(rt) && low(base) && (0..32).contains(&offset) {
                Half
            } else {
                Full
            }
        }
        Lh { rt, base, offset } | Lhu { rt, base, offset } | Sh { rt, base, offset } => {
            if low(rt) && low(base) && (0..64).contains(&offset) && offset % 2 == 0 {
                Half
            } else {
                Full
            }
        }
        Beq { rs, rt, offset } | Bne { rs, rt, offset } => {
            // MIPS16 compares against an implicit register; a two-register
            // compare-and-branch needs a fixup (cmp + short branch).
            if rt == Reg::ZERO && low(rs) && (-128..128).contains(&offset) {
                Half
            } else if low(rs) && low(rt) && (-128..128).contains(&offset) {
                HalfWithFixup
            } else {
                Full
            }
        }
        Blez { rs, offset } | Bgtz { rs, offset } | Bltz { rs, offset } | Bgez { rs, offset } => {
            if low(rs) && (-128..128).contains(&offset) {
                Half
            } else {
                Full
            }
        }
        Jr { .. } => Half,
        Jalr { .. } => Half,
        J { .. } | Jal { .. } => Full, // 26-bit targets keep the long form
        Mfhi { rd } | Mflo { rd } => {
            if low(rd) {
                Half
            } else {
                Full
            }
        }
        Mult { rs, rt } | Multu { rs, rt } | Div { rs, rt } | Divu { rs, rt } => {
            if low(rs) && low(rt) {
                Half
            } else {
                Full
            }
        }
        // No FP or system forms in the 16-bit subset.
        _ => Full,
    }
}

/// Estimates a 16-bit re-encoding of a whole text section.
///
/// ```
/// use codepack_baselines::estimate_thumb;
/// use codepack_isa::{encode, Instruction, Reg};
/// // `addu $v1, $v1, $a0` is 16-bit encodable.
/// let text = vec![encode(Instruction::Addu { rd: Reg::V1, rs: Reg::V1, rt: Reg::A0 }); 10];
/// let e = estimate_thumb(&text);
/// assert_eq!(e.size_ratio(), 0.5);
/// ```
pub fn estimate_thumb(text: &[u32]) -> ThumbEstimate {
    let mut est = ThumbEstimate::default();
    for &w in text {
        match decode(w) {
            Ok(insn) => match reencode(&insn) {
                Reencoding::Half => est.half_insns += 1,
                Reencoding::HalfWithFixup => est.fixup_insns += 1,
                Reencoding::Full => est.full_insns += 1,
            },
            Err(_) => est.undecodable += 1,
        }
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use codepack_isa::encode;

    #[test]
    fn two_operand_low_reg_alu_is_half() {
        let i = Instruction::Addu {
            rd: Reg::V1,
            rs: Reg::V1,
            rt: Reg::A1,
        };
        assert_eq!(reencode(&i), Reencoding::Half);
    }

    #[test]
    fn three_operand_needs_fixup() {
        let i = Instruction::Addu {
            rd: Reg::V1,
            rs: Reg::A0,
            rt: Reg::A1,
        };
        assert_eq!(reencode(&i), Reencoding::HalfWithFixup);
    }

    #[test]
    fn high_registers_stay_full() {
        let i = Instruction::Addu {
            rd: Reg::S0,
            rs: Reg::S0,
            rt: Reg::S1,
        };
        assert_eq!(reencode(&i), Reencoding::Full);
    }

    #[test]
    fn large_immediates_stay_full() {
        let i = Instruction::Addiu {
            rt: Reg::V1,
            rs: Reg::V1,
            imm: 5000,
        };
        assert_eq!(reencode(&i), Reencoding::Full);
        let i = Instruction::Lui {
            rt: Reg::V1,
            imm: 1,
        };
        assert_eq!(reencode(&i), Reencoding::Full);
    }

    #[test]
    fn fp_stays_full() {
        use codepack_isa::FReg;
        let i = Instruction::AddS {
            fd: FReg::F0,
            fs: FReg::F0,
            ft: FReg::F12,
        };
        assert_eq!(reencode(&i), Reencoding::Full);
    }

    #[test]
    fn estimate_accounts_fixups_at_full_size() {
        let text = vec![
            encode(Instruction::Addu {
                rd: Reg::V1,
                rs: Reg::A0,
                rt: Reg::A1,
            }), // fixup: 4B
            encode(Instruction::Jr { rs: Reg::RA }), // half: 2B
        ];
        let e = estimate_thumb(&text);
        assert_eq!(e.reencoded_bytes(), 6);
        assert!((e.size_ratio() - 0.75).abs() < 1e-12);
        assert!((e.insn_overhead() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn undecodable_words_count_full() {
        let e = estimate_thumb(&[0xffff_ffff]);
        assert_eq!(e.undecodable, 1);
        assert_eq!(e.size_ratio(), 1.0);
    }
}
