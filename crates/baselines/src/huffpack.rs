//! HuffPack — the paper's closing hypothesis, made concrete: "The
//! performance benefit provided by the optimized decompressor suggests that
//! even smaller compressed representations with higher decompression
//! penalties could be used."
//!
//! HuffPack keeps CodePack's structure (16-bit half-word symbols, two
//! program-specific dictionaries, 16-instruction blocks, group index table,
//! raw-block fallback) but replaces the fixed 2–11-bit tag/index codewords
//! with **canonical Huffman codes** over the dictionary ranks plus an
//! escape symbol. Codewords shrink to match the actual value distribution;
//! the price is bit-serial decode — we model **one half-word per cycle**
//! (half CodePack's baseline rate, an eighth of its optimized rate).

use codepack_core::{
    BitReader, BitWriter, DecompressError, Dictionary, FetchEngine, FetchStats, IndexCacheModel,
    MissService, MissSource, BLOCK_INSNS,
};
use codepack_mem::{FullyAssociativeCache, MemoryTiming};
use std::fmt;
use std::sync::Arc;

use crate::HuffmanCode;

/// Dictionary capacity per half (larger than CodePack's 457/460 — Huffman
/// lengths adapt, so deep entries stay cheap).
pub const HUFFPACK_DICT_CAPACITY: u16 = 2048;

/// Size accounting for a HuffPack image.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HuffPackStats {
    /// Original text bytes.
    pub original_bytes: u64,
    /// Dictionary + code-length tables (3 bytes per entry: value + length).
    pub table_bytes: u64,
    /// Index-table bytes.
    pub index_table_bytes: u64,
    /// Compressed stream bytes.
    pub stream_bytes: u64,
    /// Whole blocks stored raw.
    pub raw_blocks: u64,
    /// Escaped half-words.
    pub escaped_halfwords: u64,
}

impl HuffPackStats {
    /// Total compressed size.
    pub fn total_bytes(&self) -> u64 {
        self.table_bytes + self.index_table_bytes + self.stream_bytes
    }

    /// Compression ratio (compressed / original).
    pub fn compression_ratio(&self) -> f64 {
        if self.original_bytes == 0 {
            1.0
        } else {
            self.total_bytes() as f64 / self.original_bytes as f64
        }
    }
}

struct HalfCodec {
    dict: Dictionary,
    code: HuffmanCode,
    escape: u16, // symbol index of the escape
}

impl HalfCodec {
    fn build(halves: impl Iterator<Item = u16> + Clone, pin_zero: bool) -> HalfCodec {
        let dict = Dictionary::build(halves.clone(), HUFFPACK_DICT_CAPACITY, 2, pin_zero);
        // Symbol alphabet: one per dictionary rank + the escape.
        let mut freqs = vec![0u64; usize::from(dict.len()) + 1];
        let escape = dict.len();
        for h in halves {
            match dict.rank_of(h) {
                Some(rank) => freqs[usize::from(rank)] += 1,
                None => freqs[usize::from(escape)] += 1,
            }
        }
        // The escape must always be encodable (a later stream may need it).
        if freqs[usize::from(escape)] == 0 {
            freqs[usize::from(escape)] = 1;
        }
        HalfCodec {
            dict,
            code: HuffmanCode::build(&freqs),
            escape,
        }
    }

    fn encode(&self, w: &mut BitWriter, value: u16, stats: &mut HuffPackStats) {
        match self.dict.rank_of(value) {
            Some(rank) => self.code.encode(w, rank),
            None => {
                self.code.encode(w, self.escape);
                w.write(u32::from(value), 16);
                stats.escaped_halfwords += 1;
            }
        }
    }

    fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, DecompressError> {
        let sym = self.code.decode(r)?;
        if sym == self.escape {
            Ok(r.read(16)? as u16)
        } else {
            self.dict.value(sym).ok_or(DecompressError::BadDictIndex {
                high: false,
                rank: sym,
                dict_len: self.dict.len(),
            })
        }
    }

    fn table_bytes(&self) -> u64 {
        // value (2B) + code length (1B) per dictionary entry, + escape length.
        u64::from(self.dict.len()) * 3 + 1
    }
}

/// Per-block metadata (mirrors `codepack_core::BlockInfo`).
#[derive(Clone, Debug)]
pub struct HuffBlockInfo {
    /// Byte offset in the stream.
    pub byte_offset: u32,
    /// Byte length including padding.
    pub byte_len: u16,
    /// Cumulative decode bits per instruction.
    pub cum_bits: [u16; BLOCK_INSNS as usize + 1],
}

/// A HuffPack-compressed text section.
///
/// ```
/// use codepack_baselines::HuffPackImage;
/// let text: Vec<u32> = (0..256).map(|i| 0x2402_0000 | (i % 9)).collect();
/// let img = HuffPackImage::compress(&text);
/// assert_eq!(img.decompress_all().unwrap(), text);
/// ```
pub struct HuffPackImage {
    high: HalfCodec,
    low: HalfCodec,
    bytes: Vec<u8>,
    blocks: Vec<HuffBlockInfo>,
    n_insns: u32,
    stats: HuffPackStats,
}

impl HuffPackImage {
    /// Compresses `text` with Huffman-coded half-word symbols.
    ///
    /// # Panics
    ///
    /// Panics if `text` is empty.
    pub fn compress(text: &[u32]) -> HuffPackImage {
        assert!(!text.is_empty(), "cannot compress an empty text section");
        let n_insns = text.len() as u32;
        let padded_len = text.len().div_ceil(32) * 32;
        let mut padded = text.to_vec();
        padded.resize(padded_len, 0);

        let highs = padded.iter().map(|&w| (w >> 16) as u16);
        let lows = padded.iter().map(|&w| w as u16);
        let high = HalfCodec::build(highs, false);
        let low = HalfCodec::build(lows, true);

        let mut stats = HuffPackStats {
            original_bytes: u64::from(n_insns) * 4,
            table_bytes: high.table_bytes() + low.table_bytes(),
            ..HuffPackStats::default()
        };

        let mut bytes = Vec::new();
        let mut blocks = Vec::new();
        for chunk in padded.chunks_exact(BLOCK_INSNS as usize) {
            let byte_offset = bytes.len() as u32;
            let mut w = BitWriter::new();
            let mut cum = [0u16; BLOCK_INSNS as usize + 1];
            w.write(0, 1);
            let mut scratch = HuffPackStats::default();
            for (j, &word) in chunk.iter().enumerate() {
                high.encode(&mut w, (word >> 16) as u16, &mut scratch);
                low.encode(&mut w, word as u16, &mut scratch);
                cum[j + 1] = w.bit_len() as u16;
            }
            let (block_bytes, cum) = if w.bit_len() > u64::from(BLOCK_INSNS) * 32 {
                stats.raw_blocks += 1;
                let mut w = BitWriter::new();
                let mut cum = [0u16; BLOCK_INSNS as usize + 1];
                w.write(1, 1);
                for (j, &word) in chunk.iter().enumerate() {
                    w.write(word, 32);
                    cum[j + 1] = w.bit_len() as u16;
                }
                (w.into_bytes(), cum)
            } else {
                stats.escaped_halfwords += scratch.escaped_halfwords;
                (w.into_bytes(), cum)
            };
            let byte_len = u16::try_from(block_bytes.len()).expect("block fits u16");
            bytes.extend_from_slice(&block_bytes);
            blocks.push(HuffBlockInfo {
                byte_offset,
                byte_len,
                cum_bits: cum,
            });
        }

        stats.stream_bytes = bytes.len() as u64;
        stats.index_table_bytes = (blocks.len() as u64 / 2) * 4;

        HuffPackImage {
            high,
            low,
            bytes,
            blocks,
            n_insns,
            stats,
        }
    }

    /// Size accounting.
    pub fn stats(&self) -> &HuffPackStats {
        &self.stats
    }

    /// Number of compression blocks.
    pub fn num_blocks(&self) -> u32 {
        self.blocks.len() as u32
    }

    /// Block metadata.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn block_info(&self, block: u32) -> &HuffBlockInfo {
        &self.blocks[block as usize]
    }

    /// Decompresses one block.
    ///
    /// # Errors
    ///
    /// Returns a [`DecompressError`] on out-of-range blocks or corrupt data.
    pub fn decompress_block(&self, block: u32) -> Result<[u32; 16], DecompressError> {
        let info = self
            .blocks
            .get(block as usize)
            .ok_or(DecompressError::BadBlock {
                block,
                blocks: self.num_blocks(),
            })?;
        let mut r = BitReader::new(&self.bytes[info.byte_offset as usize..]);
        let raw = r.read(1)? == 1;
        let mut out = [0u32; 16];
        for slot in &mut out {
            if raw {
                *slot = r.read(32)?;
            } else {
                let h = self.high.decode(&mut r)?;
                let l = self.low.decode(&mut r)?;
                *slot = (u32::from(h) << 16) | u32::from(l);
            }
        }
        Ok(out)
    }

    /// Decompresses the whole image.
    ///
    /// # Errors
    ///
    /// Returns a [`DecompressError`] on corrupt data.
    pub fn decompress_all(&self) -> Result<Vec<u32>, DecompressError> {
        let mut out = Vec::with_capacity(self.blocks.len() * 16);
        for b in 0..self.num_blocks() {
            out.extend_from_slice(&self.decompress_block(b)?);
        }
        out.truncate(self.n_insns as usize);
        Ok(out)
    }
}

impl fmt::Debug for HuffPackImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HuffPackImage")
            .field("blocks", &self.blocks.len())
            .field("stats", &self.stats)
            .finish()
    }
}

/// Configuration of the HuffPack miss-service model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HuffPackConfig {
    /// Index-cache model (same structure as CodePack's).
    pub index_cache: IndexCacheModel,
    /// Half-words decoded per cycle (bit-serial Huffman: 1).
    pub halfwords_per_cycle: u32,
    /// Request/response overhead per serviced miss.
    pub request_overhead: u32,
}

impl Default for HuffPackConfig {
    fn default() -> HuffPackConfig {
        HuffPackConfig {
            index_cache: IndexCacheModel::Cached {
                lines: 64,
                entries_per_line: 4,
            },
            halfwords_per_cycle: 1,
            request_overhead: 2,
        }
    }
}

/// HuffPack's miss-service engine: identical structure to the CodePack
/// decompressor (index cache, burst overlap, output buffer) but with the
/// slower bit-serial decode.
pub struct HuffPackFetch {
    image: Arc<HuffPackImage>,
    timing: MemoryTiming,
    config: HuffPackConfig,
    text_base: u32,
    index_cache: Option<FullyAssociativeCache>,
    buffer_block: Option<u32>,
    stats: FetchStats,
}

impl HuffPackFetch {
    /// Creates a HuffPack fetch path.
    pub fn new(
        image: Arc<HuffPackImage>,
        timing: MemoryTiming,
        config: HuffPackConfig,
        text_base: u32,
    ) -> HuffPackFetch {
        let index_cache = match config.index_cache {
            IndexCacheModel::Cached {
                lines,
                entries_per_line,
            } => Some(FullyAssociativeCache::new(lines, entries_per_line)),
            _ => None,
        };
        HuffPackFetch {
            image,
            timing,
            config,
            text_base,
            index_cache,
            buffer_block: None,
            stats: FetchStats::default(),
        }
    }
}

impl FetchEngine for HuffPackFetch {
    fn service_miss(&mut self, critical_addr: u32, line_bytes: u32) -> MissService {
        assert!(line_bytes <= BLOCK_INSNS * 4);
        self.stats.misses += 1;
        let insn = (critical_addr - self.text_base) / 4;
        let block = insn / BLOCK_INSNS;
        let within = (insn % BLOCK_INSNS) as usize;
        let insns_per_line = (line_bytes / 4) as usize;
        let line_start = (within / insns_per_line) * insns_per_line;

        if self.buffer_block == Some(block) {
            self.stats.buffer_hits += 1;
            self.stats.total_critical_cycles += 1;
            return MissService {
                critical_ready: 1,
                line_fill_complete: 1,
                source: MissSource::OutputBuffer,
                index_hit: None,
                index_cycles: 0,
                machine_check: false,
            };
        }

        let group = insn / 32;
        let t_index = match self.config.index_cache {
            IndexCacheModel::Perfect => 0,
            IndexCacheModel::None => {
                self.stats.index_misses += 1;
                self.stats.memory_beats += u64::from(self.timing.beats_for(4));
                self.timing.burst_read_cycles(4)
            }
            IndexCacheModel::Cached { .. } => {
                let cache = self.index_cache.as_mut().expect("built in new()");
                if cache.access(group) {
                    self.stats.index_hits += 1;
                    0
                } else {
                    self.stats.index_misses += 1;
                    self.stats.memory_beats += u64::from(self.timing.beats_for(4));
                    self.timing.burst_read_cycles(4)
                }
            }
        };

        let info = self.image.block_info(block);
        self.stats.memory_beats += u64::from(self.timing.beats_for(u32::from(info.byte_len)));
        let t_start = t_index + u64::from(self.config.request_overhead);
        let bus = self.timing.bus_bytes();
        let first = u64::from(self.timing.first_access_cycles());
        let rate = u64::from(self.timing.next_access_cycles());
        // Two half-word symbols per instruction, decoded serially.
        let cycles_per_insn = (2 / self.config.halfwords_per_cycle.max(1)).max(1) as u64;

        let mut ready = [0u64; BLOCK_INSNS as usize];
        for j in 0..BLOCK_INSNS as usize {
            let bytes_needed = u32::from(info.cum_bits[j + 1]).div_ceil(8);
            let beat = bytes_needed.div_ceil(bus).max(1) - 1;
            let arrival = t_start + first + u64::from(beat) * rate;
            let serial = if j > 0 {
                ready[j - 1] + cycles_per_insn
            } else {
                0
            };
            ready[j] = (arrival + cycles_per_insn).max(serial);
        }

        let critical_ready = ready[within];
        let line_fill_complete = ready[line_start + insns_per_line - 1];
        self.buffer_block = Some(block);
        self.stats.total_critical_cycles += critical_ready;
        MissService {
            critical_ready,
            line_fill_complete,
            source: MissSource::Decompressor,
            index_hit: Some(t_index == 0),
            index_cycles: t_index,
            machine_check: false,
        }
    }

    fn stats(&self) -> FetchStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "huffpack"
    }
}

impl fmt::Debug for HuffPackFetch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HuffPackFetch")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codepack_core::{CodePackImage, CompressionConfig};

    fn text() -> Vec<u32> {
        (0..2048u32)
            .map(|i| match i % 13 {
                12 => i.wrapping_mul(0x9e37_79b9),
                k => 0x2442_0000 | (k << 4) | (i % 3),
            })
            .collect()
    }

    #[test]
    fn roundtrip() {
        let t = text();
        let img = HuffPackImage::compress(&t);
        assert_eq!(img.decompress_all().unwrap(), t);
    }

    #[test]
    fn compresses_tighter_than_codepack() {
        // The whole point: adaptive codeword lengths beat fixed tag classes.
        let t = text();
        let hp = HuffPackImage::compress(&t);
        let cp = CodePackImage::compress(&t, &CompressionConfig::default());
        assert!(
            hp.stats().compression_ratio() < cp.stats().compression_ratio(),
            "huffpack {:.3} vs codepack {:.3}",
            hp.stats().compression_ratio(),
            cp.stats().compression_ratio()
        );
    }

    #[test]
    fn decode_is_slower_per_miss_than_codepack() {
        let t = text();
        let hp = Arc::new(HuffPackImage::compress(&t));
        let cp = Arc::new(CodePackImage::compress(&t, &CompressionConfig::default()));
        let timing = MemoryTiming::default();
        let mut hp_fetch = HuffPackFetch::new(hp, timing, HuffPackConfig::default(), 0);
        let mut cp_fetch = codepack_core::CodePackFetch::new(
            cp,
            timing,
            codepack_core::DecompressorConfig::optimized(),
            0,
        );
        // Miss late in a block: the serial-decode gap is maximal.
        let hp_svc = hp_fetch.service_miss(15 * 4, 32);
        let cp_svc = cp_fetch.service_miss(15 * 4, 32);
        assert!(
            hp_svc.critical_ready > cp_svc.critical_ready,
            "huffpack {} vs codepack {}",
            hp_svc.critical_ready,
            cp_svc.critical_ready
        );
    }

    #[test]
    fn raw_fallback_bounds_expansion() {
        let t: Vec<u32> = (0..128u32)
            .map(|i| i.wrapping_mul(0x9e37_79b9).rotate_left(11))
            .collect();
        let img = HuffPackImage::compress(&t);
        assert_eq!(img.decompress_all().unwrap(), t);
        assert!(img.stats().compression_ratio() < 1.25);
    }

    #[test]
    fn buffer_prefetch_works() {
        let t = text();
        let img = Arc::new(HuffPackImage::compress(&t));
        let mut f = HuffPackFetch::new(img, MemoryTiming::default(), HuffPackConfig::default(), 0);
        f.service_miss(0, 32);
        let second = f.service_miss(32, 32);
        assert_eq!(second.source, MissSource::OutputBuffer);
    }
}
