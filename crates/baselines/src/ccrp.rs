//! CCRP — the Compressed Code RISC Processor (Wolfe & Chanin 1992,
//! Kozuch & Wolfe 1994), the prior-art scheme the paper compares CodePack
//! against (§2.2).
//!
//! Differences from CodePack, as the paper describes them:
//!
//! * compression granularity is one **cache line** (not a 16-instruction
//!   block), with each line's bytes Huffman-coded — so each instruction
//!   costs **4 symbol decodes** instead of CodePack's 2 half-word lookups;
//! * a **Line Address Table (LAT)** maps missed line addresses to
//!   compressed addresses (CodePack's index table plays the same role);
//! * there is no output-buffer prefetch: exactly the missed line is
//!   decompressed.
//!
//! The paper reports an overall 73% compression ratio for MIPS programs —
//! notably worse than CodePack's ~60% — and a serial, history-based decode.

use codepack_core::{
    BitReader, BitWriter, DecompressError, FetchEngine, FetchStats, IndexCacheModel, MissService,
    MissSource,
};
use codepack_mem::{FullyAssociativeCache, MemoryTiming};
use std::fmt;
use std::sync::Arc;

/// Lines mapped by one LAT entry (a 4-byte base plus three 1-byte relative
/// offsets, padded to 8 bytes).
pub const LINES_PER_LAT_ENTRY: u32 = 4;
/// Bytes per LAT entry.
pub const LAT_ENTRY_BYTES: u32 = 8;

/// Size accounting for a CCRP image.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CcrpStats {
    /// Original text bytes.
    pub original_bytes: u64,
    /// Huffman code table (one length byte per alphabet symbol).
    pub table_bytes: u64,
    /// Line address table bytes.
    pub lat_bytes: u64,
    /// Compressed line stream bytes (flag bits, codewords, padding).
    pub stream_bytes: u64,
    /// Lines stored raw because compression would expand them.
    pub raw_lines: u64,
    /// Total lines.
    pub lines: u64,
}

impl CcrpStats {
    /// Total compressed size.
    pub fn total_bytes(&self) -> u64 {
        self.table_bytes + self.lat_bytes + self.stream_bytes
    }

    /// Compression ratio (compressed / original; the paper reports 73% for
    /// CCRP on MIPS).
    pub fn compression_ratio(&self) -> f64 {
        if self.original_bytes == 0 {
            1.0
        } else {
            self.total_bytes() as f64 / self.original_bytes as f64
        }
    }
}

impl fmt::Display for CcrpStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ccrp ratio {:.1}% ({} bytes: table {}, lat {}, stream {}; {} of {} lines raw)",
            self.compression_ratio() * 100.0,
            self.total_bytes(),
            self.table_bytes,
            self.lat_bytes,
            self.stream_bytes,
            self.raw_lines,
            self.lines,
        )
    }
}

/// Placement/timing metadata of one compressed line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LineInfo {
    /// Byte offset in the compressed stream.
    pub byte_offset: u32,
    /// Byte length (including the mode flag and pad).
    pub byte_len: u16,
    /// `cum_bits[j]` = bits needed before instruction `j` finishes decoding.
    pub cum_bits: Vec<u16>,
}

/// A CCRP-compressed text section.
///
/// ```
/// use codepack_baselines::CcrpImage;
/// let text: Vec<u32> = (0..512).map(|i| 0x2402_0000 | (i % 5)).collect();
/// let img = CcrpImage::compress(&text, 32);
/// assert_eq!(img.decompress_all().unwrap(), text);
/// // The 256-byte code table amortizes over the program.
/// assert!(img.stats().compression_ratio() < 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct CcrpImage {
    code: crate::HuffmanCode,
    bytes: Vec<u8>,
    lines: Vec<LineInfo>,
    line_bytes: u32,
    n_insns: u32,
    stats: CcrpStats,
}

impl CcrpImage {
    /// Compresses `text` at `line_bytes` granularity (the I-cache line
    /// size; the paper's machines use 32 bytes).
    ///
    /// # Panics
    ///
    /// Panics if `text` is empty or `line_bytes` is not a positive multiple
    /// of 4.
    pub fn compress(text: &[u32], line_bytes: u32) -> CcrpImage {
        assert!(!text.is_empty(), "cannot compress an empty text section");
        assert!(
            line_bytes >= 4 && line_bytes.is_multiple_of(4),
            "line size must be whole instructions"
        );
        let insns_per_line = (line_bytes / 4) as usize;
        let n_insns = text.len() as u32;
        let padded_len = text.len().div_ceil(insns_per_line) * insns_per_line;
        let mut padded = text.to_vec();
        padded.resize(padded_len, 0);

        // Byte-frequency Huffman code over the whole program.
        let mut freqs = vec![0u64; 256];
        for &w in &padded {
            for b in w.to_le_bytes() {
                freqs[usize::from(b)] += 1;
            }
        }
        let code = crate::HuffmanCode::build(&freqs);

        let mut bytes = Vec::new();
        let mut lines = Vec::with_capacity(padded_len / insns_per_line);
        let mut stats = CcrpStats {
            original_bytes: u64::from(n_insns) * 4,
            table_bytes: u64::from(code.table_bytes()),
            ..CcrpStats::default()
        };

        for chunk in padded.chunks_exact(insns_per_line) {
            let byte_offset = bytes.len() as u32;
            let mut w = BitWriter::new();
            let mut cum = vec![0u16; insns_per_line + 1];
            w.write(0, 1); // compressed-line flag
            for (j, &word) in chunk.iter().enumerate() {
                for b in word.to_le_bytes() {
                    code.encode(&mut w, u16::from(b));
                }
                cum[j + 1] = w.bit_len() as u16;
            }
            let expands = w.bit_len() > u64::from(line_bytes) * 8;
            let (line_bytes_vec, cum) = if expands {
                stats.raw_lines += 1;
                let mut w = BitWriter::new();
                let mut cum = vec![0u16; insns_per_line + 1];
                w.write(1, 1);
                for (j, &word) in chunk.iter().enumerate() {
                    w.write(word, 32);
                    cum[j + 1] = w.bit_len() as u16;
                }
                (w.into_bytes(), cum)
            } else {
                (w.into_bytes(), cum)
            };
            stats.lines += 1;
            let byte_len = u16::try_from(line_bytes_vec.len()).expect("line fits u16");
            bytes.extend_from_slice(&line_bytes_vec);
            lines.push(LineInfo {
                byte_offset,
                byte_len,
                cum_bits: cum,
            });
        }

        stats.stream_bytes = bytes.len() as u64;
        stats.lat_bytes = u64::from((lines.len() as u32).div_ceil(LINES_PER_LAT_ENTRY))
            * u64::from(LAT_ENTRY_BYTES);

        CcrpImage {
            code,
            bytes,
            lines,
            line_bytes,
            n_insns,
            stats,
        }
    }

    /// Size accounting.
    pub fn stats(&self) -> &CcrpStats {
        &self.stats
    }

    /// Number of compressed lines.
    pub fn num_lines(&self) -> u32 {
        self.lines.len() as u32
    }

    /// Cache-line size this image was compressed for.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Metadata of line `line`.
    ///
    /// # Panics
    ///
    /// Panics if `line >= num_lines()`.
    pub fn line_info(&self, line: u32) -> &LineInfo {
        &self.lines[line as usize]
    }

    /// Decompresses one line.
    ///
    /// # Errors
    ///
    /// Returns a [`DecompressError`] on out-of-range lines or corrupt data.
    pub fn decompress_line(&self, line: u32) -> Result<Vec<u32>, DecompressError> {
        let info = self
            .lines
            .get(line as usize)
            .ok_or(DecompressError::BadBlock {
                block: line,
                blocks: self.num_lines(),
            })?;
        let mut r = BitReader::new(&self.bytes[info.byte_offset as usize..]);
        let insns = (self.line_bytes / 4) as usize;
        let mut out = Vec::with_capacity(insns);
        let raw = r.read(1)? == 1;
        for _ in 0..insns {
            if raw {
                out.push(r.read(32)?);
            } else {
                let mut word_bytes = [0u8; 4];
                for b in &mut word_bytes {
                    *b = self.code.decode(&mut r)? as u8;
                }
                out.push(u32::from_le_bytes(word_bytes));
            }
        }
        Ok(out)
    }

    /// Decompresses the whole image back to the original text.
    ///
    /// # Errors
    ///
    /// Returns a [`DecompressError`] on corrupt data.
    pub fn decompress_all(&self) -> Result<Vec<u32>, DecompressError> {
        let mut out = Vec::with_capacity(self.lines.len() * (self.line_bytes / 4) as usize);
        for l in 0..self.num_lines() {
            out.extend_from_slice(&self.decompress_line(l)?);
        }
        out.truncate(self.n_insns as usize);
        Ok(out)
    }
}

/// Configuration of the CCRP miss-service model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CcrpConfig {
    /// LAT access model (the LAT lives in main memory; caching entries is
    /// the analogue of CodePack's index cache).
    pub lat_cache: IndexCacheModel,
    /// Huffman symbols (bytes) decoded per cycle. One byte/cycle means an
    /// instruction every 4 cycles — the serial-decode cost the paper calls
    /// out for CCRP.
    pub symbols_per_cycle: u32,
    /// Request/response overhead per decompressor-serviced miss.
    pub request_overhead: u32,
}

impl Default for CcrpConfig {
    fn default() -> CcrpConfig {
        CcrpConfig {
            lat_cache: IndexCacheModel::Cached {
                lines: 1,
                entries_per_line: 1,
            },
            symbols_per_cycle: 1,
            request_overhead: 2,
        }
    }
}

/// The CCRP miss-service engine: LAT lookup, burst read of the compressed
/// line, serial Huffman decode. No prefetch buffer — CCRP decompresses
/// exactly the missed line.
pub struct CcrpFetch {
    image: Arc<CcrpImage>,
    timing: MemoryTiming,
    config: CcrpConfig,
    text_base: u32,
    lat_cache: Option<FullyAssociativeCache>,
    stats: FetchStats,
}

impl CcrpFetch {
    /// Creates a CCRP fetch path for a compressed image whose native text
    /// starts at `text_base`.
    pub fn new(
        image: Arc<CcrpImage>,
        timing: MemoryTiming,
        config: CcrpConfig,
        text_base: u32,
    ) -> CcrpFetch {
        let lat_cache = match config.lat_cache {
            IndexCacheModel::Cached {
                lines,
                entries_per_line,
            } => Some(FullyAssociativeCache::new(lines, entries_per_line)),
            _ => None,
        };
        CcrpFetch {
            image,
            timing,
            config,
            text_base,
            lat_cache,
            stats: FetchStats::default(),
        }
    }
}

impl FetchEngine for CcrpFetch {
    fn service_miss(&mut self, critical_addr: u32, line_bytes: u32) -> MissService {
        assert_eq!(
            line_bytes,
            self.image.line_bytes(),
            "CCRP images are compressed at the cache's line granularity"
        );
        debug_assert!(critical_addr >= self.text_base);
        self.stats.misses += 1;

        let insn = (critical_addr - self.text_base) / 4;
        let line = insn / (line_bytes / 4);
        let within = (insn % (line_bytes / 4)) as usize;

        // LAT lookup (one entry maps LINES_PER_LAT_ENTRY lines).
        let lat_key = line / LINES_PER_LAT_ENTRY;
        let t_lat = match self.config.lat_cache {
            IndexCacheModel::Perfect => {
                self.stats.index_hits += 1;
                0
            }
            IndexCacheModel::None => {
                self.stats.index_misses += 1;
                self.stats.memory_beats += u64::from(self.timing.beats_for(LAT_ENTRY_BYTES));
                self.timing.burst_read_cycles(LAT_ENTRY_BYTES)
            }
            IndexCacheModel::Cached { .. } => {
                let cache = self.lat_cache.as_mut().expect("built in new()");
                if cache.access(lat_key) {
                    self.stats.index_hits += 1;
                    0
                } else {
                    self.stats.index_misses += 1;
                    self.stats.memory_beats += u64::from(self.timing.beats_for(LAT_ENTRY_BYTES));
                    self.timing.burst_read_cycles(LAT_ENTRY_BYTES)
                }
            }
        };

        // Burst the compressed line; decode serially, overlapped.
        let info = self.image.line_info(line);
        self.stats.memory_beats += u64::from(self.timing.beats_for(u32::from(info.byte_len)));
        let t_start = t_lat + u64::from(self.config.request_overhead);
        let bus = self.timing.bus_bytes();
        let first = u64::from(self.timing.first_access_cycles());
        let rate = u64::from(self.timing.next_access_cycles());
        // One instruction takes 4 symbol decodes.
        let cycles_per_insn = (4 / self.config.symbols_per_cycle.max(1)).max(1) as u64;

        let insns = (line_bytes / 4) as usize;
        let mut ready = vec![0u64; insns];
        for j in 0..insns {
            let bytes_needed = u32::from(info.cum_bits[j + 1]).div_ceil(8);
            let beat = bytes_needed.div_ceil(bus).max(1) - 1;
            let arrival = t_start + first + u64::from(beat) * rate;
            let serial = if j > 0 {
                ready[j - 1] + cycles_per_insn
            } else {
                0
            };
            ready[j] = (arrival + cycles_per_insn).max(serial);
        }

        let critical_ready = ready[within];
        let line_fill_complete = ready[insns - 1];
        self.stats.total_critical_cycles += critical_ready;

        MissService {
            critical_ready,
            line_fill_complete,
            source: MissSource::Decompressor,
            index_hit: Some(t_lat == 0),
            index_cycles: t_lat,
            machine_check: false,
        }
    }

    fn stats(&self) -> FetchStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "ccrp"
    }
}

impl fmt::Debug for CcrpFetch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CcrpFetch")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_text(n: usize) -> Vec<u32> {
        (0..n)
            .map(|i| match i % 8 {
                7 => (i as u32).wrapping_mul(2654435761),
                k => 0x2402_0000 | k as u32,
            })
            .collect()
    }

    #[test]
    fn roundtrip() {
        let text = skewed_text(200);
        let img = CcrpImage::compress(&text, 32);
        assert_eq!(img.decompress_all().unwrap(), text);
    }

    #[test]
    fn ratio_worse_than_codepack_on_same_text() {
        // The paper: CCRP 73% vs CodePack ~60% — byte symbols capture less
        // structure than half-word dictionaries.
        let text = skewed_text(4096);
        let ccrp = CcrpImage::compress(&text, 32);
        let cp = codepack_core::CodePackImage::compress(
            &text,
            &codepack_core::CompressionConfig::default(),
        );
        assert!(
            ccrp.stats().compression_ratio() > cp.stats().compression_ratio(),
            "ccrp {:.3} vs codepack {:.3}",
            ccrp.stats().compression_ratio(),
            cp.stats().compression_ratio()
        );
    }

    #[test]
    fn incompressible_lines_fall_back_to_raw() {
        // A perfectly flat byte distribution: every codeword is 8 bits, so
        // the 1-bit line flag makes every compressed line expand.
        let bytes: Vec<u8> = (0..1024u32).map(|i| i as u8).collect();
        let text: Vec<u32> = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        let img = CcrpImage::compress(&text, 32);
        assert_eq!(
            img.stats().raw_lines,
            img.stats().lines,
            "every line must fall back"
        );
        assert_eq!(img.decompress_all().unwrap(), text);
    }

    #[test]
    fn per_line_decode_matches() {
        let text = skewed_text(64);
        let img = CcrpImage::compress(&text, 32);
        for l in 0..img.num_lines() {
            let words = img.decompress_line(l).unwrap();
            for (j, &w) in words.iter().enumerate() {
                assert_eq!(w, text[l as usize * 8 + j]);
            }
        }
    }

    #[test]
    fn fetch_decodes_four_cycles_per_instruction() {
        let text = skewed_text(64);
        let img = Arc::new(CcrpImage::compress(&text, 32));
        let cfg = CcrpConfig {
            lat_cache: IndexCacheModel::Perfect,
            request_overhead: 0,
            ..CcrpConfig::default()
        };
        let mut f = CcrpFetch::new(Arc::clone(&img), MemoryTiming::default(), cfg, 0);
        let early = f.service_miss(0, 32);
        let late = f.service_miss(32 + 28, 32); // last insn of line 1
                                                // Serial decode: the last instruction of a line is at least
                                                // 7 * 4 cycles behind the first.
        assert!(late.critical_ready >= early.critical_ready + 7 * 4);
        assert_eq!(late.critical_ready, late.line_fill_complete);
    }

    #[test]
    fn lat_misses_cost_memory_accesses() {
        let text = skewed_text(256);
        let img = Arc::new(CcrpImage::compress(&text, 32));
        let mut f = CcrpFetch::new(img, MemoryTiming::default(), CcrpConfig::default(), 0);
        let cold = f.service_miss(0, 32); // LAT miss
        let warm = f.service_miss(32, 32); // same LAT entry
        assert_eq!(cold.index_hit, Some(false));
        assert_eq!(warm.index_hit, Some(true));
        assert!(cold.critical_ready > warm.critical_ready);
    }

    #[test]
    fn bad_line_is_an_error() {
        let img = CcrpImage::compress(&[1, 2, 3], 32);
        assert!(matches!(
            img.decompress_line(9),
            Err(DecompressError::BadBlock { block: 9, .. })
        ));
    }
}
