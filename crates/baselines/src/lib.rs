//! # codepack-baselines — the schemes CodePack is measured against
//!
//! The paper's background section (§2) situates CodePack among earlier
//! code-compression approaches; this crate implements them so the
//! comparisons can be regenerated, plus the "future work" idea from its
//! conclusion:
//!
//! * [`CcrpImage`] / [`CcrpFetch`] — CCRP (Wolfe & Chanin): Huffman-coded
//!   cache lines with a Line Address Table (§2.2; ~73% ratio on MIPS,
//!   4 symbol decodes per instruction),
//! * [`InsnDictImage`] — whole-instruction dictionary compression in the
//!   spirit of Lefurgy et al. 1997 (§2.3; CodePack-like ratio, but a
//!   dictionary of thousands of entries),
//! * [`estimate_thumb`] — a Thumb/MIPS16-style 16-bit re-encoding size
//!   estimator (§2.1; ~30-40% smaller, more instructions executed),
//! * [`SoftwareDecompFetch`] — software-managed decompression of CodePack
//!   images (conclusion: "may be an attractive option to resource limited
//!   computers"),
//! * [`HuffPackImage`] / [`HuffPackFetch`] — the conclusion's other
//!   hypothesis: a denser Huffman-coded variant of CodePack with slower,
//!   bit-serial decode,
//! * [`HuffmanCode`] — the length-limited canonical Huffman substrate.
//!
//! ```
//! use codepack_baselines::{CcrpImage, InsnDictImage, estimate_thumb};
//! let text: Vec<u32> = (0..256).map(|i| 0x2402_0000 | (i % 7)).collect();
//! let ccrp = CcrpImage::compress(&text, 32);
//! let dict = InsnDictImage::compress(&text);
//! let thumb = estimate_thumb(&text);
//! assert_eq!(ccrp.decompress_all().unwrap(), text);
//! assert_eq!(dict.decompress_all().unwrap(), text);
//! assert!(thumb.size_ratio() <= 1.0);
//! ```

#![forbid(unsafe_code)]

mod ccrp;
mod huffman;
mod huffpack;
mod insn_dict;
mod software;
mod thumb;

pub use ccrp::{
    CcrpConfig, CcrpFetch, CcrpImage, CcrpStats, LineInfo, LAT_ENTRY_BYTES, LINES_PER_LAT_ENTRY,
};
pub use huffman::{HuffmanCode, MAX_CODE_LEN};
pub use huffpack::{
    HuffBlockInfo, HuffPackConfig, HuffPackFetch, HuffPackImage, HuffPackStats,
    HUFFPACK_DICT_CAPACITY,
};
pub use insn_dict::{InsnDictImage, InsnDictStats, MAX_DICT_ENTRIES};
pub use software::{SoftwareDecompConfig, SoftwareDecompFetch};
pub use thumb::{estimate_thumb, reencode, Reencoding, ThumbEstimate};
