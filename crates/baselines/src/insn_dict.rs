//! Whole-instruction dictionary compression, in the spirit of
//! Lefurgy et al. 1997 (paper §2.3): complete 32-bit instructions are the
//! compression symbols, indexed by short tagged codewords. The paper notes
//! this "achieves compression ratios similar to CodePack, but requires a
//! dictionary with several thousand entries which could increase access
//! time and hinder high-speed implementations" — this module lets you
//! measure that trade-off.
//!
//! Codewords are byte-aligned (fast to parse, as Lefurgy's tag-prefixed
//! scheme intends):
//!
//! ```text
//! 0xxxxxxx                      1 byte : dictionary ranks 0..128
//! 10xxxxxx xxxxxxxx             2 bytes: ranks 128..16512
//! 11000000 b0 b1 b2 b3          5 bytes: raw (escaped) instruction
//! ```

use codepack_core::DecompressError;
use std::collections::HashMap;
use std::fmt;

/// Maximum dictionary entries addressable by the two codeword forms.
pub const MAX_DICT_ENTRIES: u32 = 128 + (1 << 14);

const ESCAPE: u8 = 0b1100_0000;

/// Size accounting for an instruction-dictionary image.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InsnDictStats {
    /// Original text bytes.
    pub original_bytes: u64,
    /// Dictionary bytes (4 per entry).
    pub dictionary_bytes: u64,
    /// Compressed stream bytes.
    pub stream_bytes: u64,
    /// Index-table bytes (one 32-bit entry per 16-instruction block).
    pub index_table_bytes: u64,
    /// Instructions that needed the 5-byte escape.
    pub escaped_insns: u64,
    /// Dictionary entries in use.
    pub dict_entries: u64,
}

impl InsnDictStats {
    /// Total compressed size.
    pub fn total_bytes(&self) -> u64 {
        self.dictionary_bytes + self.stream_bytes + self.index_table_bytes
    }

    /// Compression ratio (compressed / original).
    pub fn compression_ratio(&self) -> f64 {
        if self.original_bytes == 0 {
            1.0
        } else {
            self.total_bytes() as f64 / self.original_bytes as f64
        }
    }
}

impl fmt::Display for InsnDictStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "insn-dict ratio {:.1}% ({} entries, {} escaped insns)",
            self.compression_ratio() * 100.0,
            self.dict_entries,
            self.escaped_insns
        )
    }
}

/// A text section compressed with a whole-instruction dictionary.
///
/// ```
/// use codepack_baselines::InsnDictImage;
/// let text: Vec<u32> = (0..100).map(|i| 0x2402_0000 | (i % 3)).collect();
/// let img = InsnDictImage::compress(&text);
/// assert_eq!(img.decompress_all().unwrap(), text);
/// // Three distinct instructions: everything fits 1-byte codewords.
/// assert!(img.stats().compression_ratio() < 0.5);
/// ```
#[derive(Clone, Debug)]
pub struct InsnDictImage {
    dict: Vec<u32>,
    stream: Vec<u8>,
    /// Byte offset of each 16-instruction block (random access like
    /// CodePack's index table).
    block_offsets: Vec<u32>,
    n_insns: u32,
    stats: InsnDictStats,
}

impl InsnDictImage {
    /// Compresses `text`: instructions are ranked by frequency; the most
    /// frequent 128 get 1-byte codewords, the next 16384 get 2 bytes, and
    /// the rest are escaped.
    ///
    /// # Panics
    ///
    /// Panics if `text` is empty.
    pub fn compress(text: &[u32]) -> InsnDictImage {
        assert!(!text.is_empty(), "cannot compress an empty text section");

        let mut counts: HashMap<u32, u32> = HashMap::new();
        for &w in text {
            *counts.entry(w).or_insert(0) += 1;
        }
        // Worth a slot only if the codeword + dictionary entry beats raw.
        let mut ranked: Vec<(u32, u32)> = counts.into_iter().filter(|&(_, c)| c >= 2).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(MAX_DICT_ENTRIES as usize);
        let dict: Vec<u32> = ranked.iter().map(|&(w, _)| w).collect();
        let index: HashMap<u32, u32> = dict
            .iter()
            .enumerate()
            .map(|(i, &w)| (w, i as u32))
            .collect();

        let mut stream = Vec::new();
        let mut block_offsets = Vec::new();
        let mut escaped = 0u64;
        for (i, &word) in text.iter().enumerate() {
            if i % 16 == 0 {
                block_offsets.push(stream.len() as u32);
            }
            match index.get(&word) {
                Some(&rank) if rank < 128 => stream.push(rank as u8),
                Some(&rank) => {
                    let v = rank - 128;
                    stream.push(0b1000_0000 | (v >> 8) as u8);
                    stream.push(v as u8);
                }
                None => {
                    escaped += 1;
                    stream.push(ESCAPE);
                    stream.extend_from_slice(&word.to_le_bytes());
                }
            }
        }

        let stats = InsnDictStats {
            original_bytes: text.len() as u64 * 4,
            dictionary_bytes: dict.len() as u64 * 4,
            stream_bytes: stream.len() as u64,
            index_table_bytes: block_offsets.len() as u64 * 4,
            escaped_insns: escaped,
            dict_entries: dict.len() as u64,
        };
        InsnDictImage {
            dict,
            stream,
            block_offsets,
            n_insns: text.len() as u32,
            stats,
        }
    }

    /// Size accounting.
    pub fn stats(&self) -> &InsnDictStats {
        &self.stats
    }

    /// The ranked dictionary of whole instructions.
    pub fn dictionary(&self) -> &[u32] {
        &self.dict
    }

    /// Decompresses the whole stream.
    ///
    /// # Errors
    ///
    /// Returns a [`DecompressError`] on truncated streams or out-of-range
    /// dictionary ranks.
    pub fn decompress_all(&self) -> Result<Vec<u32>, DecompressError> {
        let mut out = Vec::with_capacity(self.n_insns as usize);
        let mut pos = 0usize;
        let at = |pos: usize| -> Result<u8, DecompressError> {
            self.stream
                .get(pos)
                .copied()
                .ok_or(DecompressError::Truncated {
                    at_bit: pos as u64 * 8,
                })
        };
        while out.len() < self.n_insns as usize {
            let b0 = at(pos)?;
            if b0 & 0x80 == 0 {
                let rank = u32::from(b0);
                let word =
                    self.dict
                        .get(rank as usize)
                        .copied()
                        .ok_or(DecompressError::BadDictIndex {
                            high: false,
                            rank: rank as u16,
                            dict_len: self.dict.len().min(usize::from(u16::MAX)) as u16,
                        })?;
                out.push(word);
                pos += 1;
            } else if b0 == ESCAPE {
                let word =
                    u32::from_le_bytes([at(pos + 1)?, at(pos + 2)?, at(pos + 3)?, at(pos + 4)?]);
                out.push(word);
                pos += 5;
            } else {
                let rank = 128 + ((u32::from(b0 & 0x3f)) << 8 | u32::from(at(pos + 1)?));
                let word =
                    self.dict
                        .get(rank as usize)
                        .copied()
                        .ok_or(DecompressError::BadDictIndex {
                            high: false,
                            rank: rank.min(u32::from(u16::MAX)) as u16,
                            dict_len: self.dict.len().min(usize::from(u16::MAX)) as u16,
                        })?;
                out.push(word);
                pos += 2;
            }
        }
        Ok(out)
    }

    /// Byte offsets of each 16-instruction block (the random-access table).
    pub fn block_offsets(&self) -> &[u32] {
        &self.block_offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_stream() {
        let text: Vec<u32> = (0..500)
            .map(|i| match i % 10 {
                9 => (i as u32).wrapping_mul(0x9e37_79b9), // escape
                k => 0xac62_0000 | k as u32,               // dictionary
            })
            .collect();
        let img = InsnDictImage::compress(&text);
        assert_eq!(img.decompress_all().unwrap(), text);
        assert!(img.stats().escaped_insns > 0);
    }

    #[test]
    fn hot_instructions_get_one_byte() {
        let mut text = vec![0x0000_0000u32; 100];
        text.extend((0..200u32).map(|i| 0x2402_0000 | (i % 150)));
        text.extend([0x0000_0000; 100]);
        let img = InsnDictImage::compress(&text);
        // NOP is by far the most frequent: rank 0, 1 byte each.
        assert_eq!(img.dictionary()[0], 0);
    }

    #[test]
    fn two_byte_ranks_roundtrip() {
        // >128 distinct instructions, each repeated: forces 2-byte codewords.
        let mut text = Vec::new();
        for i in 0..400u32 {
            text.push(0x3c00_0000 | i);
            text.push(0x3c00_0000 | i);
        }
        let img = InsnDictImage::compress(&text);
        assert!(img.stats().dict_entries > 128);
        assert_eq!(img.stats().escaped_insns, 0);
        assert_eq!(img.decompress_all().unwrap(), text);
    }

    #[test]
    fn dictionary_grows_into_thousands_for_diverse_code() {
        // The trade-off the paper calls out: similar ratio to CodePack but a
        // much larger dictionary.
        let text: Vec<u32> = (0..20_000u32)
            .map(|i| 0x2000_0000 | (i % 3000) << 2)
            .collect();
        let img = InsnDictImage::compress(&text);
        assert!(
            img.stats().dict_entries >= 3000,
            "got {}",
            img.stats().dict_entries
        );
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let text = vec![0x1234_5678u32; 8]; // single dict entry
        let mut img = InsnDictImage::compress(&text);
        img.stream.truncate(3);
        assert!(matches!(
            img.decompress_all(),
            Err(DecompressError::Truncated { .. })
        ));
    }
}
