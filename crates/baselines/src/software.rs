//! Software-managed decompression — the paper's closing suggestion:
//! "Even completely software-managed decompression may be an attractive
//! option to resource limited computers."
//!
//! Model: an L1 I-miss traps to a handler running from a small always-
//! resident code region. The handler looks up the index table (a software
//! load), burst-reads the compressed block, decodes it in software at a
//! fixed cost per instruction, writes the native instructions to a
//! scratchpad, and resumes. There is no forwarding — the CPU restarts only
//! when the whole missed line is ready — but the scratchpad retains the
//! last decompressed block, giving the same prefetch effect as the
//! hardware output buffer at a small software cost.

use codepack_core::{CodePackImage, FetchEngine, FetchStats, MissService, MissSource, BLOCK_INSNS};
use codepack_mem::MemoryTiming;
use std::fmt;
use std::sync::Arc;

/// Cost parameters of the software decompression handler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SoftwareDecompConfig {
    /// Trap entry + exit: pipeline flush, save/restore, return.
    pub trap_cycles: u64,
    /// Software index-table lookup (hashing, load, address arithmetic).
    pub index_lookup_cycles: u64,
    /// Cycles to decode one instruction in software (bit extraction, two
    /// dictionary loads, merge, store). The paper's hardware does this in
    /// one cycle.
    pub cycles_per_insn: u64,
    /// Serving a line already in the scratchpad (trap + copy, no decode).
    pub scratchpad_hit_cycles: u64,
}

impl Default for SoftwareDecompConfig {
    fn default() -> SoftwareDecompConfig {
        SoftwareDecompConfig {
            trap_cycles: 20,
            index_lookup_cycles: 12,
            cycles_per_insn: 12,
            scratchpad_hit_cycles: 24,
        }
    }
}

/// A [`FetchEngine`] that services I-misses with a software handler over a
/// CodePack image.
pub struct SoftwareDecompFetch {
    image: Arc<CodePackImage>,
    timing: MemoryTiming,
    config: SoftwareDecompConfig,
    text_base: u32,
    scratch_block: Option<u32>,
    stats: FetchStats,
}

impl SoftwareDecompFetch {
    /// Creates a software decompression path over `image` for text based at
    /// `text_base`.
    pub fn new(
        image: Arc<CodePackImage>,
        timing: MemoryTiming,
        config: SoftwareDecompConfig,
        text_base: u32,
    ) -> SoftwareDecompFetch {
        SoftwareDecompFetch {
            image,
            timing,
            config,
            text_base,
            scratch_block: None,
            stats: FetchStats::default(),
        }
    }
}

impl FetchEngine for SoftwareDecompFetch {
    fn service_miss(&mut self, critical_addr: u32, line_bytes: u32) -> MissService {
        assert!(
            line_bytes <= BLOCK_INSNS * 4,
            "a line must fit within one block"
        );
        self.stats.misses += 1;

        let insn = (critical_addr - self.text_base) / 4;
        let block = self.image.block_of_insn(insn);

        if self.scratch_block == Some(block) {
            self.stats.buffer_hits += 1;
            self.stats.total_critical_cycles += self.config.scratchpad_hit_cycles;
            return MissService {
                critical_ready: self.config.scratchpad_hit_cycles,
                line_fill_complete: self.config.scratchpad_hit_cycles,
                source: MissSource::OutputBuffer,
                index_hit: None,
                index_cycles: 0,
                machine_check: false,
            };
        }

        // Software path: trap, index lookup (one memory access for the
        // entry itself), burst the block, decode every instruction.
        let info = self.image.block_info(block);
        self.stats.memory_beats += u64::from(self.timing.beats_for(4));
        self.stats.memory_beats += u64::from(self.timing.beats_for(u32::from(info.byte_len)));
        self.stats.index_misses += 1;

        let fetch = self.timing.burst_read_cycles(u32::from(info.byte_len));
        let total = self.config.trap_cycles
            + self.config.index_lookup_cycles
            + self.timing.burst_read_cycles(4)
            + fetch
            + self.config.cycles_per_insn * u64::from(BLOCK_INSNS);

        self.scratch_block = Some(block);
        self.stats.total_critical_cycles += total;
        MissService {
            critical_ready: total,
            line_fill_complete: total,
            source: MissSource::Decompressor,
            index_hit: Some(false),
            index_cycles: self.config.index_lookup_cycles + self.timing.burst_read_cycles(4),
            machine_check: false,
        }
    }

    fn stats(&self) -> FetchStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "software-codepack"
    }
}

impl fmt::Debug for SoftwareDecompFetch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SoftwareDecompFetch")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codepack_core::CompressionConfig;

    fn image() -> Arc<CodePackImage> {
        let text: Vec<u32> = (0..64).map(|i| 0x2402_0000 | (i % 9)).collect();
        Arc::new(CodePackImage::compress(
            &text,
            &CompressionConfig::default(),
        ))
    }

    #[test]
    fn software_miss_is_much_slower_than_hardware() {
        let img = image();
        let mut sw = SoftwareDecompFetch::new(
            Arc::clone(&img),
            MemoryTiming::default(),
            SoftwareDecompConfig::default(),
            0,
        );
        let mut hw = codepack_core::CodePackFetch::new(
            img,
            MemoryTiming::default(),
            codepack_core::DecompressorConfig::baseline(),
            0,
        );
        let s = sw.service_miss(0, 32);
        let h = hw.service_miss(0, 32);
        assert!(
            s.critical_ready > 3 * h.critical_ready,
            "software {} vs hardware {}",
            s.critical_ready,
            h.critical_ready
        );
    }

    #[test]
    fn scratchpad_serves_block_reuse() {
        let img = image();
        let mut sw = SoftwareDecompFetch::new(
            img,
            MemoryTiming::default(),
            SoftwareDecompConfig::default(),
            0,
        );
        sw.service_miss(0, 32);
        let second = sw.service_miss(32, 32); // other line, same block
        assert_eq!(second.source, MissSource::OutputBuffer);
        assert_eq!(
            second.critical_ready,
            SoftwareDecompConfig::default().scratchpad_hit_cycles
        );
    }

    #[test]
    fn no_forwarding_critical_equals_fill() {
        let img = image();
        let mut sw = SoftwareDecompFetch::new(
            img,
            MemoryTiming::default(),
            SoftwareDecompConfig::default(),
            0,
        );
        let s = sw.service_miss(16, 32);
        assert_eq!(s.critical_ready, s.line_fill_complete);
    }
}
