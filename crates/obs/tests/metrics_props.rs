//! Property tests for the histogram/percentile math, via the testkit
//! `forall!` harness: monotone percentiles, bucket-boundary correctness,
//! and merge associativity.

use codepack_obs::{bucket_bounds, bucket_index, Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};
use codepack_testkit::forall;
use codepack_testkit::prop::gen;

/// Samples spanning many buckets: small values, mid values, and values
/// spread over the full u64 range via a shift.
fn samples() -> codepack_testkit::prop::Gen<Vec<u64>> {
    let value = gen::ints(0u64..64)
        .zip(gen::ints(0u64..1 << 20))
        .map(|(shift, v)| v.wrapping_shl(shift as u32 / 2));
    gen::vec_of(value, 0..64)
}

fn build(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

#[test]
fn percentiles_are_monotone_in_p() {
    forall!(
        cases = 200,
        (samples(), gen::ints(0u64..=100), gen::ints(0u64..=100)),
        |values, p1, p2| {
            let h = build(&values);
            let (lo, hi) = (p1.min(p2), p1.max(p2));
            assert!(
                h.percentile(lo as f64) <= h.percentile(hi as f64),
                "p{lo} > p{hi} on {values:?}"
            );
        }
    );
}

#[test]
fn percentiles_stay_within_observed_range() {
    forall!(
        cases = 200,
        (samples(), gen::ints(0u64..=100)),
        |values, p| {
            let h = build(&values);
            let got = h.percentile(p as f64);
            if values.is_empty() {
                assert_eq!(got, 0);
            } else {
                let min = *values.iter().min().unwrap();
                let max = *values.iter().max().unwrap();
                assert!(
                    (min..=max).contains(&got),
                    "p{p} = {got} outside [{min}, {max}]"
                );
            }
        }
    );
}

#[test]
fn every_value_lands_in_its_bucket() {
    forall!(cases = 300, (gen::any_int::<u64>()), |v| {
        let i = bucket_index(v);
        assert!(i < HISTOGRAM_BUCKETS);
        let (lo, hi) = bucket_bounds(i);
        assert!(
            (lo..=hi).contains(&v),
            "value {v} outside bucket {i} = [{lo}, {hi}]"
        );
    });
}

#[test]
fn bucket_boundaries_are_adjacent_and_exhaustive() {
    // Deterministic sweep, not property-based: the structure is fixed.
    let mut expected_lo = 0u64;
    for i in 0..HISTOGRAM_BUCKETS {
        let (lo, hi) = bucket_bounds(i);
        assert_eq!(
            lo,
            expected_lo,
            "bucket {i} starts where {} ended",
            i.max(1) - 1
        );
        assert!(hi >= lo);
        if i + 1 < HISTOGRAM_BUCKETS {
            expected_lo = hi + 1;
        } else {
            assert_eq!(hi, u64::MAX, "last bucket reaches u64::MAX");
        }
    }
}

#[test]
fn merge_is_associative_and_matches_concatenation() {
    forall!(cases = 150, (samples(), samples(), samples()), |a, b, c| {
        // (A ∪ B) ∪ C == A ∪ (B ∪ C) == build(A ++ B ++ C)
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));

        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);

        let mut right_tail = hb.clone();
        right_tail.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_tail);

        let mut all: Vec<u64> = a.clone();
        all.extend(&b);
        all.extend(&c);
        let direct = build(&all);

        assert_eq!(left, right, "merge associativity");
        assert_eq!(left, direct, "merge equals concatenation");
    });
}

#[test]
fn merge_is_commutative() {
    forall!(cases = 150, (samples(), samples()), |a, b| {
        let (ha, hb) = (build(&a), build(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        assert_eq!(ab, ba);
    });
}

#[test]
fn registry_merge_preserves_counter_sums() {
    forall!(
        cases = 100,
        (
            gen::vec_of(gen::ints(0u64..100), 0..20),
            gen::vec_of(gen::ints(0u64..100), 0..20)
        ),
        |xs, ys| {
            let mut a = MetricsRegistry::new();
            for &x in &xs {
                a.incr("n", x);
                a.observe("h", x);
            }
            let mut b = MetricsRegistry::new();
            for &y in &ys {
                b.incr("n", y);
                b.observe("h", y);
            }
            let expect: u64 = xs.iter().sum::<u64>() + ys.iter().sum::<u64>();
            a.merge(&b);
            if expect > 0 || !xs.is_empty() || !ys.is_empty() {
                assert_eq!(a.counter_value("n").unwrap_or(0), expect);
            }
            let total = (xs.len() + ys.len()) as u64;
            assert_eq!(a.histogram("h").map_or(0, Histogram::count), total);
        }
    );
}

#[test]
fn histogram_count_and_sum_track_recordings() {
    forall!(cases = 200, (samples()), |values| {
        let h = build(&values);
        assert_eq!(h.count(), values.len() as u64);
        let expect: u64 = values.iter().fold(0u64, |acc, &v| acc.saturating_add(v));
        assert_eq!(h.sum(), expect);
        if !values.is_empty() {
            assert_eq!(h.min(), *values.iter().min().unwrap());
            assert_eq!(h.max(), *values.iter().max().unwrap());
        }
    });
}
