//! JSONL trace round-trip (emit → parse → same events) and Chrome trace
//! validity, property-tested over randomly generated event streams.

use codepack_obs::{
    chrome_trace_json, json, parse_jsonl, EventKind, JsonlSink, MissOrigin, TraceEvent, TraceSink,
};
use codepack_testkit::forall;
use codepack_testkit::prop::{gen, Gen};

/// A generator over the full event taxonomy.
fn events() -> Gen<Vec<TraceEvent>> {
    let kind = gen::one_of(vec![
        gen::ints(0u32..1 << 24).map(|pc| EventKind::IcacheMiss { pc }),
        gen::ints(0u32..4096)
            .zip(gen::bools())
            .zip(gen::ints(0u64..64))
            .map(|((group, hit), cycles)| EventKind::IndexLookup {
                group,
                hit,
                cycles: if hit { 0 } else { cycles },
            }),
        gen::ints(0u32..16)
            .zip(gen::ints(1u32..=8))
            .map(|(beat, bytes)| EventKind::BurstBeat { beat, bytes }),
        gen::ints(0u32..16).map(|insn| EventKind::DictInsn { insn }),
        gen::ints(0u32..16).map(|insn| EventKind::RawInsn { insn }),
        gen::ints(0u32..1 << 16).map(|block| EventKind::BufferHit { block }),
        gen::ints(0u32..1 << 24)
            .zip(gen::ints(0u64..3))
            .zip(gen::ints(1u64..64))
            .zip(gen::ints(0u64..16))
            .map(
                |(((pc, origin), critical), index_cycles)| EventKind::MissServed {
                    pc,
                    origin: match origin {
                        0 => MissOrigin::Memory,
                        1 => MissOrigin::Decompressor,
                        _ => MissOrigin::OutputBuffer,
                    },
                    critical,
                    fill: critical + 6,
                    index_cycles: index_cycles.min(critical),
                },
            ),
        gen::ints(0u32..1 << 24)
            .zip(gen::ints(1u64..64))
            .map(|(addr, cycles)| EventKind::DcacheMiss { addr, cycles }),
        gen::ints(0u32..1 << 24)
            .zip(gen::bools())
            .map(|(pc, indirect)| EventKind::BranchMispredict { pc, indirect }),
        gen::ints(1u64..16).map(|cycles| EventKind::PipelineFlush { cycles }),
    ]);
    let event = gen::ints(0u64..1 << 40)
        .zip(kind)
        .map(|(cycle, kind)| TraceEvent { cycle, kind });
    gen::vec_of(event, 0..48)
}

#[test]
fn jsonl_round_trip_preserves_events() {
    forall!(cases = 100, (events()), |stream| {
        let (mut sink, shared) = JsonlSink::to_vec();
        for ev in &stream {
            sink.record(*ev);
        }
        sink.flush().unwrap();
        assert_eq!(sink.recorded(), stream.len() as u64);
        let text = String::from_utf8(shared.lock().unwrap().clone()).unwrap();
        let back = parse_jsonl(&text).expect("every emitted line parses");
        assert_eq!(back, stream, "emit → parse is the identity");
    });
}

#[test]
fn every_jsonl_line_is_standalone_json() {
    forall!(cases = 60, (events()), |stream| {
        for ev in &stream {
            let line = ev.to_jsonl();
            let v = json::parse(&line).expect("line parses as JSON");
            assert_eq!(
                v.get("c").and_then(json::Value::as_u64),
                Some(ev.cycle),
                "cycle field survives"
            );
            assert_eq!(
                v.get("k").and_then(json::Value::as_str),
                Some(ev.kind_name()),
                "kind field survives"
            );
        }
    });
}

#[test]
fn chrome_export_is_always_valid_json_with_required_fields() {
    forall!(cases = 60, (events()), |stream| {
        let doc = chrome_trace_json(&stream);
        let v = json::parse(&doc).expect("chrome trace parses");
        let list = v
            .get("traceEvents")
            .and_then(json::Value::as_array)
            .expect("traceEvents array present");
        // 4 metadata records always lead the array.
        assert_eq!(list.len(), stream.len() + 4);
        for e in list {
            let ph = e.get("ph").and_then(json::Value::as_str).expect("ph");
            assert!(["X", "i", "M"].contains(&ph), "known phase {ph}");
            assert!(e.get("ts").and_then(json::Value::as_u64).is_some());
            if ph == "X" {
                let dur = e.get("dur").and_then(json::Value::as_u64).expect("dur");
                assert!(dur >= 1, "complete events have positive duration");
            }
            assert!(e.get("pid").is_some() && e.get("tid").is_some());
        }
    });
}
