//! Property tests for the block profiler, via the testkit `forall!`
//! harness: merge commutativity/associativity down to the JSON byte
//! level (the guarantee the matrix runner's worker-count determinism
//! rests on), merge-equals-concatenation, and loader round-trips.

use codepack_obs::{BlockProfile, MissRecord};
use codepack_testkit::forall;
use codepack_testkit::prop::gen;

/// One profiler event: a buffer hit, or a miss with drawn service shape.
#[derive(Clone, Debug)]
enum Event {
    Hit(u32),
    Miss(u32, MissRecord),
}

/// Event streams over a small block range so merges actually collide on
/// the same block ids instead of landing in disjoint keys.
fn events() -> codepack_testkit::prop::Gen<Vec<Event>> {
    let block = gen::ints(0u32..24);
    let miss = gen::ints(0u64..512)
        .zip(gen::ints(0u8..8))
        .zip(gen::ints(0u64..32))
        .map(|((cycles, flags), beats)| MissRecord {
            critical_cycles: cycles,
            index_hit: match flags & 0b11 {
                0 => None,
                1 => Some(false),
                _ => Some(true),
            },
            memory_beats: beats,
            decompressed: flags & 0b100 != 0,
            fast_decode: flags & 0b1 != 0,
            machine_check: false,
            faults_injected: u64::from(flags >> 2),
            faults_recovered: u64::from(flags >> 2),
        });
    let event = gen::bools().zip(block.zip(miss)).map(|(hit, (b, m))| {
        if hit {
            Event::Hit(b)
        } else {
            Event::Miss(b, m)
        }
    });
    gen::vec_of(event, 0..48)
}

fn build(events: &[Event], source: &str) -> BlockProfile {
    let mut p = BlockProfile::new();
    p.set_total_blocks(24);
    p.set_source(source);
    for e in events {
        match e {
            Event::Hit(b) => p.record_buffer_hit(*b),
            Event::Miss(b, m) => p.record_miss(*b, m),
        }
    }
    p
}

#[test]
fn merge_is_commutative_to_the_byte() {
    forall!(cases = 150, (events(), events()), |xs, ys| {
        let (a, b) = (build(&xs, "cell-a"), build(&ys, "cell-b"));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        // Byte-level equality is the property the worker-count
        // determinism gate relies on, so compare serialized forms.
        assert_eq!(ab.to_json(), ba.to_json());
    });
}

#[test]
fn merge_is_associative_to_the_byte() {
    forall!(cases = 150, (events(), events(), events()), |xs, ys, zs| {
        let (a, b, c) = (
            build(&xs, "cell-a"),
            build(&ys, "cell-b"),
            build(&zs, "cell-c"),
        );

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        let mut tail = b.clone();
        tail.merge(&c);
        let mut right = a.clone();
        right.merge(&tail);

        assert_eq!(left.to_json(), right.to_json());
    });
}

#[test]
fn merge_matches_replaying_concatenated_events() {
    forall!(cases = 150, (events(), events()), |xs, ys| {
        let mut merged = build(&xs, "cell");
        merged.merge(&build(&ys, "cell"));

        let mut all: Vec<Event> = xs.clone();
        all.extend(ys.iter().cloned());
        let direct = build(&all, "cell");

        assert_eq!(merged.to_json(), direct.to_json());
    });
}

#[test]
fn json_round_trip_is_byte_identical() {
    forall!(cases = 150, (events()), |xs| {
        let p = build(&xs, "cell-a+cell-b");
        let doc = p.to_json();
        let back = BlockProfile::from_json(&doc).expect("loader accepts own output");
        assert_eq!(back.to_json(), doc);
    });
}

#[test]
fn merge_totals_add_and_touched_blocks_union() {
    forall!(cases = 150, (events(), events()), |xs, ys| {
        let (a, b) = (build(&xs, "a"), build(&ys, "b"));
        let (ta, tb) = (a.totals(), b.totals());
        let mut m = a.clone();
        m.merge(&b);
        let tm = m.totals();
        assert_eq!(tm.fetches, ta.fetches + tb.fetches);
        assert_eq!(tm.buffer_hits, ta.buffer_hits + tb.buffer_hits);
        assert_eq!(tm.decode_fast, ta.decode_fast + tb.decode_fast);
        assert_eq!(tm.decode_scalar, ta.decode_scalar + tb.decode_scalar);
        assert!(m.blocks_touched() >= a.blocks_touched().max(b.blocks_touched()));
        assert!(m.blocks_touched() <= a.blocks_touched() + b.blocks_touched());
    });
}
