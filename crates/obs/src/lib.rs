//! Hermetic observability for the CodePack reproduction: a metrics
//! registry, typed event tracing on the simulated-cycle timeline, and a
//! cycle-attribution profiler that reproduces the paper's "where did the
//! slowdown come from" story as a first-class report.
//!
//! Zero dependencies, same policy as the rest of the workspace.
//!
//! # Layout
//!
//! * [`metrics`] — named counters, gauges, and log2-bucketed
//!   [`Histogram`]s with percentile summaries and exact merge.
//! * [`event`] — the typed [`TraceEvent`] taxonomy covering the miss
//!   path: icache miss, index lookup, burst beat, dictionary decode /
//!   raw escape, buffer hit, plus pipeline-side mispredicts and flushes.
//! * [`sink`] — where events go: [`NullSink`], [`RingSink`],
//!   [`JsonlSink`].
//! * [`handle`] — the [`Obs`] handle instrumented code carries; disabled
//!   it costs one predictable branch per site.
//! * [`attr`] — [`CycleAttribution`] folding events into a
//!   [`CpiBreakdown`] whose components sum exactly to measured CPI.
//! * [`chrome`] — Chrome trace-event export for `chrome://tracing`.
//! * [`json`] — a minimal JSON parser for validation and round-trips.
//! * [`writer`] — the emitting counterpart: a streaming [`JsonWriter`]
//!   used for structured documents (lint reports, metrics).
//! * [`names`] — well-known metric names shared across crates (the
//!   `matrix.*` fault-tolerance counters of the sweep runner).
//! * [`profile`] — the per-block access [`BlockProfile`] collector and
//!   its versioned JSON artifact, the input contract for profile-guided
//!   compression.
//!
//! # Example
//!
//! ```
//! use codepack_obs::{Obs, EventKind, MissOrigin, RingSink};
//!
//! let mut obs = Obs::with_sink(Box::new(RingSink::new(1024)));
//! obs.emit(3, EventKind::IcacheMiss { pc: 0x40_0000 });
//! obs.emit(3, EventKind::MissServed {
//!     pc: 0x40_0000,
//!     origin: MissOrigin::Decompressor,
//!     critical: 25,
//!     fill: 31,
//!     index_cycles: 12,
//! });
//! obs.observe("fetch.critical_cycles", 25);
//!
//! let report = obs.into_report(250, 100).unwrap();
//! assert!(report.breakdown.index_lookup > 0.0);
//! assert!((report.breakdown.component_sum() - report.breakdown.total).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod chrome;
pub mod event;
pub mod handle;
pub mod json;
pub mod metrics;
pub mod names;
pub mod profile;
pub mod sink;
pub mod writer;

pub use attr::{CpiBreakdown, CycleAttribution};
pub use chrome::chrome_trace_json;
pub use event::{EventKind, FaultArea, MissOrigin, TraceEvent};
pub use handle::{Obs, ObsCore, ObsReport};
pub use metrics::{bucket_bounds, bucket_index, Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};
pub use profile::{BlockProfile, BlockStats, MissRecord, PROFILE_SCHEMA, PROFILE_SCHEMA_VERSION};
pub use sink::{parse_jsonl, JsonlSink, NullSink, RingSink, TraceSink};
pub use writer::JsonWriter;
