//! A minimal JSON parser — just enough to validate and re-read the JSON
//! this workspace emits (metrics documents, JSONL traces, Chrome traces).
//! Hermetic-build policy forbids `serde`, so this stays hand-rolled.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64` (exact for the u64 ranges we emit
    /// in practice — cycle counts stay far below 2^53).
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with name-ordered keys.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Member `key` of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
}

/// Escapes `s` for inclusion in a JSON string literal (quotes not
/// included). Inverse of the decoding in [`parse`]: control characters
/// become `\u00XX`, quotes and backslashes are backslash-escaped, and
/// everything else passes through verbatim.
///
/// ```
/// use codepack_obs::json::escape;
/// assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
/// ```
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::String),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| {
            b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-'
        }) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            out.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5").unwrap().as_f64(), Some(-1.5));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("\"a\\nb\"").unwrap().as_str(), Some("a\nb"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse("{\"a\": [1, 2, {\"b\": true}], \"c\": \"x\"}").unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1 2", "{'a': 1}"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        for s in [
            "plain",
            "with \"quotes\" and \\backslashes\\",
            "newline\nand\ttab",
            "control \u{1} char",
            "unicode: ∞ λ",
        ] {
            let doc = format!("\"{}\"", escape(s));
            assert_eq!(parse(&doc).unwrap().as_str(), Some(s), "round-trip {s:?}");
        }
    }
}
