//! The [`Obs`] handle: the one type instrumented code touches.
//!
//! `Obs` is an `Option<Box<ObsCore>>` in disguise. Disabled (the default
//! for every existing caller), each instrumentation site is a single
//! `is_some()` test on a niche-optimized pointer — the compiler hoists
//! and folds these, so the hot loop pays one predictable branch, nothing
//! else. The `obs_overhead` bench in `crates/bench` holds this under 3%
//! on the 5-stage pipeline.
//!
//! Enabled, the handle owns a [`MetricsRegistry`], a boxed
//! [`TraceSink`], and a running [`CycleAttribution`]; events flow to all
//! three. At end of run [`Obs::into_report`] closes the books into an
//! [`ObsReport`].

use crate::attr::{CpiBreakdown, CycleAttribution};
use crate::event::{EventKind, TraceEvent};
use crate::metrics::MetricsRegistry;
use crate::profile::BlockProfile;
use crate::sink::{NullSink, TraceSink};

/// Everything an enabled observer carries.
pub struct ObsCore {
    /// Named counters/gauges/histograms.
    pub metrics: MetricsRegistry,
    /// Destination for the event stream.
    pub sink: Box<dyn TraceSink + Send>,
    /// Running CPI attribution folded from emitted events.
    pub attribution: CycleAttribution,
    /// Per-block access profile; `None` until armed, so the un-profiled
    /// observed path pays one extra branch per profiling site at most.
    pub profile: Option<BlockProfile>,
}

/// A cheap, possibly-disabled observability handle.
///
/// ```
/// use codepack_obs::{Obs, EventKind};
/// let mut off = Obs::disabled();
/// off.emit(1, EventKind::PipelineFlush { cycles: 2 }); // no-op
/// assert!(!off.enabled());
///
/// let mut on = Obs::with_null_sink();
/// on.emit(1, EventKind::PipelineFlush { cycles: 2 });
/// on.incr("flushes", 1);
/// let report = on.into_report(100, 50).unwrap();
/// assert_eq!(report.metrics.counter_value("flushes"), Some(1));
/// assert!(report.breakdown.branch > 0.0);
/// ```
#[derive(Default)]
pub struct Obs(Option<Box<ObsCore>>);

impl Obs {
    /// The disabled handle: every call is a cheap no-op.
    #[inline]
    pub fn disabled() -> Obs {
        Obs(None)
    }

    /// An enabled handle over the given sink.
    pub fn with_sink(sink: Box<dyn TraceSink + Send>) -> Obs {
        Obs(Some(Box::new(ObsCore {
            metrics: MetricsRegistry::new(),
            sink,
            attribution: CycleAttribution::default(),
            profile: None,
        })))
    }

    /// An enabled handle that discards events but keeps metrics and
    /// attribution — the `--metrics`-without-`--trace` configuration,
    /// and the subject of the overhead bench.
    pub fn with_null_sink() -> Obs {
        Obs::with_sink(Box::new(NullSink::new()))
    }

    /// Is instrumentation live?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Emits one event at `cycle`. Disabled: a single branch.
    #[inline]
    pub fn emit(&mut self, cycle: u64, kind: EventKind) {
        if let Some(core) = &mut self.0 {
            let event = TraceEvent { cycle, kind };
            core.attribution.absorb(&event);
            core.sink.record(event);
        }
    }

    /// Adds to a named counter. Disabled: a single branch.
    #[inline]
    pub fn incr(&mut self, name: &str, by: u64) {
        if let Some(core) = &mut self.0 {
            core.metrics.incr(name, by);
        }
    }

    /// Records a histogram sample. Disabled: a single branch.
    #[inline]
    pub fn observe(&mut self, name: &str, v: u64) {
        if let Some(core) = &mut self.0 {
            core.metrics.observe(name, v);
        }
    }

    /// Sets a gauge. Disabled: a single branch.
    #[inline]
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        if let Some(core) = &mut self.0 {
            core.metrics.set_gauge(name, v);
        }
    }

    /// Arms per-block access profiling on an enabled handle (no-op when
    /// disabled — profiling rides on the observability plumbing, it
    /// cannot outlive it).
    pub fn arm_profile(&mut self) {
        if let Some(core) = &mut self.0 {
            core.profile.get_or_insert_with(BlockProfile::new);
        }
    }

    /// The armed block profile, if any. Disabled or un-armed: `None`
    /// after at most two predictable branches, so profiling sites stay
    /// in the same cost class as every other instrumentation site.
    #[inline]
    pub fn profile_mut(&mut self) -> Option<&mut BlockProfile> {
        self.0.as_deref_mut().and_then(|c| c.profile.as_mut())
    }

    /// Read access to the armed block profile, if any.
    pub fn profile(&self) -> Option<&BlockProfile> {
        self.0.as_deref().and_then(|c| c.profile.as_ref())
    }

    /// Read access to the metrics, when enabled.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.0.as_deref().map(|c| &c.metrics)
    }

    /// The running attribution, when enabled.
    pub fn attribution(&self) -> Option<CycleAttribution> {
        self.0.as_deref().map(|c| c.attribution)
    }

    /// Takes the handle, leaving a disabled one behind — lets an owner
    /// hand the observer back at end of run.
    pub fn take(&mut self) -> Obs {
        Obs(self.0.take())
    }

    /// Closes the books: flushes the sink and folds the attribution into
    /// a [`CpiBreakdown`] against the measured totals. `None` if the
    /// handle was disabled.
    pub fn into_report(self, total_cycles: u64, retired_instructions: u64) -> Option<ObsReport> {
        let mut core = self.0?;
        let _ = core.sink.flush();
        let breakdown = core
            .attribution
            .into_breakdown(total_cycles, retired_instructions);
        Some(ObsReport {
            metrics: core.metrics,
            breakdown,
            events_recorded: core.sink.recorded(),
            profile: core.profile,
            sink: core.sink,
        })
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// End-of-run observability artifacts.
pub struct ObsReport {
    /// Final metrics registry.
    pub metrics: MetricsRegistry,
    /// CPI attribution closed against the measured totals.
    pub breakdown: CpiBreakdown,
    /// Total events recorded by the sink.
    pub events_recorded: u64,
    /// The block access profile, when one was armed. Exported as its own
    /// versioned artifact via [`BlockProfile::to_json`], never spliced
    /// into [`ObsReport::to_json`] — matrix cells compare that document
    /// byte-for-byte and its shape predates profiling.
    pub profile: Option<BlockProfile>,
    /// The sink, for in-memory sinks whose events the caller wants back.
    pub sink: Box<dyn TraceSink + Send>,
}

impl ObsReport {
    /// The report as one JSON document: metrics plus CPI breakdown.
    pub fn to_json(&self) -> String {
        let metrics = self.metrics.to_json();
        // Splice the breakdown into the metrics document's top level.
        let body = metrics
            .trim_end()
            .strip_suffix('}')
            .expect("registry JSON ends with }");
        format!(
            "{body},\n  \"events_recorded\": {},\n  \"cpi_breakdown\": {}\n}}\n",
            self.events_recorded,
            self.breakdown.to_json()
        )
    }
}

impl std::fmt::Debug for ObsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsReport")
            .field("breakdown", &self.breakdown)
            .field("events_recorded", &self.events_recorded)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MissOrigin;
    use crate::json;
    use crate::sink::RingSink;

    #[test]
    fn disabled_handle_ignores_everything() {
        let mut obs = Obs::disabled();
        obs.emit(1, EventKind::IcacheMiss { pc: 0 });
        obs.incr("x", 1);
        obs.observe("h", 1);
        obs.set_gauge("g", 1.0);
        assert!(obs.metrics().is_none());
        assert!(obs.attribution().is_none());
        assert!(obs.into_report(10, 10).is_none());
    }

    #[test]
    fn enabled_handle_accumulates_and_reports() {
        let mut obs = Obs::with_sink(Box::new(RingSink::new(16)));
        obs.emit(
            5,
            EventKind::MissServed {
                pc: 0,
                origin: MissOrigin::Memory,
                critical: 10,
                fill: 16,
                index_cycles: 0,
            },
        );
        obs.incr("misses", 1);
        obs.observe("critical", 10);
        let report = obs.into_report(100, 50).unwrap();
        assert_eq!(report.events_recorded, 1);
        assert_eq!(report.metrics.counter_value("misses"), Some(1));
        assert!((report.breakdown.icache_miss - 0.2).abs() < 1e-12);
        assert!((report.breakdown.component_sum() - 2.0).abs() < 1e-9);
        let doc = report.to_json();
        let v = json::parse(&doc).expect("report JSON parses");
        assert!(v.get("cpi_breakdown").is_some());
        assert_eq!(
            v.get("events_recorded").and_then(json::Value::as_u64),
            Some(1)
        );
    }

    #[test]
    fn take_leaves_disabled_handle() {
        let mut obs = Obs::with_null_sink();
        obs.incr("a", 1);
        let taken = obs.take();
        assert!(!obs.enabled());
        assert!(taken.enabled());
        assert_eq!(taken.metrics().unwrap().counter_value("a"), Some(1));
    }
}
