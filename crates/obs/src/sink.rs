//! Trace sinks: where emitted [`TraceEvent`]s go.
//!
//! Three implementations cover the use cases:
//!
//! * [`NullSink`] — discards everything; the disabled-instrumentation
//!   path, which must cost next to nothing.
//! * [`RingSink`] — keeps the last N events in memory; flight-recorder
//!   debugging without unbounded growth.
//! * [`JsonlSink`] — streams one JSON object per line to any writer;
//!   the `--trace out.jsonl` path.

use std::io::Write;

use crate::event::TraceEvent;

/// A destination for trace events.
pub trait TraceSink {
    /// Records one event.
    fn record(&mut self, event: TraceEvent);

    /// Flushes buffered output (no-op for in-memory sinks).
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }

    /// Events retained in memory, oldest first. Streaming sinks return
    /// an empty slice.
    fn events(&self) -> &[TraceEvent] {
        &[]
    }

    /// Total events recorded, including any no longer retained.
    fn recorded(&self) -> u64;
}

/// Discards every event.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink {
    recorded: u64,
}

impl NullSink {
    /// A new null sink.
    pub fn new() -> NullSink {
        NullSink::default()
    }
}

impl TraceSink for NullSink {
    #[inline]
    fn record(&mut self, _event: TraceEvent) {
        self.recorded += 1;
    }

    fn recorded(&self) -> u64 {
        self.recorded
    }
}

/// Keeps the most recent `capacity` events.
#[derive(Clone, Debug)]
pub struct RingSink {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Next write position once the buffer has wrapped.
    head: usize,
    recorded: u64,
    /// Linearized view rebuilt lazily by `events()`.
    linear: Vec<TraceEvent>,
}

impl RingSink {
    /// A ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> RingSink {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            recorded: 0,
            linear: Vec::new(),
        }
    }

    fn linearize(&mut self) {
        self.linear.clear();
        if self.buf.len() < self.capacity {
            self.linear.extend_from_slice(&self.buf);
        } else {
            self.linear.extend_from_slice(&self.buf[self.head..]);
            self.linear.extend_from_slice(&self.buf[..self.head]);
        }
    }

    /// Events currently retained, oldest first.
    pub fn snapshot(&mut self) -> &[TraceEvent] {
        self.linearize();
        &self.linear
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
        self.recorded += 1;
        self.linear.clear();
    }

    fn events(&self) -> &[TraceEvent] {
        // `record` invalidates `linear`; callers that mutated since the
        // last snapshot should prefer `snapshot()`. For the common
        // read-after-run case the cached view is correct.
        if self.linear.is_empty() && !self.buf.is_empty() {
            // Cheap fallback for the un-wrapped case.
            if self.buf.len() < self.capacity {
                return &self.buf;
            }
        }
        &self.linear
    }

    fn recorded(&self) -> u64 {
        self.recorded
    }
}

/// Streams events as JSONL to a writer.
pub struct JsonlSink {
    out: Box<dyn Write + Send>,
    recorded: u64,
}

impl JsonlSink {
    /// A sink writing one JSON object per line to `out`.
    pub fn new(out: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink { out, recorded: 0 }
    }

    /// A sink buffering into a `Vec<u8>` shared with the caller — handy
    /// for tests; use [`JsonlSink::new`] with a `BufWriter<File>` for
    /// real traces.
    pub fn to_vec() -> (JsonlSink, std::sync::Arc<std::sync::Mutex<Vec<u8>>>) {
        let shared = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let writer = SharedVecWriter {
            inner: std::sync::Arc::clone(&shared),
        };
        (JsonlSink::new(Box::new(writer)), shared)
    }
}

struct SharedVecWriter {
    inner: std::sync::Arc<std::sync::Mutex<Vec<u8>>>,
}

impl Write for SharedVecWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.inner.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, event: TraceEvent) {
        let _ = writeln!(self.out, "{}", event.to_jsonl());
        self.recorded += 1;
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }

    fn recorded(&self) -> u64 {
        self.recorded
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("recorded", &self.recorded)
            .finish()
    }
}

/// Parses a JSONL trace document back into events. Blank lines are
/// skipped; any malformed line is an error.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(TraceEvent::from_jsonl)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            kind: EventKind::PipelineFlush { cycles: cycle },
        }
    }

    #[test]
    fn null_sink_counts_but_keeps_nothing() {
        let mut s = NullSink::new();
        s.record(ev(1));
        s.record(ev(2));
        assert_eq!(s.recorded(), 2);
        assert!(s.events().is_empty());
    }

    #[test]
    fn ring_sink_keeps_last_n_in_order() {
        let mut s = RingSink::new(3);
        for c in 0..5 {
            s.record(ev(c));
        }
        assert_eq!(s.recorded(), 5);
        let cycles: Vec<u64> = s.snapshot().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn ring_sink_before_wrap_returns_all() {
        let mut s = RingSink::new(10);
        s.record(ev(1));
        s.record(ev(2));
        assert_eq!(s.snapshot().len(), 2);
        assert_eq!(s.events().len(), 2);
    }

    #[test]
    fn jsonl_sink_streams_parseable_lines() {
        let (mut sink, shared) = JsonlSink::to_vec();
        sink.record(ev(7));
        sink.record(TraceEvent {
            cycle: 9,
            kind: EventKind::IcacheMiss { pc: 64 },
        });
        sink.flush().unwrap();
        let text = String::from_utf8(shared.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        let events = parse_jsonl(&text).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].cycle, 7);
        assert_eq!(events[1].kind, EventKind::IcacheMiss { pc: 64 });
    }

    #[test]
    fn parse_jsonl_skips_blanks_rejects_garbage() {
        assert_eq!(parse_jsonl("\n\n").unwrap().len(), 0);
        assert!(parse_jsonl("{\"c\":1,\"k\":\"flush\",\"cycles\":2}\nbad").is_err());
    }
}
