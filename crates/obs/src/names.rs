//! Well-known metric names shared across the workspace.
//!
//! Producers (the experiment harness in `codepack-sim`, the pipeline
//! instrumentation) and consumers (dashboards, CI assertions, the
//! `cpack` CLI) agree on these strings so counters line up across
//! crates without either side depending on the other's internals.
//!
//! The `matrix.*` family describes the fault-tolerance behaviour of the
//! sweep runner: how many cells completed, how many degraded to an
//! error record instead of killing the sweep, and how much retry work
//! the run absorbed.
//!
//! The `fault.*` family is the soft-error ledger of one simulation:
//! injected bit flips and their fates (recovered, trapped, silent), plus
//! the re-fetch and machine-check work recovery cost. The counters
//! conserve — `fault.injected == fault.recovered + fault.trapped +
//! fault.silent` — so a run's reliability books close the same way its
//! CPI attribution does.
//!
//! The `profile.*` family summarizes an armed block profiler into the
//! metrics registry at end of run (the full per-block data lives in the
//! profile artifact itself, not the registry). The counters only appear
//! when a profile was armed, so un-profiled runs stay metric-identical.

/// Cells that completed functionally and produced a result.
pub const MATRIX_CELLS_OK: &str = "matrix.cells.ok";

/// Cells that trapped or panicked on every attempt and were recorded as
/// error cells instead of aborting the sweep.
pub const MATRIX_CELLS_TRAPPED: &str = "matrix.cells.trapped";

/// Cells whose simulation exceeded the per-cell cycle deadline.
pub const MATRIX_CELLS_TIMED_OUT: &str = "matrix.cells.timed_out";

/// Cells the run never executed (e.g. an injected skip).
pub const MATRIX_CELLS_SKIPPED: &str = "matrix.cells.skipped";

/// Cells restored from a journal instead of being re-executed.
pub const MATRIX_CELLS_RESUMED: &str = "matrix.cells.resumed";

/// Extra attempts spent on transiently-failing cells (attempts beyond
/// the first, summed over all cells).
pub const MATRIX_RETRIES: &str = "matrix.retries";

/// Soft-error fault events the fault model injected.
pub const FAULT_INJECTED: &str = "fault.injected";

/// Injected faults an armed integrity check (or the codec) caught.
pub const FAULT_DETECTED: &str = "fault.detected";

/// Detected faults cured by re-fetching the affected structure.
pub const FAULT_RECOVERED: &str = "fault.recovered";

/// Detected faults that exhausted the re-fetch budget and raised a
/// machine check.
pub const FAULT_TRAPPED: &str = "fault.trapped";

/// Injected faults no check caught — silent corruption escapes.
pub const FAULT_SILENT: &str = "fault.silent";

/// Re-fetch attempts the recovery state machine issued.
pub const FAULT_RETRIES: &str = "fault.retries";

/// Machine-check traps delivered to the pipeline.
pub const FAULT_MACHINE_CHECKS: &str = "fault.machine_checks";

/// Distinct compressed blocks the block profiler saw fetched.
pub const PROFILE_BLOCKS_TOUCHED: &str = "profile.blocks_touched";

/// Total fetch services the block profiler attributed.
pub const PROFILE_FETCHES: &str = "profile.fetches";

/// Profiled decompressor invocations through the fast table backend.
pub const PROFILE_DECODE_FAST: &str = "profile.decode.fast";

/// Profiled decompressor invocations through the scalar backend.
pub const PROFILE_DECODE_SCALAR: &str = "profile.decode.scalar";

/// Requests the `cpackd` service admitted into its queue. Per-endpoint
/// and per-status breakdowns appear as `svc.requests.<op>` and
/// `svc.responses.<status>` using `Op::name` / `Status::name` (defined
/// in `codepack-svc`); the constants here are the family's fixed
/// aggregate names.
pub const SVC_REQUESTS: &str = "svc.requests";

/// Requests shed with a typed `Overloaded` because the admission queue
/// was full. Shed requests never execute.
pub const SVC_SHED: &str = "svc.shed";

/// Requests answered `DeadlineExceeded` — expired while queued or
/// abandoned by the waiting connection after the deadline passed.
pub const SVC_DEADLINE_EXCEEDED: &str = "svc.deadline_exceeded";

/// Requests rejected with `ShuttingDown` during a graceful drain.
pub const SVC_SHUTTING_DOWN: &str = "svc.shutting_down";

/// Worker threads that died (chaos kill or panic) while serving.
pub const SVC_WORKER_DEATHS: &str = "svc.worker.deaths";

/// Worker threads respawned to replace dead ones.
pub const SVC_WORKER_RESPAWNS: &str = "svc.worker.respawns";

/// Malformed protocol frames rejected at the connection layer.
pub const SVC_PROTO_ERRORS: &str = "svc.proto_errors";

/// Compress-cache hits (response served from memory).
pub const SVC_CACHE_HITS: &str = "svc.cache.hits";

/// Compress-cache misses (response computed).
pub const SVC_CACHE_MISSES: &str = "svc.cache.misses";

/// Compress-cache entries evicted by the capacity bounds.
pub const SVC_CACHE_EVICTIONS: &str = "svc.cache.evictions";

/// Histogram of request service time (queue wait + execution), in
/// microseconds, over successfully executed requests.
pub const SVC_LATENCY_US: &str = "svc.latency_us";

#[cfg(test)]
mod tests {
    #[test]
    fn names_are_distinct_and_namespaced() {
        // (name, family prefix) — every name must live in its family and
        // no two names may collide across families.
        let all = [
            (super::MATRIX_CELLS_OK, "matrix."),
            (super::MATRIX_CELLS_TRAPPED, "matrix."),
            (super::MATRIX_CELLS_TIMED_OUT, "matrix."),
            (super::MATRIX_CELLS_SKIPPED, "matrix."),
            (super::MATRIX_CELLS_RESUMED, "matrix."),
            (super::MATRIX_RETRIES, "matrix."),
            (super::FAULT_INJECTED, "fault."),
            (super::FAULT_DETECTED, "fault."),
            (super::FAULT_RECOVERED, "fault."),
            (super::FAULT_TRAPPED, "fault."),
            (super::FAULT_SILENT, "fault."),
            (super::FAULT_RETRIES, "fault."),
            (super::FAULT_MACHINE_CHECKS, "fault."),
            (super::PROFILE_BLOCKS_TOUCHED, "profile."),
            (super::PROFILE_FETCHES, "profile."),
            (super::PROFILE_DECODE_FAST, "profile."),
            (super::PROFILE_DECODE_SCALAR, "profile."),
            (super::SVC_REQUESTS, "svc."),
            (super::SVC_SHED, "svc."),
            (super::SVC_DEADLINE_EXCEEDED, "svc."),
            (super::SVC_SHUTTING_DOWN, "svc."),
            (super::SVC_WORKER_DEATHS, "svc."),
            (super::SVC_WORKER_RESPAWNS, "svc."),
            (super::SVC_PROTO_ERRORS, "svc."),
            (super::SVC_CACHE_HITS, "svc."),
            (super::SVC_CACHE_MISSES, "svc."),
            (super::SVC_CACHE_EVICTIONS, "svc."),
            (super::SVC_LATENCY_US, "svc."),
        ];
        for (i, (a, family)) in all.iter().enumerate() {
            assert!(a.starts_with(family), "{a} belongs to {family}");
            for (b, _) in &all[i + 1..] {
                assert_ne!(a, b, "metric names collide");
            }
        }
    }
}
