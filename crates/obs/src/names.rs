//! Well-known metric names shared across the workspace.
//!
//! Producers (the experiment harness in `codepack-sim`, the pipeline
//! instrumentation) and consumers (dashboards, CI assertions, the
//! `cpack` CLI) agree on these strings so counters line up across
//! crates without either side depending on the other's internals.
//!
//! The `matrix.*` family describes the fault-tolerance behaviour of the
//! sweep runner: how many cells completed, how many degraded to an
//! error record instead of killing the sweep, and how much retry work
//! the run absorbed.

/// Cells that completed functionally and produced a result.
pub const MATRIX_CELLS_OK: &str = "matrix.cells.ok";

/// Cells that trapped or panicked on every attempt and were recorded as
/// error cells instead of aborting the sweep.
pub const MATRIX_CELLS_TRAPPED: &str = "matrix.cells.trapped";

/// Cells whose simulation exceeded the per-cell cycle deadline.
pub const MATRIX_CELLS_TIMED_OUT: &str = "matrix.cells.timed_out";

/// Cells the run never executed (e.g. an injected skip).
pub const MATRIX_CELLS_SKIPPED: &str = "matrix.cells.skipped";

/// Cells restored from a journal instead of being re-executed.
pub const MATRIX_CELLS_RESUMED: &str = "matrix.cells.resumed";

/// Extra attempts spent on transiently-failing cells (attempts beyond
/// the first, summed over all cells).
pub const MATRIX_RETRIES: &str = "matrix.retries";

#[cfg(test)]
mod tests {
    #[test]
    fn names_are_distinct_and_namespaced() {
        let all = [
            super::MATRIX_CELLS_OK,
            super::MATRIX_CELLS_TRAPPED,
            super::MATRIX_CELLS_TIMED_OUT,
            super::MATRIX_CELLS_SKIPPED,
            super::MATRIX_CELLS_RESUMED,
            super::MATRIX_RETRIES,
        ];
        for (i, a) in all.iter().enumerate() {
            assert!(a.starts_with("matrix."), "{a} is namespaced");
            for b in &all[i + 1..] {
                assert_ne!(a, b, "metric names collide");
            }
        }
    }
}
