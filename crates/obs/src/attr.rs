//! Cycle attribution: folding the event stream into a CPI breakdown.
//!
//! The paper's argument is a "where did the slowdown come from" story —
//! Tables 5–12 split execution between useful work, native miss service,
//! and the decompressor's extra latency. [`CycleAttribution`] reproduces
//! that split from the trace: each event charges its stall cycles to one
//! of five categories, and whatever the events cannot explain is the
//! compute residual, so the components always sum exactly to the
//! measured total.

use crate::event::{EventKind, MissOrigin, TraceEvent};

/// Stall cycles charged per category while folding events.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleAttribution {
    /// Native I-miss service: critical-word cycles of memory-served misses.
    pub icache_miss: u64,
    /// Decompressor latency beyond the index lookup, plus buffer-hit
    /// delivery cycles.
    pub decompress: u64,
    /// Index-table lookup cycles within decompressor-served misses.
    pub index_lookup: u64,
    /// Data-side memory stalls (D-cache misses).
    pub memory: u64,
    /// Control-flow recovery: mispredict flush cycles.
    pub branch: u64,
}

impl CycleAttribution {
    /// Folds one event into the accumulator.
    pub fn absorb(&mut self, event: &TraceEvent) {
        match event.kind {
            EventKind::MissServed {
                origin,
                critical,
                index_cycles,
                ..
            } => match origin {
                MissOrigin::Memory => self.icache_miss += critical,
                MissOrigin::Decompressor => {
                    self.index_lookup += index_cycles;
                    self.decompress += critical.saturating_sub(index_cycles);
                }
                MissOrigin::OutputBuffer => self.decompress += critical,
            },
            EventKind::DcacheMiss { cycles, .. } => self.memory += cycles,
            EventKind::PipelineFlush { cycles } => self.branch += cycles,
            _ => {}
        }
    }

    /// Folds a whole event stream.
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> CycleAttribution {
        let mut acc = CycleAttribution::default();
        for ev in events {
            acc.absorb(ev);
        }
        acc
    }

    /// Sum of all attributed stall cycles.
    pub fn attributed(&self) -> u64 {
        self.icache_miss + self.decompress + self.index_lookup + self.memory + self.branch
    }

    /// Closes the books against the measured totals, producing a
    /// breakdown whose components sum exactly to the measured CPI.
    pub fn into_breakdown(self, total_cycles: u64, retired_instructions: u64) -> CpiBreakdown {
        CpiBreakdown::new(self, total_cycles, retired_instructions)
    }
}

/// A CPI breakdown: measured CPI split into compute / icache-miss /
/// decompress / index-lookup / memory / branch components that sum
/// exactly to the total.
///
/// Attributed stall cycles can exceed total cycles on wide cores, where
/// stalls overlap with useful issue; in that case every stall category is
/// scaled down proportionally and compute is zero. Otherwise compute is
/// the residual `total − attributed`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CpiBreakdown {
    /// Measured cycles per instruction.
    pub total: f64,
    /// Useful-work residual.
    pub compute: f64,
    /// Native I-miss service.
    pub icache_miss: f64,
    /// Decompressor latency (decode + burst + buffer hits).
    pub decompress: f64,
    /// Index-table lookups.
    pub index_lookup: f64,
    /// Data-side memory stalls.
    pub memory: f64,
    /// Branch mispredict recovery.
    pub branch: f64,
}

impl CpiBreakdown {
    /// Builds the breakdown from attributed stalls and measured totals.
    pub fn new(
        attr: CycleAttribution,
        total_cycles: u64,
        retired_instructions: u64,
    ) -> CpiBreakdown {
        if retired_instructions == 0 {
            return CpiBreakdown::default();
        }
        let insns = retired_instructions as f64;
        let total = total_cycles as f64 / insns;
        let attributed = attr.attributed();
        // Overlapped stalls: scale categories to fit, leaving no compute.
        let scale = if attributed > total_cycles && attributed > 0 {
            total_cycles as f64 / attributed as f64
        } else {
            1.0
        };
        let icache_miss = attr.icache_miss as f64 * scale / insns;
        let decompress = attr.decompress as f64 * scale / insns;
        let index_lookup = attr.index_lookup as f64 * scale / insns;
        let memory = attr.memory as f64 * scale / insns;
        let branch = attr.branch as f64 * scale / insns;
        let compute = (total - icache_miss - decompress - index_lookup - memory - branch).max(0.0);
        CpiBreakdown {
            total,
            compute,
            icache_miss,
            decompress,
            index_lookup,
            memory,
            branch,
        }
    }

    /// Sum of the components — equal to `total` within float rounding.
    pub fn component_sum(&self) -> f64 {
        self.compute
            + self.icache_miss
            + self.decompress
            + self.index_lookup
            + self.memory
            + self.branch
    }

    /// The breakdown as a JSON object with six-decimal fields.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"total\": {:.6}, \"compute\": {:.6}, \"icache_miss\": {:.6}, \
             \"decompress\": {:.6}, \"index_lookup\": {:.6}, \"memory\": {:.6}, \
             \"branch\": {:.6}}}",
            self.total,
            self.compute,
            self.icache_miss,
            self.decompress,
            self.index_lookup,
            self.memory,
            self.branch,
        )
    }

    /// A short human-readable table of the breakdown.
    pub fn render(&self) -> String {
        let row = |name: &str, v: f64| -> String {
            let pct = if self.total > 0.0 {
                100.0 * v / self.total
            } else {
                0.0
            };
            format!("  {name:<13} {v:>9.4}  {pct:>5.1}%\n")
        };
        let mut out = String::from("CPI breakdown\n");
        out.push_str(&row("compute", self.compute));
        out.push_str(&row("icache-miss", self.icache_miss));
        out.push_str(&row("decompress", self.decompress));
        out.push_str(&row("index-lookup", self.index_lookup));
        out.push_str(&row("memory", self.memory));
        out.push_str(&row("branch", self.branch));
        out.push_str(&format!("  {:<13} {:>9.4}\n", "total CPI", self.total));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn served(origin: MissOrigin, critical: u64, index_cycles: u64) -> TraceEvent {
        TraceEvent {
            cycle: 0,
            kind: EventKind::MissServed {
                pc: 0,
                origin,
                critical,
                fill: critical,
                index_cycles,
            },
        }
    }

    #[test]
    fn events_charge_expected_categories() {
        let events = vec![
            served(MissOrigin::Memory, 10, 0),
            served(MissOrigin::Decompressor, 25, 12),
            served(MissOrigin::OutputBuffer, 1, 0),
            TraceEvent {
                cycle: 0,
                kind: EventKind::DcacheMiss {
                    addr: 0,
                    cycles: 16,
                },
            },
            TraceEvent {
                cycle: 0,
                kind: EventKind::PipelineFlush { cycles: 3 },
            },
        ];
        let attr = CycleAttribution::from_events(&events);
        assert_eq!(attr.icache_miss, 10);
        assert_eq!(attr.index_lookup, 12);
        assert_eq!(attr.decompress, 13 + 1);
        assert_eq!(attr.memory, 16);
        assert_eq!(attr.branch, 3);
        assert_eq!(attr.attributed(), 10 + 12 + 14 + 16 + 3);
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let attr = CycleAttribution {
            icache_miss: 100,
            decompress: 50,
            index_lookup: 25,
            memory: 10,
            branch: 5,
        };
        let b = attr.into_breakdown(1000, 400);
        assert!((b.component_sum() - b.total).abs() < 1e-9);
        assert!(b.compute > 0.0);
        assert!((b.total - 2.5).abs() < 1e-12);
    }

    #[test]
    fn overlapped_stalls_scale_down_without_negative_compute() {
        let attr = CycleAttribution {
            icache_miss: 900,
            decompress: 600,
            index_lookup: 0,
            memory: 0,
            branch: 0,
        };
        let b = attr.into_breakdown(1000, 1000);
        assert!((b.component_sum() - b.total).abs() < 1e-9);
        assert_eq!(b.compute, 0.0);
        assert!(b.icache_miss > b.decompress);
    }

    #[test]
    fn zero_instructions_yields_empty_breakdown() {
        let b = CycleAttribution::default().into_breakdown(100, 0);
        assert_eq!(b.total, 0.0);
        assert_eq!(b.component_sum(), 0.0);
    }

    #[test]
    fn json_and_render_mention_every_component() {
        let b = CycleAttribution {
            icache_miss: 1,
            decompress: 2,
            index_lookup: 3,
            memory: 4,
            branch: 5,
        }
        .into_breakdown(100, 10);
        for key in [
            "total",
            "compute",
            "icache_miss",
            "decompress",
            "index_lookup",
            "memory",
            "branch",
        ] {
            assert!(b.to_json().contains(key), "json missing {key}");
        }
        assert!(b.render().contains("total CPI"));
    }
}
