//! Chrome trace-event export: converts a [`TraceEvent`] stream into the
//! JSON Array Format understood by `chrome://tracing` and Perfetto.
//!
//! Duration-shaped events (miss service, index lookups with latency,
//! flushes, D-miss stalls) become complete events (`"ph":"X"`) with
//! `ts`/`dur` in simulated cycles (reported as microseconds, 1 cycle =
//! 1 µs, since the viewer requires a time unit); point-shaped events
//! (beats, decodes, buffer hits) become instant events (`"ph":"i"`).
//! Each event lands on a thread row per subsystem so the miss path reads
//! as parallel tracks: fetch, decompressor, memory, pipeline.

use std::fmt::Write as _;

use crate::event::{EventKind, TraceEvent};

/// Thread-row ids used in the exported trace.
mod tid {
    pub const FETCH: u32 = 0;
    pub const DECOMPRESSOR: u32 = 1;
    pub const MEMORY: u32 = 2;
    pub const PIPELINE: u32 = 3;
}

/// Accumulates trace-event records, handling the comma discipline between
/// entries of the `traceEvents` array.
struct EventWriter {
    out: String,
    first: bool,
}

impl EventWriter {
    fn push(
        &mut self,
        name: &str,
        ph: char,
        ts: u64,
        dur: Option<u64>,
        tid: u32,
        args: &[(&str, String)],
    ) {
        let out = &mut self.out;
        if !self.first {
            out.push_str(",\n");
        }
        self.first = false;
        let _ = write!(
            out,
            "    {{\"name\": \"{name}\", \"ph\": \"{ph}\", \"ts\": {ts}"
        );
        if let Some(d) = dur {
            let _ = write!(out, ", \"dur\": {d}");
        }
        let _ = write!(out, ", \"pid\": 0, \"tid\": {tid}");
        if ph == 'i' {
            out.push_str(", \"s\": \"t\"");
        }
        out.push_str(", \"args\": {");
        for (n, (k, v)) in args.iter().enumerate() {
            if n > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{k}\": {v}");
        }
        out.push_str("}}");
    }
}

/// Renders `events` as a complete Chrome trace-event JSON document.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut w = EventWriter {
        out: String::from("{\"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n"),
        first: true,
    };
    for (label, t) in [
        ("fetch", tid::FETCH),
        ("decompressor", tid::DECOMPRESSOR),
        ("memory", tid::MEMORY),
        ("pipeline", tid::PIPELINE),
    ] {
        w.push(
            "thread_name",
            'M',
            0,
            None,
            t,
            &[("name", format!("\"{label}\""))],
        );
    }
    for ev in events {
        let c = ev.cycle;
        match ev.kind {
            EventKind::IcacheMiss { pc } => w.push(
                "icache-miss",
                'i',
                c,
                None,
                tid::FETCH,
                &[("pc", format!("{pc}"))],
            ),
            EventKind::IndexLookup { group, hit, cycles } => w.push(
                if hit { "index-hit" } else { "index-miss" },
                'X',
                c,
                Some(cycles.max(1)),
                tid::DECOMPRESSOR,
                &[("group", format!("{group}")), ("hit", format!("{hit}"))],
            ),
            EventKind::BurstBeat { beat, bytes } => w.push(
                "burst-beat",
                'i',
                c,
                None,
                tid::MEMORY,
                &[("beat", format!("{beat}")), ("bytes", format!("{bytes}"))],
            ),
            EventKind::DictInsn { insn } => w.push(
                "dict-decode",
                'i',
                c,
                None,
                tid::DECOMPRESSOR,
                &[("insn", format!("{insn}"))],
            ),
            EventKind::RawInsn { insn } => w.push(
                "raw-escape",
                'i',
                c,
                None,
                tid::DECOMPRESSOR,
                &[("insn", format!("{insn}"))],
            ),
            EventKind::BufferHit { block } => w.push(
                "buffer-hit",
                'i',
                c,
                None,
                tid::DECOMPRESSOR,
                &[("block", format!("{block}"))],
            ),
            EventKind::MissServed {
                pc,
                origin,
                critical,
                fill,
                index_cycles,
            } => w.push(
                &format!("miss-served-{}", origin.as_str()),
                'X',
                c.saturating_sub(critical),
                Some(critical.max(1)),
                tid::FETCH,
                &[
                    ("pc", format!("{pc}")),
                    ("fill", format!("{fill}")),
                    ("index_cycles", format!("{index_cycles}")),
                ],
            ),
            EventKind::DcacheMiss { addr, cycles } => w.push(
                "dcache-miss",
                'X',
                c,
                Some(cycles.max(1)),
                tid::MEMORY,
                &[("addr", format!("{addr}"))],
            ),
            EventKind::BranchMispredict { pc, indirect } => w.push(
                "branch-mispredict",
                'i',
                c,
                None,
                tid::PIPELINE,
                &[("pc", format!("{pc}")), ("indirect", format!("{indirect}"))],
            ),
            EventKind::PipelineFlush { cycles } => w.push(
                "pipeline-flush",
                'X',
                c,
                Some(cycles.max(1)),
                tid::PIPELINE,
                &[],
            ),
            EventKind::FaultInjected { area, addr, flips } => w.push(
                &format!("fault-{}", area.as_str()),
                'i',
                c,
                None,
                tid::MEMORY,
                &[("addr", format!("{addr}")), ("flips", format!("{flips}"))],
            ),
            EventKind::FaultDetected { area, addr } => w.push(
                &format!("fault-detected-{}", area.as_str()),
                'i',
                c,
                None,
                tid::MEMORY,
                &[("addr", format!("{addr}"))],
            ),
            EventKind::FaultRetry { area, attempt } => w.push(
                &format!("fault-retry-{}", area.as_str()),
                'i',
                c,
                None,
                tid::MEMORY,
                &[("attempt", format!("{attempt}"))],
            ),
            EventKind::FaultSilent { area, addr } => w.push(
                &format!("fault-silent-{}", area.as_str()),
                'i',
                c,
                None,
                tid::MEMORY,
                &[("addr", format!("{addr}"))],
            ),
            EventKind::MachineCheck { pc } => w.push(
                "machine-check",
                'i',
                c,
                None,
                tid::PIPELINE,
                &[("pc", format!("{pc}"))],
            ),
        }
    }
    w.out.push_str("\n  ]\n}\n");
    w.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MissOrigin;
    use crate::json;

    #[test]
    fn export_is_valid_chrome_trace_json() {
        let events = vec![
            TraceEvent {
                cycle: 5,
                kind: EventKind::IcacheMiss { pc: 0x100 },
            },
            TraceEvent {
                cycle: 6,
                kind: EventKind::IndexLookup {
                    group: 2,
                    hit: false,
                    cycles: 12,
                },
            },
            TraceEvent {
                cycle: 30,
                kind: EventKind::MissServed {
                    pc: 0x100,
                    origin: MissOrigin::Decompressor,
                    critical: 25,
                    fill: 31,
                    index_cycles: 12,
                },
            },
        ];
        let doc = chrome_trace_json(&events);
        let v = json::parse(&doc).expect("chrome trace parses as JSON");
        let list = v
            .get("traceEvents")
            .and_then(json::Value::as_array)
            .expect("traceEvents array");
        // 4 thread-name metadata records + 3 events.
        assert_eq!(list.len(), 7);
        for e in list {
            assert!(e.get("name").is_some());
            assert!(e.get("ph").is_some());
            assert!(e.get("ts").and_then(json::Value::as_u64).is_some());
            assert!(e.get("pid").is_some());
            assert!(e.get("tid").is_some());
        }
        // The served event is a complete ('X') span starting at miss time.
        let served = list
            .iter()
            .find(|e| {
                e.get("name").and_then(json::Value::as_str) == Some("miss-served-decompressor")
            })
            .unwrap();
        assert_eq!(served.get("ph").and_then(json::Value::as_str), Some("X"));
        assert_eq!(served.get("ts").and_then(json::Value::as_u64), Some(5));
        assert_eq!(served.get("dur").and_then(json::Value::as_u64), Some(25));
    }

    #[test]
    fn empty_trace_still_valid() {
        let doc = chrome_trace_json(&[]);
        let v = json::parse(&doc).unwrap();
        assert_eq!(
            v.get("traceEvents")
                .and_then(json::Value::as_array)
                .map(<[_]>::len),
            Some(4)
        );
    }
}
