//! Typed trace events on the simulated-cycle timeline.
//!
//! Every event the simulator emits is one of the [`EventKind`] variants
//! below, stamped with the cycle at which it happened. The taxonomy
//! follows the paper's miss-path anatomy: an I-cache miss triggers an
//! index-table lookup, a burst read of the compressed block (beat by
//! beat), per-instruction dictionary decodes or raw escapes, and finally
//! a serviced-miss summary; output-buffer prefetch hits short-circuit the
//! whole path. Pipeline-side events (branch mispredicts, flushes, D-cache
//! misses) round out the CPI attribution.

use std::fmt::Write as _;

/// Where a serviced miss got its instructions from. Mirrors
/// `codepack_core::MissSource` without depending on it (obs sits below
/// every other crate in the dependency graph).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MissOrigin {
    /// Native line fill from main memory.
    Memory,
    /// Compressed block fetched and decompressed.
    Decompressor,
    /// Served out of the decompressor's 16-instruction output buffer.
    OutputBuffer,
}

impl MissOrigin {
    /// Stable short name used in JSONL.
    pub fn as_str(self) -> &'static str {
        match self {
            MissOrigin::Memory => "memory",
            MissOrigin::Decompressor => "decompressor",
            MissOrigin::OutputBuffer => "buffer",
        }
    }

    /// Parses the JSONL short name.
    pub fn parse(s: &str) -> Option<MissOrigin> {
        match s {
            "memory" => Some(MissOrigin::Memory),
            "decompressor" => Some(MissOrigin::Decompressor),
            "buffer" => Some(MissOrigin::OutputBuffer),
            _ => None,
        }
    }
}

/// Which storage structure a soft-error event touched. Mirrors
/// `codepack_mem::FaultDomain` without depending on it (obs sits below
/// every other crate in the dependency graph).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultArea {
    /// Compressed instruction stream bytes.
    Stream,
    /// Index-table entry.
    Index,
    /// Dictionary SRAM entry.
    Dictionary,
    /// Resident L1 I-cache line.
    IcacheLine,
}

impl FaultArea {
    /// Stable short name used in JSONL.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultArea::Stream => "stream",
            FaultArea::Index => "index",
            FaultArea::Dictionary => "dict",
            FaultArea::IcacheLine => "icache",
        }
    }

    /// Parses the JSONL short name.
    pub fn parse(s: &str) -> Option<FaultArea> {
        match s {
            "stream" => Some(FaultArea::Stream),
            "index" => Some(FaultArea::Index),
            "dict" => Some(FaultArea::Dictionary),
            "icache" => Some(FaultArea::IcacheLine),
            _ => None,
        }
    }
}

/// One simulator event, without its timestamp.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// L1 I-cache miss detected at `pc`.
    IcacheMiss {
        /// Missing instruction address.
        pc: u32,
    },
    /// Index-table lookup for compression `group`; `hit` is the index-cache
    /// outcome and `cycles` the added latency (0 on a hit).
    IndexLookup {
        /// Compression group number.
        group: u32,
        /// Index-cache probe outcome.
        hit: bool,
        /// Latency added by this lookup.
        cycles: u64,
    },
    /// One bus beat of a burst read: 0-based `beat` carrying `bytes`.
    BurstBeat {
        /// Beat number within the burst.
        beat: u32,
        /// Bytes transferred by this beat.
        bytes: u32,
    },
    /// Instruction `insn` of the block decoded via a dictionary codeword.
    DictInsn {
        /// Instruction index within the compression block.
        insn: u32,
    },
    /// Instruction `insn` of the block carried as a raw escape.
    RawInsn {
        /// Instruction index within the compression block.
        insn: u32,
    },
    /// Miss served from the output buffer (prefetch hit) for `block`.
    BufferHit {
        /// Compression block number.
        block: u32,
    },
    /// Summary of one serviced miss: critical word after `critical`
    /// cycles, line fill after `fill`, of which `index_cycles` were index
    /// lookup.
    MissServed {
        /// Missing instruction address.
        pc: u32,
        /// Who served the miss.
        origin: MissOrigin,
        /// Cycles until the critical instruction reached the CPU.
        critical: u64,
        /// Cycles until the full line was filled.
        fill: u64,
        /// Portion of `critical` spent on the index lookup.
        index_cycles: u64,
    },
    /// D-cache miss at `addr` stalling the pipeline `cycles`.
    DcacheMiss {
        /// Faulting data address.
        addr: u32,
        /// Stall cycles charged.
        cycles: u64,
    },
    /// Branch at `pc` mispredicted (`indirect` for target mispredicts).
    BranchMispredict {
        /// Branch instruction address.
        pc: u32,
        /// True when the target (not the direction) was wrong.
        indirect: bool,
    },
    /// Pipeline flushed, losing `cycles` of fetch.
    PipelineFlush {
        /// Fetch cycles lost to the flush.
        cycles: u64,
    },
    /// Soft error injected into `area` at physical address `addr`,
    /// flipping `flips` bits.
    FaultInjected {
        /// Struck storage structure.
        area: FaultArea,
        /// Physical address of the struck word/region.
        addr: u32,
        /// Number of bits flipped (1 or 2).
        flips: u32,
    },
    /// An armed integrity check (or the codec) caught a fault in `area`.
    FaultDetected {
        /// Structure in which the fault was caught.
        area: FaultArea,
        /// Physical address of the detection.
        addr: u32,
    },
    /// Recovery re-fetch number `attempt` issued for `area`.
    FaultRetry {
        /// Structure being re-fetched.
        area: FaultArea,
        /// 1-based retry attempt number.
        attempt: u32,
    },
    /// An injected fault escaped every armed check — silent corruption.
    FaultSilent {
        /// Structure the escape lives in.
        area: FaultArea,
        /// Physical address of the escape.
        addr: u32,
    },
    /// Recovery exhausted its re-fetch budget; a machine-check trap is
    /// delivered to the pipeline, which retires it precisely at `pc`.
    MachineCheck {
        /// Instruction address whose fetch could not be recovered.
        pc: u32,
    },
}

/// An [`EventKind`] stamped with its simulated cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle at which the event occurred.
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Stable short name of the event kind (the JSONL `k` field).
    pub fn kind_name(&self) -> &'static str {
        match self.kind {
            EventKind::IcacheMiss { .. } => "imiss",
            EventKind::IndexLookup { .. } => "index",
            EventKind::BurstBeat { .. } => "beat",
            EventKind::DictInsn { .. } => "dict",
            EventKind::RawInsn { .. } => "raw",
            EventKind::BufferHit { .. } => "bufhit",
            EventKind::MissServed { .. } => "served",
            EventKind::DcacheMiss { .. } => "dmiss",
            EventKind::BranchMispredict { .. } => "bmiss",
            EventKind::PipelineFlush { .. } => "flush",
            EventKind::FaultInjected { .. } => "finj",
            EventKind::FaultDetected { .. } => "fdet",
            EventKind::FaultRetry { .. } => "fretry",
            EventKind::FaultSilent { .. } => "fsilent",
            EventKind::MachineCheck { .. } => "mcheck",
        }
    }

    /// The event as one JSONL line (no trailing newline):
    /// `{"c":CYCLE,"k":"kind",...fields}`.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(64);
        let _ = write!(s, "{{\"c\":{},\"k\":\"{}\"", self.cycle, self.kind_name());
        match self.kind {
            EventKind::IcacheMiss { pc } => {
                let _ = write!(s, ",\"pc\":{pc}");
            }
            EventKind::IndexLookup { group, hit, cycles } => {
                let _ = write!(s, ",\"group\":{group},\"hit\":{hit},\"cycles\":{cycles}");
            }
            EventKind::BurstBeat { beat, bytes } => {
                let _ = write!(s, ",\"beat\":{beat},\"bytes\":{bytes}");
            }
            EventKind::DictInsn { insn } | EventKind::RawInsn { insn } => {
                let _ = write!(s, ",\"insn\":{insn}");
            }
            EventKind::BufferHit { block } => {
                let _ = write!(s, ",\"block\":{block}");
            }
            EventKind::MissServed {
                pc,
                origin,
                critical,
                fill,
                index_cycles,
            } => {
                let _ = write!(
                    s,
                    ",\"pc\":{pc},\"origin\":\"{}\",\"critical\":{critical},\
                     \"fill\":{fill},\"index_cycles\":{index_cycles}",
                    origin.as_str()
                );
            }
            EventKind::DcacheMiss { addr, cycles } => {
                let _ = write!(s, ",\"addr\":{addr},\"cycles\":{cycles}");
            }
            EventKind::BranchMispredict { pc, indirect } => {
                let _ = write!(s, ",\"pc\":{pc},\"indirect\":{indirect}");
            }
            EventKind::PipelineFlush { cycles } => {
                let _ = write!(s, ",\"cycles\":{cycles}");
            }
            EventKind::FaultInjected { area, addr, flips } => {
                let _ = write!(
                    s,
                    ",\"area\":\"{}\",\"addr\":{addr},\"flips\":{flips}",
                    area.as_str()
                );
            }
            EventKind::FaultDetected { area, addr } | EventKind::FaultSilent { area, addr } => {
                let _ = write!(s, ",\"area\":\"{}\",\"addr\":{addr}", area.as_str());
            }
            EventKind::FaultRetry { area, attempt } => {
                let _ = write!(s, ",\"area\":\"{}\",\"attempt\":{attempt}", area.as_str());
            }
            EventKind::MachineCheck { pc } => {
                let _ = write!(s, ",\"pc\":{pc}");
            }
        }
        s.push('}');
        s
    }

    /// Parses one JSONL line produced by [`TraceEvent::to_jsonl`].
    pub fn from_jsonl(line: &str) -> Result<TraceEvent, String> {
        let v = crate::json::parse(line)?;
        let obj = v.as_object().ok_or("trace line is not a JSON object")?;
        let get_u64 = |key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(crate::json::Value::as_u64)
                .ok_or_else(|| format!("missing numeric field `{key}` in {line}"))
        };
        let get_u32 = |key: &str| -> Result<u32, String> { get_u64(key).map(|v| v as u32) };
        let get_bool = |key: &str| -> Result<bool, String> {
            obj.get(key)
                .and_then(crate::json::Value::as_bool)
                .ok_or_else(|| format!("missing bool field `{key}` in {line}"))
        };
        let cycle = get_u64("c")?;
        let kind_name = obj
            .get("k")
            .and_then(crate::json::Value::as_str)
            .ok_or("missing `k` field")?;
        let kind = match kind_name {
            "imiss" => EventKind::IcacheMiss { pc: get_u32("pc")? },
            "index" => EventKind::IndexLookup {
                group: get_u32("group")?,
                hit: get_bool("hit")?,
                cycles: get_u64("cycles")?,
            },
            "beat" => EventKind::BurstBeat {
                beat: get_u32("beat")?,
                bytes: get_u32("bytes")?,
            },
            "dict" => EventKind::DictInsn {
                insn: get_u32("insn")?,
            },
            "raw" => EventKind::RawInsn {
                insn: get_u32("insn")?,
            },
            "bufhit" => EventKind::BufferHit {
                block: get_u32("block")?,
            },
            "served" => {
                let origin_name = obj
                    .get("origin")
                    .and_then(crate::json::Value::as_str)
                    .ok_or("missing `origin` field")?;
                EventKind::MissServed {
                    pc: get_u32("pc")?,
                    origin: MissOrigin::parse(origin_name)
                        .ok_or_else(|| format!("unknown miss origin `{origin_name}`"))?,
                    critical: get_u64("critical")?,
                    fill: get_u64("fill")?,
                    index_cycles: get_u64("index_cycles")?,
                }
            }
            "dmiss" => EventKind::DcacheMiss {
                addr: get_u32("addr")?,
                cycles: get_u64("cycles")?,
            },
            "bmiss" => EventKind::BranchMispredict {
                pc: get_u32("pc")?,
                indirect: get_bool("indirect")?,
            },
            "flush" => EventKind::PipelineFlush {
                cycles: get_u64("cycles")?,
            },
            "finj" | "fdet" | "fretry" | "fsilent" => {
                let area_name = obj
                    .get("area")
                    .and_then(crate::json::Value::as_str)
                    .ok_or("missing `area` field")?;
                let area = FaultArea::parse(area_name)
                    .ok_or_else(|| format!("unknown fault area `{area_name}`"))?;
                match kind_name {
                    "finj" => EventKind::FaultInjected {
                        area,
                        addr: get_u32("addr")?,
                        flips: get_u32("flips")?,
                    },
                    "fdet" => EventKind::FaultDetected {
                        area,
                        addr: get_u32("addr")?,
                    },
                    "fretry" => EventKind::FaultRetry {
                        area,
                        attempt: get_u32("attempt")?,
                    },
                    _ => EventKind::FaultSilent {
                        area,
                        addr: get_u32("addr")?,
                    },
                }
            }
            "mcheck" => EventKind::MachineCheck { pc: get_u32("pc")? },
            other => return Err(format!("unknown event kind `{other}`")),
        };
        Ok(TraceEvent { cycle, kind })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                cycle: 0,
                kind: EventKind::IcacheMiss { pc: 0x40_0010 },
            },
            TraceEvent {
                cycle: 1,
                kind: EventKind::IndexLookup {
                    group: 3,
                    hit: false,
                    cycles: 12,
                },
            },
            TraceEvent {
                cycle: 13,
                kind: EventKind::BurstBeat { beat: 0, bytes: 8 },
            },
            TraceEvent {
                cycle: 14,
                kind: EventKind::DictInsn { insn: 0 },
            },
            TraceEvent {
                cycle: 15,
                kind: EventKind::RawInsn { insn: 1 },
            },
            TraceEvent {
                cycle: 40,
                kind: EventKind::BufferHit { block: 7 },
            },
            TraceEvent {
                cycle: 41,
                kind: EventKind::MissServed {
                    pc: 0x40_0010,
                    origin: MissOrigin::Decompressor,
                    critical: 25,
                    fill: 31,
                    index_cycles: 12,
                },
            },
            TraceEvent {
                cycle: 50,
                kind: EventKind::DcacheMiss {
                    addr: 0x1000,
                    cycles: 16,
                },
            },
            TraceEvent {
                cycle: 60,
                kind: EventKind::BranchMispredict {
                    pc: 0x40_0020,
                    indirect: true,
                },
            },
            TraceEvent {
                cycle: 61,
                kind: EventKind::PipelineFlush { cycles: 3 },
            },
            TraceEvent {
                cycle: 70,
                kind: EventKind::FaultInjected {
                    area: FaultArea::Stream,
                    addr: 0x128,
                    flips: 2,
                },
            },
            TraceEvent {
                cycle: 71,
                kind: EventKind::FaultDetected {
                    area: FaultArea::Stream,
                    addr: 0x128,
                },
            },
            TraceEvent {
                cycle: 72,
                kind: EventKind::FaultRetry {
                    area: FaultArea::Index,
                    attempt: 1,
                },
            },
            TraceEvent {
                cycle: 73,
                kind: EventKind::FaultSilent {
                    area: FaultArea::Dictionary,
                    addr: 0x40,
                },
            },
            TraceEvent {
                cycle: 74,
                kind: EventKind::MachineCheck { pc: 0x40_0030 },
            },
        ]
    }

    #[test]
    fn every_kind_round_trips_through_jsonl() {
        for ev in sample_events() {
            let line = ev.to_jsonl();
            let back = TraceEvent::from_jsonl(&line).expect("parse back");
            assert_eq!(back, ev, "round-trip of {line}");
        }
    }

    #[test]
    fn unknown_kind_is_rejected() {
        assert!(TraceEvent::from_jsonl("{\"c\":1,\"k\":\"nope\"}").is_err());
        assert!(TraceEvent::from_jsonl("not json").is_err());
        assert!(TraceEvent::from_jsonl("{\"c\":1}").is_err());
    }

    #[test]
    fn origin_names_are_stable() {
        for origin in [
            MissOrigin::Memory,
            MissOrigin::Decompressor,
            MissOrigin::OutputBuffer,
        ] {
            assert_eq!(MissOrigin::parse(origin.as_str()), Some(origin));
        }
        assert_eq!(MissOrigin::parse("bogus"), None);
    }

    #[test]
    fn fault_area_names_are_stable() {
        for area in [
            FaultArea::Stream,
            FaultArea::Index,
            FaultArea::Dictionary,
            FaultArea::IcacheLine,
        ] {
            assert_eq!(FaultArea::parse(area.as_str()), Some(area));
        }
        assert_eq!(FaultArea::parse("rom"), None);
        assert!(TraceEvent::from_jsonl(
            "{\"c\":1,\"k\":\"finj\",\"area\":\"rom\",\"addr\":0,\"flips\":1}"
        )
        .is_err());
    }
}
