//! Per-block access profiling: the [`BlockProfile`] collector.
//!
//! ROADMAP item 4 (access-pattern-adaptive compression) needs to know
//! which compressed blocks the fetch engine actually touches at runtime,
//! how often, and at what miss-service cost. The aggregate counters in
//! [`crate::metrics`] cannot answer that — they sum over the whole image.
//! `BlockProfile` attributes every fetch to its block: fetch and
//! buffer-hit counts, index-cache behaviour, a log2 [`Histogram`] of
//! miss-service (critical-word) cycles, decode-backend invocations, the
//! fast decoder's table/escape/refill counters, and fault events.
//!
//! The collector hangs off the [`crate::Obs`] handle as an `Option`, so
//! the disarmed path keeps the handle's one-branch-per-site guarantee
//! (bench-guarded in `crates/bench/benches/profile_overhead.rs`).
//!
//! # JSON schema (version 1) — the profile artifact contract
//!
//! [`BlockProfile::to_json`] renders a versioned document that
//! [`BlockProfile::from_json`] loads back; this pair is the input
//! contract for the profile-guided compressor of ROADMAP item 4:
//!
//! ```json
//! {
//!   "schema": "cpack-block-profile",
//!   "schema_version": 1,
//!   "source": "pegwit seed=42 insns=200000",
//!   "total_blocks": 1024,
//!   "blocks": [
//!     {"block": 0, "fetches": 12, "buffer_hits": 4, "index_hits": 7,
//!      "index_misses": 1, "memory_beats": 96, "decode_fast": 6,
//!      "decode_scalar": 2, "table_lookups": 192, "raw_escapes": 5,
//!      "refills": 102, "scalar_fallbacks": 0, "faults_injected": 0,
//!      "faults_recovered": 0, "machine_checks": 0,
//!      "miss_cycles": {"count": 8, "sum": 201, "min": 21, "max": 30,
//!                      "p50": 25, "p90": 30, "p99": 30,
//!                      "buckets": [[16, 8]]}}
//!   ]
//! }
//! ```
//!
//! * `schema` / `schema_version` gate the loader; unknown versions are
//!   rejected, never guessed at.
//! * `source` is a free-form provenance label (benchmark, seed,
//!   instruction budget). Merging unions distinct labels with `+`.
//! * `total_blocks` is the image's block count, so consumers can tell
//!   "block never fetched" (absent) from "block does not exist".
//! * `blocks` is sorted by block id; every counter is an exact `u64` and
//!   `miss_cycles` is the log2 histogram of miss-service critical
//!   cycles (buffer hits are excluded — they are not misses).
//!
//! Rendering is byte-stable for a given profile (BTreeMap iteration,
//! fixed field order), and [`BlockProfile::merge`] is exact, commutative
//! and associative — so merging per-cell profiles from the matrix runner
//! in any grouping, at any worker count, yields byte-identical JSON.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{self, Value};
use crate::metrics::Histogram;

/// The `schema` field of a profile artifact.
pub const PROFILE_SCHEMA: &str = "cpack-block-profile";

/// The schema version this crate writes and loads.
pub const PROFILE_SCHEMA_VERSION: u64 = 1;

/// Everything known about one compressed block's runtime behaviour.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BlockStats {
    /// Fetch services attributed to the block (buffer hits + misses).
    pub fetches: u64,
    /// Services answered by the decompressor output buffer.
    pub buffer_hits: u64,
    /// Misses whose index-table probe hit the index cache.
    pub index_hits: u64,
    /// Misses that paid a memory read for the index entry.
    pub index_misses: u64,
    /// Memory bus beats spent servicing this block's misses.
    pub memory_beats: u64,
    /// Modeled decompressor invocations through the fast table backend.
    pub decode_fast: u64,
    /// Modeled decompressor invocations through the scalar backend.
    pub decode_scalar: u64,
    /// Fast-path decode-table lookups (per `decode_fast` invocation).
    pub table_lookups: u64,
    /// Raw-escape entries taken on the fast path.
    pub raw_escapes: u64,
    /// Bit-buffer refills on the fast path.
    pub refills: u64,
    /// Fast-path halfwords that fell back to the scalar mirror.
    pub scalar_fallbacks: u64,
    /// Soft-error faults injected while servicing this block.
    pub faults_injected: u64,
    /// Injected faults recovered by detect-and-refetch.
    pub faults_recovered: u64,
    /// Machine checks raised while servicing this block.
    pub machine_checks: u64,
    /// Log2 histogram of miss-service critical cycles (misses only).
    pub miss_cycles: Histogram,
}

impl BlockStats {
    /// Misses attributed to the block.
    pub fn misses(&self) -> u64 {
        self.fetches - self.buffer_hits
    }

    /// Folds `other` into `self` (exact integer adds, histogram merge).
    pub fn merge(&mut self, other: &BlockStats) {
        self.fetches += other.fetches;
        self.buffer_hits += other.buffer_hits;
        self.index_hits += other.index_hits;
        self.index_misses += other.index_misses;
        self.memory_beats += other.memory_beats;
        self.decode_fast += other.decode_fast;
        self.decode_scalar += other.decode_scalar;
        self.table_lookups += other.table_lookups;
        self.raw_escapes += other.raw_escapes;
        self.refills += other.refills;
        self.scalar_fallbacks += other.scalar_fallbacks;
        self.faults_injected += other.faults_injected;
        self.faults_recovered += other.faults_recovered;
        self.machine_checks += other.machine_checks;
        self.miss_cycles.merge(&other.miss_cycles);
    }
}

/// One miss service, as reported by the fetch engine.
///
/// A plain data carrier so the engine can fill it where the numbers are
/// already at hand; [`BlockProfile::record_miss`] does the bookkeeping.
#[derive(Clone, Copy, Debug, Default)]
pub struct MissRecord {
    /// Cycles until the critical word was ready (or the trap fired).
    pub critical_cycles: u64,
    /// Index-probe outcome; `None` when no probe was needed.
    pub index_hit: Option<bool>,
    /// Memory bus beats this service consumed.
    pub memory_beats: u64,
    /// Was the line produced by the decompressor (vs. straight memory)?
    pub decompressed: bool,
    /// Did the modeled decompressor use the fast table backend?
    pub fast_decode: bool,
    /// Did the service end in a machine-check trap?
    pub machine_check: bool,
    /// Faults injected during the service.
    pub faults_injected: u64,
    /// Faults recovered during the service.
    pub faults_recovered: u64,
}

/// A per-block access profile, keyed by block id.
///
/// ```
/// use codepack_obs::{BlockProfile, MissRecord};
/// let mut p = BlockProfile::new();
/// p.set_total_blocks(8);
/// p.record_miss(
///     3,
///     &MissRecord {
///         critical_cycles: 25,
///         index_hit: Some(true),
///         memory_beats: 9,
///         decompressed: true,
///         fast_decode: true,
///         ..MissRecord::default()
///     },
/// );
/// p.record_buffer_hit(3);
/// let s = p.stats(3).unwrap();
/// assert_eq!((s.fetches, s.misses(), s.decode_fast), (2, 1, 1));
/// let reloaded = BlockProfile::from_json(&p.to_json()).unwrap();
/// assert_eq!(reloaded, p);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BlockProfile {
    source: String,
    total_blocks: u32,
    blocks: BTreeMap<u32, BlockStats>,
}

impl BlockProfile {
    /// An empty profile with no provenance label.
    pub fn new() -> BlockProfile {
        BlockProfile::default()
    }

    /// Sets the free-form provenance label (benchmark, seed, budget).
    /// `+` is reserved as the separator merge uses to union labels.
    pub fn set_source(&mut self, source: &str) {
        self.source = source.to_string();
    }

    /// The provenance label (possibly `+`-joined after a merge).
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Records the image's block count (merge keeps the max), so
    /// consumers can distinguish cold blocks from nonexistent ones.
    pub fn set_total_blocks(&mut self, n: u32) {
        self.total_blocks = self.total_blocks.max(n);
    }

    /// The image's block count, as recorded by the collector.
    pub fn total_blocks(&self) -> u32 {
        self.total_blocks
    }

    /// Number of distinct blocks touched.
    pub fn blocks_touched(&self) -> usize {
        self.blocks.len()
    }

    /// Stats for `block`, if it was ever touched.
    pub fn stats(&self, block: u32) -> Option<&BlockStats> {
        self.blocks.get(&block)
    }

    /// Mutable stats for `block`, created zeroed on first touch.
    pub fn stats_mut(&mut self, block: u32) -> &mut BlockStats {
        self.blocks.entry(block).or_default()
    }

    /// All touched blocks in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &BlockStats)> {
        self.blocks.iter().map(|(&b, s)| (b, s))
    }

    /// All touched blocks in id order, mutably — used by the fetch
    /// engine's end-of-run decode-counter fold.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u32, &mut BlockStats)> {
        self.blocks.iter_mut().map(|(&b, s)| (b, s))
    }

    /// Counts one output-buffer hit against `block`.
    #[inline]
    pub fn record_buffer_hit(&mut self, block: u32) {
        let s = self.stats_mut(block);
        s.fetches += 1;
        s.buffer_hits += 1;
    }

    /// Counts one miss service against `block`.
    pub fn record_miss(&mut self, block: u32, m: &MissRecord) {
        let s = self.stats_mut(block);
        s.fetches += 1;
        match m.index_hit {
            Some(true) => s.index_hits += 1,
            Some(false) => s.index_misses += 1,
            None => {}
        }
        s.memory_beats += m.memory_beats;
        if m.decompressed {
            if m.fast_decode {
                s.decode_fast += 1;
            } else {
                s.decode_scalar += 1;
            }
        }
        if m.machine_check {
            s.machine_checks += 1;
        }
        s.faults_injected += m.faults_injected;
        s.faults_recovered += m.faults_recovered;
        s.miss_cycles.record(m.critical_cycles);
    }

    /// Folds `other` into `self`. Exact, commutative, and associative:
    /// block stats add field-wise, histograms merge bucket-wise,
    /// `total_blocks` takes the max, and distinct source labels union
    /// into a sorted `+`-joined set — so merging matrix cells in any
    /// grouping and at any worker count yields byte-identical JSON.
    pub fn merge(&mut self, other: &BlockProfile) {
        self.source = merge_sources(&self.source, &other.source);
        self.total_blocks = self.total_blocks.max(other.total_blocks);
        for (&block, stats) in &other.blocks {
            self.blocks.entry(block).or_default().merge(stats);
        }
    }

    /// Grand totals over all blocks (one [`BlockStats`] sum).
    pub fn totals(&self) -> BlockStats {
        let mut t = BlockStats::default();
        for s in self.blocks.values() {
            t.merge(s);
        }
        t
    }

    /// The `n` hottest blocks by fetch count (ties broken by lower block
    /// id), hottest first — deterministic for a given profile.
    pub fn hot_blocks(&self, n: usize) -> Vec<(u32, &BlockStats)> {
        let mut all: Vec<(u32, &BlockStats)> = self.iter().collect();
        all.sort_by(|a, b| b.1.fetches.cmp(&a.1.fetches).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    /// How many of the hottest blocks cover `percent` (0–100] of all
    /// fetches — the cumulative-hotness curve sampled at one point.
    /// Returns 0 for an empty profile.
    pub fn coverage_blocks(&self, percent: f64) -> usize {
        let total = self.totals().fetches;
        if total == 0 {
            return 0;
        }
        let need = (percent.clamp(0.0, 100.0) / 100.0 * total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, (_, s)) in self.hot_blocks(self.blocks.len()).iter().enumerate() {
            seen += s.fetches;
            if seen >= need {
                return i + 1;
            }
        }
        self.blocks.len()
    }

    /// The profile as its versioned JSON artifact (see module docs).
    /// Byte-stable: equal profiles render to identical bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"{PROFILE_SCHEMA}\",");
        let _ = writeln!(out, "  \"schema_version\": {PROFILE_SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"source\": \"{}\",", json::escape(&self.source));
        let _ = writeln!(out, "  \"total_blocks\": {},", self.total_blocks);
        out.push_str("  \"blocks\": [");
        for (n, (block, s)) in self.iter().enumerate() {
            let comma = if n > 0 { "," } else { "" };
            let _ = write!(
                out,
                "{comma}\n    {{\"block\": {block}, \"fetches\": {}, \"buffer_hits\": {}, \
                 \"index_hits\": {}, \"index_misses\": {}, \"memory_beats\": {}, \
                 \"decode_fast\": {}, \"decode_scalar\": {}, \"table_lookups\": {}, \
                 \"raw_escapes\": {}, \"refills\": {}, \"scalar_fallbacks\": {}, \
                 \"faults_injected\": {}, \"faults_recovered\": {}, \"machine_checks\": {}, \
                 \"miss_cycles\": {}}}",
                s.fetches,
                s.buffer_hits,
                s.index_hits,
                s.index_misses,
                s.memory_beats,
                s.decode_fast,
                s.decode_scalar,
                s.table_lookups,
                s.raw_escapes,
                s.refills,
                s.scalar_fallbacks,
                s.faults_injected,
                s.faults_recovered,
                s.machine_checks,
                s.miss_cycles.to_json(),
            );
        }
        if self.blocks.is_empty() {
            out.push_str("]\n}\n");
        } else {
            out.push_str("\n  ]\n}\n");
        }
        out
    }

    /// Loads a profile artifact written by [`BlockProfile::to_json`].
    ///
    /// # Errors
    ///
    /// Rejects documents that are not valid JSON, carry the wrong
    /// `schema` or an unknown `schema_version`, or whose block records
    /// are missing fields or internally inconsistent (duplicate block
    /// ids, histogram count not matching its buckets).
    pub fn from_json(text: &str) -> Result<BlockProfile, String> {
        let doc = json::parse(text)?;
        match doc.get("schema").and_then(Value::as_str) {
            Some(PROFILE_SCHEMA) => {}
            other => return Err(format!("not a block profile (schema {other:?})")),
        }
        match doc.get("schema_version").and_then(Value::as_u64) {
            Some(PROFILE_SCHEMA_VERSION) => {}
            other => return Err(format!("unsupported schema_version {other:?}")),
        }
        let mut p = BlockProfile::new();
        p.source = doc
            .get("source")
            .and_then(Value::as_str)
            .ok_or("missing source")?
            .to_string();
        p.total_blocks = doc
            .get("total_blocks")
            .and_then(Value::as_u64)
            .ok_or("missing total_blocks")? as u32;
        let blocks = doc
            .get("blocks")
            .and_then(Value::as_array)
            .ok_or("missing blocks array")?;
        for rec in blocks {
            let block = field_u64(rec, "block")? as u32;
            let s = BlockStats {
                fetches: field_u64(rec, "fetches")?,
                buffer_hits: field_u64(rec, "buffer_hits")?,
                index_hits: field_u64(rec, "index_hits")?,
                index_misses: field_u64(rec, "index_misses")?,
                memory_beats: field_u64(rec, "memory_beats")?,
                decode_fast: field_u64(rec, "decode_fast")?,
                decode_scalar: field_u64(rec, "decode_scalar")?,
                table_lookups: field_u64(rec, "table_lookups")?,
                raw_escapes: field_u64(rec, "raw_escapes")?,
                refills: field_u64(rec, "refills")?,
                scalar_fallbacks: field_u64(rec, "scalar_fallbacks")?,
                faults_injected: field_u64(rec, "faults_injected")?,
                faults_recovered: field_u64(rec, "faults_recovered")?,
                machine_checks: field_u64(rec, "machine_checks")?,
                miss_cycles: histogram_from_json(
                    rec.get("miss_cycles").ok_or("missing miss_cycles")?,
                )?,
            };
            if p.blocks.insert(block, s).is_some() {
                return Err(format!("duplicate block {block}"));
            }
        }
        Ok(p)
    }
}

/// Unions two `+`-joined source-label sets into a sorted, deduped one.
fn merge_sources(a: &str, b: &str) -> String {
    let mut set: std::collections::BTreeSet<&str> =
        a.split('+').filter(|s| !s.is_empty()).collect();
    set.extend(b.split('+').filter(|s| !s.is_empty()));
    set.into_iter().collect::<Vec<_>>().join("+")
}

fn field_u64(rec: &Value, name: &str) -> Result<u64, String> {
    rec.get(name)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{name}`"))
}

/// Rebuilds a [`Histogram`] from its `to_json` rendering, cross-checking
/// the stored `count` against the bucket sum.
fn histogram_from_json(v: &Value) -> Result<Histogram, String> {
    let sum = v
        .get("sum")
        .and_then(Value::as_u64)
        .ok_or("histogram sum")?;
    let min = v
        .get("min")
        .and_then(Value::as_u64)
        .ok_or("histogram min")?;
    let max = v
        .get("max")
        .and_then(Value::as_u64)
        .ok_or("histogram max")?;
    let count = v
        .get("count")
        .and_then(Value::as_u64)
        .ok_or("histogram count")?;
    let mut buckets = Vec::new();
    for pair in v
        .get("buckets")
        .and_then(Value::as_array)
        .ok_or("histogram buckets")?
    {
        match pair.as_array() {
            Some([lo, c]) => buckets.push((
                lo.as_u64().ok_or("bucket lo")?,
                c.as_u64().ok_or("bucket count")?,
            )),
            _ => return Err("bucket is not a [lo, count] pair".to_string()),
        }
    }
    let h = Histogram::from_summary(sum, min, max, &buckets)?;
    if h.count() != count {
        return Err(format!(
            "histogram count {count} does not match bucket sum {}",
            h.count()
        ));
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn miss(cycles: u64) -> MissRecord {
        MissRecord {
            critical_cycles: cycles,
            index_hit: Some(false),
            memory_beats: 4,
            decompressed: true,
            fast_decode: true,
            ..MissRecord::default()
        }
    }

    #[test]
    fn records_attribute_to_blocks() {
        let mut p = BlockProfile::new();
        p.record_miss(7, &miss(25));
        p.record_miss(7, &miss(30));
        p.record_buffer_hit(7);
        p.record_miss(2, &miss(21));
        assert_eq!(p.blocks_touched(), 2);
        let s = p.stats(7).unwrap();
        assert_eq!(s.fetches, 3);
        assert_eq!(s.misses(), 2);
        assert_eq!(s.buffer_hits, 1);
        assert_eq!(s.decode_fast, 2);
        assert_eq!(s.miss_cycles.count(), 2);
        assert_eq!(s.miss_cycles.max(), 30);
        assert!(p.stats(3).is_none());
    }

    #[test]
    fn hot_blocks_and_coverage_are_deterministic() {
        let mut p = BlockProfile::new();
        for _ in 0..8 {
            p.record_miss(5, &miss(10));
        }
        for _ in 0..8 {
            p.record_miss(1, &miss(10));
        }
        p.record_miss(9, &miss(10));
        // Tie between blocks 1 and 5 breaks toward the lower id.
        let hot = p.hot_blocks(2);
        assert_eq!(hot[0].0, 1);
        assert_eq!(hot[1].0, 5);
        assert_eq!(p.coverage_blocks(50.0), 2);
        assert_eq!(p.coverage_blocks(100.0), 3);
        assert_eq!(BlockProfile::new().coverage_blocks(90.0), 0);
        assert_eq!(p.totals().fetches, 17);
    }

    #[test]
    fn json_round_trips_byte_stable() {
        let mut p = BlockProfile::new();
        p.set_source("pegwit seed=42");
        p.set_total_blocks(64);
        p.record_miss(3, &miss(25));
        p.record_buffer_hit(3);
        p.record_miss(
            11,
            &MissRecord {
                critical_cycles: 90,
                index_hit: Some(true),
                memory_beats: 12,
                decompressed: true,
                fast_decode: false,
                machine_check: true,
                faults_injected: 2,
                faults_recovered: 1,
            },
        );
        let doc = p.to_json();
        let back = BlockProfile::from_json(&doc).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.to_json(), doc);
        // Empty profile round-trips too.
        let empty = BlockProfile::new();
        assert_eq!(BlockProfile::from_json(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn loader_rejects_foreign_documents() {
        assert!(BlockProfile::from_json("{}").is_err());
        assert!(BlockProfile::from_json("not json").is_err());
        let mut p = BlockProfile::new();
        p.record_miss(1, &miss(5));
        let doc = p.to_json();
        let wrong_version = doc.replace("\"schema_version\": 1", "\"schema_version\": 99");
        assert!(BlockProfile::from_json(&wrong_version).is_err());
        let wrong_count = doc.replace("\"count\": 1", "\"count\": 3");
        assert!(BlockProfile::from_json(&wrong_count).is_err());
    }

    #[test]
    fn merge_is_exact_and_unions_sources() {
        let mut a = BlockProfile::new();
        a.set_source("cell-a");
        a.set_total_blocks(10);
        a.record_miss(1, &miss(5));
        let mut b = BlockProfile::new();
        b.set_source("cell-b");
        b.set_total_blocks(12);
        b.record_miss(1, &miss(7));
        b.record_buffer_hit(2);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.to_json(), ba.to_json());
        assert_eq!(ab.source(), "cell-a+cell-b");
        assert_eq!(ab.total_blocks(), 12);
        assert_eq!(ab.stats(1).unwrap().miss_cycles.count(), 2);

        // Merging the same label twice does not duplicate it.
        let mut twice = ab.clone();
        twice.merge(&a);
        assert_eq!(twice.source(), "cell-a+cell-b");
    }
}
