//! A registry of named counters, gauges, and log2-bucketed histograms.
//!
//! Metric names are dotted paths (`fetch.index_hits`); the registry keeps
//! them in `BTreeMap`s so every rendering — text or JSON — is byte-stable
//! for a given set of recordings, regardless of insertion order. That
//! determinism is load-bearing: the matrix runner compares per-cell metric
//! snapshots across worker counts byte-for-byte.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of histogram buckets: one for zero plus one per power of two of
/// the `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A histogram over `u64` samples with power-of-two bucket boundaries.
///
/// Bucket 0 holds exactly the value 0; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i - 1]`. Percentile queries return the upper bound of the
/// bucket containing the requested rank, clamped to the observed min/max —
/// a deterministic over-approximation that never inverts ordering.
///
/// ```
/// use codepack_obs::Histogram;
/// let mut h = Histogram::new();
/// for v in [1u64, 2, 3, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.percentile(50.0) >= 2 && h.percentile(50.0) <= 3);
/// assert_eq!(h.percentile(100.0), 100);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// The bucket index holding `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive `[lo, hi]` value range of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < HISTOGRAM_BUCKETS, "bucket {i} out of range");
    if i == 0 {
        (0, 0)
    } else {
        (1u64 << (i - 1), (1u64 << (i - 1)) - 1 + (1u64 << (i - 1)))
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; HISTOGRAM_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Per-bucket counts (index → count), nonzero buckets only.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// The `p`-th percentile (0–100) as the upper bound of the bucket
    /// containing that rank, clamped to `[min, max]`. Returns 0 when empty.
    /// The endpoints are exact: `p == 0` is the observed minimum and
    /// `p == 100` the observed maximum (a bucket upper bound would
    /// over-approximate p0 by up to 2× on a non-empty low bucket).
    ///
    /// Monotone in `p`: `p1 <= p2` implies
    /// `percentile(p1) <= percentile(p2)`.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        if p == 0.0 {
            return self.min;
        }
        if p == 100.0 {
            return self.max;
        }
        // 1-based rank of the requested sample. The nudge absorbs
        // float noise: 99.9 / 100.0 * 1000.0 evaluates to 999.0000…01,
        // and a bare ceil would skip rank 999 entirely.
        let raw = p / 100.0 * self.total as f64;
        let rank = ((raw - 1e-9).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, hi) = bucket_bounds(i);
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Rebuilds a histogram from the summary fields its
    /// [`Histogram::to_json`] rendering carries: saturating sum, observed
    /// min/max, and `[bucket_lo, count]` pairs. Inverse of `to_json` up to
    /// equality — a round trip through JSON reconstructs a histogram equal
    /// to the original. An empty bucket list yields the empty histogram
    /// (whose JSON prints min/max as 0); `sum`/`min`/`max` are ignored in
    /// that case.
    ///
    /// # Errors
    ///
    /// Rejects bucket lower bounds that are not power-of-two bucket
    /// boundaries, zero bucket counts, and a `min`/`max` pair that does not
    /// fall in the lowest/highest populated bucket.
    pub fn from_summary(
        sum: u64,
        min: u64,
        max: u64,
        buckets: &[(u64, u64)],
    ) -> Result<Histogram, String> {
        let mut h = Histogram::new();
        for &(lo, c) in buckets {
            let i = bucket_index(lo);
            if bucket_bounds(i).0 != lo {
                return Err(format!("{lo} is not a bucket lower bound"));
            }
            if c == 0 {
                return Err(format!("bucket {lo} has zero count"));
            }
            h.counts[i] += c;
            h.total += c;
        }
        if h.total == 0 {
            return Ok(h);
        }
        let first = h.counts.iter().position(|&c| c > 0).expect("non-empty");
        let last = h.counts.iter().rposition(|&c| c > 0).expect("non-empty");
        if min > max || bucket_index(min) != first || bucket_index(max) != last {
            return Err(format!(
                "min {min} / max {max} inconsistent with populated buckets"
            ));
        }
        h.sum = sum;
        h.min = min;
        h.max = max;
        Ok(h)
    }

    /// Merges `other` into `self`. Exact (integer) and associative: merging
    /// in any grouping yields the same histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// JSON object: count/sum/min/max, key percentiles, nonzero buckets.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
             \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
            self.count(),
            self.sum(),
            self.min(),
            self.max(),
            self.percentile(50.0),
            self.percentile(90.0),
            self.percentile(99.0),
        );
        for (n, (i, c)) in self.nonzero_buckets().enumerate() {
            let (lo, _) = bucket_bounds(i);
            if n > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{lo}, {c}]");
        }
        out.push_str("]}");
        out
    }
}

/// Named counters, gauges, and histograms with deterministic rendering.
///
/// ```
/// use codepack_obs::MetricsRegistry;
/// let mut m = MetricsRegistry::new();
/// m.incr("fetch.misses", 3);
/// m.observe("fetch.critical_cycles", 25);
/// m.set_gauge("icache.miss_ratio", 0.125);
/// assert_eq!(m.counter_value("fetch.misses"), Some(3));
/// assert!(m.to_json().contains("fetch.critical_cycles"));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `by` to counter `name`, creating it at zero first.
    ///
    /// Debug builds assert that `name` is not already a gauge or histogram:
    /// one name bound to two metric kinds renders as duplicate JSON keys
    /// and silently shadows on merge, so it is a programming error.
    pub fn incr(&mut self, name: &str, by: u64) {
        debug_assert!(
            !self.gauges.contains_key(name) && !self.histograms.contains_key(name),
            "metric name `{name}` already used by another metric kind"
        );
        match self.counters.get_mut(name) {
            Some(c) => *c += by,
            None => {
                self.counters.insert(name.to_string(), by);
            }
        }
    }

    /// Sets gauge `name` to `v`. Debug builds assert `name` is not already
    /// a counter or histogram (see [`MetricsRegistry::incr`]).
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        debug_assert!(
            !self.counters.contains_key(name) && !self.histograms.contains_key(name),
            "metric name `{name}` already used by another metric kind"
        );
        match self.gauges.get_mut(name) {
            Some(g) => *g = v,
            None => {
                self.gauges.insert(name.to_string(), v);
            }
        }
    }

    /// Records `v` into histogram `name`, creating it empty first. Debug
    /// builds assert `name` is not already a counter or gauge (see
    /// [`MetricsRegistry::incr`]).
    pub fn observe(&mut self, name: &str, v: u64) {
        debug_assert!(
            !self.counters.contains_key(name) && !self.gauges.contains_key(name),
            "metric name `{name}` already used by another metric kind"
        );
        match self.histograms.get_mut(name) {
            Some(h) => h.record(v),
            None => {
                let mut h = Histogram::new();
                h.record(v);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Current value of counter `name`.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Current value of gauge `name`.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram `name`, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merges another registry: counters add, gauges take `other`'s value,
    /// histograms merge bucket-wise.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.counters {
            self.incr(k, v);
        }
        for (k, &v) in &other.gauges {
            self.set_gauge(k, v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// The registry as a JSON document with name-sorted, stable field
    /// order. Gauges print with fixed six-decimal precision so output is
    /// byte-reproducible.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (n, (k, v)) in self.counters.iter().enumerate() {
            let comma = if n > 0 { "," } else { "" };
            let _ = write!(out, "{comma}\n    \"{k}\": {v}");
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (n, (k, v)) in self.gauges.iter().enumerate() {
            let comma = if n > 0 { "," } else { "" };
            let _ = write!(out, "{comma}\n    \"{k}\": {v:.6}");
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (n, (k, h)) in self.histograms.iter().enumerate() {
            let comma = if n > 0 { "," } else { "" };
            let _ = write!(out, "{comma}\n    \"{k}\": {}", h.to_json());
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_covers_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
        }
    }

    #[test]
    fn empty_histogram_is_benign() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn percentiles_clamp_to_observed_range() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(5);
        h.record(5);
        // Bucket [4,7] would report 7; clamping pins it to the real max.
        assert_eq!(h.percentile(0.0), 5);
        assert_eq!(h.percentile(100.0), 5);
    }

    #[test]
    fn percentile_endpoints_are_exact() {
        let mut h = Histogram::new();
        for v in [2u64, 3, 100] {
            h.record(v);
        }
        // Bucket [2,3] would report 3 for p0; the endpoint is exact.
        assert_eq!(h.percentile(0.0), 2);
        assert_eq!(h.percentile(100.0), 100);
        assert!(h.percentile(50.0) >= 2 && h.percentile(50.0) <= 100);
        // Out-of-range p saturates to the endpoints.
        assert_eq!(h.percentile(-5.0), 2);
        assert_eq!(h.percentile(250.0), 100);
    }

    #[test]
    fn single_sample_answers_every_percentile_exactly() {
        // With one sample there is only one truthful answer; the tail
        // percentiles the service scorecard leans on (p99, p999) must
        // not inflate it to a bucket bound.
        for v in [0u64, 1, 5, 127, 1 << 20, u64::MAX] {
            let mut h = Histogram::new();
            h.record(v);
            for p in [0.0, 50.0, 95.0, 99.0, 99.9, 100.0] {
                assert_eq!(h.percentile(p), v, "p{p} of single sample {v}");
            }
        }
    }

    #[test]
    fn identical_samples_answer_every_percentile_exactly() {
        // All-equal input: min == max pins every bucket bound down to
        // the one observed value, whatever the count.
        for n in [2u64, 3, 1_000] {
            let mut h = Histogram::new();
            for _ in 0..n {
                h.record(37);
            }
            for p in [0.0, 50.0, 99.0, 99.9, 100.0] {
                assert_eq!(h.percentile(p), 37, "p{p} of {n} equal samples");
            }
        }
    }

    #[test]
    fn tail_percentiles_are_exact_on_bucket_aligned_distributions() {
        // 990 samples at 127, 9 at 1023, 1 at 8191 — all bucket upper
        // bounds, so the bucketed answer is the true order statistic.
        let mut h = Histogram::new();
        for _ in 0..990 {
            h.record(127);
        }
        for _ in 0..9 {
            h.record(1023);
        }
        h.record(8191);
        assert_eq!(h.count(), 1_000);
        // rank(p50) = 500 and rank(p99) = 990 both land in the 127s.
        assert_eq!(h.percentile(50.0), 127);
        assert_eq!(h.percentile(99.0), 127);
        // rank(p99.9) = 999 crosses into the 1023s: the p999 column
        // sees the tail that p99 misses.
        assert_eq!(h.percentile(99.9), 1023);
        assert_eq!(h.percentile(100.0), 8191);
    }

    #[test]
    fn percentile_is_monotone_in_p() {
        let mut h = Histogram::new();
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..500 {
            // xorshift: an arbitrary but fixed spread of magnitudes.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.record(x % 1_000_000);
        }
        let mut last = 0u64;
        for tenths in 0..=1_000u32 {
            let p = f64::from(tenths) / 10.0;
            let v = h.percentile(p);
            assert!(v >= last, "p{p} = {v} dropped below {last}");
            last = v;
        }
        assert_eq!(h.percentile(0.0), h.min());
        assert_eq!(h.percentile(100.0), h.max());
    }

    #[test]
    fn from_summary_round_trips() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 7, 900, u64::MAX] {
            h.record(v);
        }
        let buckets: Vec<(u64, u64)> = h
            .nonzero_buckets()
            .map(|(i, c)| (bucket_bounds(i).0, c))
            .collect();
        let back = Histogram::from_summary(h.sum(), h.min(), h.max(), &buckets).unwrap();
        assert_eq!(back, h);
        assert_eq!(Histogram::from_summary(0, 0, 0, &[]).unwrap().count(), 0);
        // 5 is not a bucket lower bound; min 9 lies outside bucket [4,7].
        assert!(Histogram::from_summary(5, 5, 5, &[(5, 1)]).is_err());
        assert!(Histogram::from_summary(9, 9, 9, &[(4, 1)]).is_err());
        assert!(Histogram::from_summary(4, 4, 4, &[(4, 0)]).is_err());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "already used by another metric kind")]
    fn counter_colliding_with_gauge_panics() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("x", 1.0);
        m.incr("x", 1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "already used by another metric kind")]
    fn histogram_colliding_with_counter_panics() {
        let mut m = MetricsRegistry::new();
        m.incr("x", 1);
        m.observe("x", 1);
    }

    #[test]
    fn merge_equals_recording_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [0u64, 1, 7, 900] {
            a.record(v);
            all.record(v);
        }
        for v in [3u64, 3, 1 << 40] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn registry_round_trips_values() {
        let mut m = MetricsRegistry::new();
        m.incr("a.x", 2);
        m.incr("a.x", 3);
        m.set_gauge("g", 1.5);
        m.observe("h", 9);
        assert_eq!(m.counter_value("a.x"), Some(5));
        assert_eq!(m.gauge_value("g"), Some(1.5));
        assert_eq!(m.histogram("h").unwrap().count(), 1);
        assert_eq!(m.counter_value("missing"), None);
    }

    #[test]
    fn registry_json_is_sorted_and_stable() {
        let mut a = MetricsRegistry::new();
        a.incr("z.last", 1);
        a.incr("a.first", 1);
        let mut b = MetricsRegistry::new();
        b.incr("a.first", 1);
        b.incr("z.last", 1);
        assert_eq!(a.to_json(), b.to_json());
        let json = a.to_json();
        assert!(json.find("a.first").unwrap() < json.find("z.last").unwrap());
    }

    #[test]
    fn registry_merge_adds_counters() {
        let mut a = MetricsRegistry::new();
        a.incr("c", 1);
        a.observe("h", 4);
        let mut b = MetricsRegistry::new();
        b.incr("c", 2);
        b.incr("only_b", 7);
        b.observe("h", 8);
        a.merge(&b);
        assert_eq!(a.counter_value("c"), Some(3));
        assert_eq!(a.counter_value("only_b"), Some(7));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }
}
