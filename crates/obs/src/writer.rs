//! A minimal JSON writer — the emitting counterpart of [`crate::json`]'s
//! parser. Hermetic-build policy forbids `serde`, so structured documents
//! (lint reports, metrics) are built through this instead of ad-hoc
//! `format!` calls.
//!
//! The writer is a streaming builder: open containers with
//! [`JsonWriter::begin_object`] / [`JsonWriter::begin_array`], emit keys and
//! values, close them, and [`JsonWriter::finish`]. Comma and quoting
//! discipline is handled internally, so every produced document parses.
//!
//! ```
//! use codepack_obs::{json, JsonWriter};
//!
//! let mut w = JsonWriter::new();
//! w.begin_object();
//! w.field_str("name", "cc1");
//! w.key("ratios").begin_array();
//! w.f64(0.5923);
//! w.end_array();
//! w.end_object();
//! let doc = w.finish();
//! assert!(json::parse(&doc).is_ok());
//! ```

use std::fmt::Write as _;

use crate::json::escape;

/// What container the writer is currently inside.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Frame {
    Object { seen: bool },
    Array { seen: bool },
}

/// A streaming JSON document builder. See the [module docs](self).
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    stack: Vec<Frame>,
    /// A key was just written; the next value belongs to it (no comma).
    after_key: bool,
}

impl JsonWriter {
    /// A writer for one JSON document.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    /// Emits the separator due before a new element in the current
    /// container, if any.
    fn sep(&mut self) {
        if self.after_key {
            self.after_key = false;
            return;
        }
        if let Some(frame) = self.stack.last_mut() {
            match frame {
                Frame::Object { seen } | Frame::Array { seen } => {
                    if *seen {
                        self.out.push_str(", ");
                    }
                    *seen = true;
                }
            }
        }
    }

    /// Opens an object.
    pub fn begin_object(&mut self) -> &mut JsonWriter {
        self.sep();
        self.out.push('{');
        self.stack.push(Frame::Object { seen: false });
        self
    }

    /// Closes the innermost object.
    ///
    /// # Panics
    ///
    /// Panics if the innermost open container is not an object.
    pub fn end_object(&mut self) -> &mut JsonWriter {
        match self.stack.pop() {
            Some(Frame::Object { .. }) => self.out.push('}'),
            other => panic!("end_object with open container {other:?}"),
        }
        self
    }

    /// Opens an array.
    pub fn begin_array(&mut self) -> &mut JsonWriter {
        self.sep();
        self.out.push('[');
        self.stack.push(Frame::Array { seen: false });
        self
    }

    /// Closes the innermost array.
    ///
    /// # Panics
    ///
    /// Panics if the innermost open container is not an array.
    pub fn end_array(&mut self) -> &mut JsonWriter {
        match self.stack.pop() {
            Some(Frame::Array { .. }) => self.out.push(']'),
            other => panic!("end_array with open container {other:?}"),
        }
        self
    }

    /// Emits an object key; the next emitted value becomes its member.
    pub fn key(&mut self, k: &str) -> &mut JsonWriter {
        self.sep();
        let _ = write!(self.out, "\"{}\": ", escape(k));
        self.after_key = true;
        self
    }

    /// Emits a string value.
    pub fn string(&mut self, v: &str) -> &mut JsonWriter {
        self.sep();
        let _ = write!(self.out, "\"{}\"", escape(v));
        self
    }

    /// Emits an unsigned integer value.
    pub fn u64(&mut self, v: u64) -> &mut JsonWriter {
        self.sep();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Emits a signed integer value.
    pub fn i64(&mut self, v: i64) -> &mut JsonWriter {
        self.sep();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Emits a floating-point value (`null` if not finite, which JSON
    /// cannot represent).
    pub fn f64(&mut self, v: f64) -> &mut JsonWriter {
        self.sep();
        if v.is_finite() {
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Emits a boolean value.
    pub fn bool(&mut self, v: bool) -> &mut JsonWriter {
        self.sep();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Emits `null`.
    pub fn null(&mut self) -> &mut JsonWriter {
        self.sep();
        self.out.push_str("null");
        self
    }

    /// `key(k)` + `string(v)`.
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut JsonWriter {
        self.key(k).string(v)
    }

    /// `key(k)` + `u64(v)`.
    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut JsonWriter {
        self.key(k).u64(v)
    }

    /// `key(k)` + `f64(v)`.
    pub fn field_f64(&mut self, k: &str, v: f64) -> &mut JsonWriter {
        self.key(k).f64(v)
    }

    /// `key(k)` + `bool(v)`.
    pub fn field_bool(&mut self, k: &str, v: bool) -> &mut JsonWriter {
        self.key(k).bool(v)
    }

    /// The finished document.
    ///
    /// # Panics
    ///
    /// Panics if a container is still open — the document would not parse.
    pub fn finish(self) -> String {
        assert!(
            self.stack.is_empty() && !self.after_key,
            "json document finished with open container or dangling key"
        );
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Value};

    #[test]
    fn nested_document_parses_back() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("tool", "sr32lint");
        w.field_u64("errors", 0);
        w.key("diagnostics").begin_array();
        w.begin_object();
        w.field_str("severity", "warning");
        w.field_f64("ratio", 0.5923);
        w.field_bool("clean", true);
        w.key("context").null();
        w.end_object();
        w.end_array();
        w.end_object();
        let doc = w.finish();
        let v = json::parse(&doc).unwrap();
        assert_eq!(v.get("tool").and_then(Value::as_str), Some("sr32lint"));
        assert_eq!(v.get("errors").and_then(Value::as_u64), Some(0));
        let diags = v
            .get("diagnostics")
            .and_then(Value::as_array)
            .expect("array");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].get("ratio").and_then(Value::as_f64), Some(0.5923));
        assert_eq!(diags[0].get("context"), Some(&Value::Null));
    }

    #[test]
    fn strings_are_escaped() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("msg", "say \"hi\"\n\tdone");
        w.end_object();
        let doc = w.finish();
        let v = json::parse(&doc).unwrap();
        assert_eq!(
            v.get("msg").and_then(Value::as_str),
            Some("say \"hi\"\n\tdone")
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.f64(f64::NAN).f64(f64::INFINITY).f64(1.5);
        w.end_array();
        let v = json::parse(&w.finish()).unwrap();
        assert_eq!(
            v.as_array().unwrap(),
            &[Value::Null, Value::Null, Value::Number(1.5)]
        );
    }

    #[test]
    #[should_panic(expected = "open container")]
    fn finish_with_open_container_panics() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.finish();
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a").begin_array();
        w.end_array();
        w.key("b").begin_object();
        w.end_object();
        w.end_object();
        let v = json::parse(&w.finish()).unwrap();
        assert_eq!(
            v.get("a").and_then(Value::as_array).map(<[_]>::len),
            Some(0)
        );
        assert!(v.get("b").and_then(Value::as_object).is_some());
    }
}
