//! Benchmark profiles: the six workload stand-ins.
//!
//! The paper evaluates cc1, go, perl, vortex (SPEC CINT95 — chosen for their
//! *high* I-cache miss ratios) and mpeg2enc, pegwit (MediaBench —
//! loop-intensive embedded codes with near-zero miss ratios). We cannot run
//! those binaries, so each profile parameterizes a synthetic program
//! generator to match the characteristics that drive the paper's results:
//! `.text` size (Table 3), L1 I-miss class (Table 1), call-graph shape, and
//! immediate-value diversity (compressibility, Table 4).

/// Parameters of one synthetic benchmark.
///
/// ```
/// use codepack_synth::BenchmarkProfile;
/// let p = BenchmarkProfile::cc1_like();
/// assert_eq!(p.name, "cc1");
/// assert!(p.functions > BenchmarkProfile::pegwit_like().functions);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BenchmarkProfile {
    /// Short name used in experiment tables.
    pub name: &'static str,
    /// Number of generated functions (the `.text` size driver).
    pub functions: u32,
    /// Straight-line/branchy blocks per function body.
    pub body_blocks: u32,
    /// Trip count of each function's inner loop (instruction reuse driver:
    /// high values keep fetch inside warm lines, lowering I-miss rate).
    pub loop_iters: u32,
    /// Fraction of dispatcher calls steered to the hot subset.
    pub hot_fraction: f64,
    /// Number of functions in the hot subset.
    pub hot_functions: u32,
    /// Probability that a block calls a helper function (call-depth driver).
    pub call_prob: f64,
    /// Per-mille of instructions carrying a unique 32-bit constant
    /// (`lui`+`ori` pairs that become raw bytes under CodePack).
    pub rare_imm_permille: u32,
    /// Include floating-point kernels (the MediaBench-style codes).
    pub fp_mix: bool,
    /// Data working set in KiB (D-cache behaviour).
    pub data_kb: u32,
    /// Stride in bytes between successive data touches within a block.
    pub data_stride: u32,
    /// Width (in functions) of the drifting phase window that cold calls
    /// are drawn from. Real programs execute in phases over a code working
    /// set a few times the cache size; this reproduces the temporal
    /// locality of their miss streams (paper Table 6).
    pub phase_span: u32,
    /// log2 of dispatches per phase-window step (smaller = faster drift =
    /// more compulsory misses).
    pub phase_drift_shift: u32,
    /// Probability that a function's blocks are laid out in shuffled order,
    /// threaded by jumps — compiler-style non-linear layout. Linear layout
    /// maximizes the decompressor's output-buffer prefetch; real code is
    /// far less sequential.
    pub layout_shuffle: f64,
    /// Salt mixed into the generation seed so two profiles with the same
    /// user seed still differ.
    pub seed_salt: u64,
}

impl BenchmarkProfile {
    /// GCC-like: the largest, most miss-prone code (paper: 1,083 KB text,
    /// 6.7% I-miss on the 4-issue machine).
    pub fn cc1_like() -> BenchmarkProfile {
        BenchmarkProfile {
            name: "cc1",
            functions: 1920,
            body_blocks: 10,
            loop_iters: 1,
            hot_fraction: 0.25,
            hot_functions: 16,
            call_prob: 0.20,
            rare_imm_permille: 130,
            fp_mix: false,
            data_kb: 256,
            data_stride: 24,
            phase_span: 45,
            phase_drift_shift: 4,
            layout_shuffle: 0.50,
            seed_salt: 0x0063_6331,
        }
    }

    /// Go-playing program: mid-sized, branchy, high miss rate
    /// (paper: 310 KB, 6.2%).
    pub fn go_like() -> BenchmarkProfile {
        BenchmarkProfile {
            name: "go",
            functions: 565,
            body_blocks: 10,
            loop_iters: 1,
            hot_fraction: 0.27,
            hot_functions: 12,
            call_prob: 0.15,
            rare_imm_permille: 72,
            fp_mix: false,
            data_kb: 128,
            data_stride: 16,
            phase_span: 50,
            phase_drift_shift: 4,
            layout_shuffle: 0.50,
            seed_salt: 0x676f,
        }
    }

    /// MPEG-2 encoder: loop-dominated media kernel, ~0% I-miss
    /// (paper: 118 KB, 0.0%).
    pub fn mpeg2enc_like() -> BenchmarkProfile {
        BenchmarkProfile {
            name: "mpeg2enc",
            functions: 225,
            body_blocks: 8,
            loop_iters: 160,
            hot_fraction: 0.985,
            hot_functions: 4,
            call_prob: 0.05,
            rare_imm_permille: 165,
            fp_mix: true,
            data_kb: 384,
            data_stride: 8,
            phase_span: 16,
            phase_drift_shift: 6,
            layout_shuffle: 0.25,
            seed_salt: 0x6d70_6567,
        }
    }

    /// Public-key encryption kernel: small, loop-dominated integer code
    /// (paper: 89 KB, 0.1%).
    pub fn pegwit_like() -> BenchmarkProfile {
        BenchmarkProfile {
            name: "pegwit",
            functions: 197,
            body_blocks: 8,
            loop_iters: 60,
            hot_fraction: 0.94,
            hot_functions: 6,
            call_prob: 0.05,
            rare_imm_permille: 100,
            fp_mix: false,
            data_kb: 64,
            data_stride: 8,
            phase_span: 16,
            phase_drift_shift: 6,
            layout_shuffle: 0.25,
            seed_salt: 0x0070_6567,
        }
    }

    /// Perl interpreter: mid-sized, dispatch-loop heavy
    /// (paper: 267 KB, 4.4%).
    pub fn perl_like() -> BenchmarkProfile {
        BenchmarkProfile {
            name: "perl",
            functions: 475,
            body_blocks: 10,
            loop_iters: 2,
            hot_fraction: 0.28,
            hot_functions: 16,
            call_prob: 0.18,
            rare_imm_permille: 122,
            fp_mix: false,
            data_kb: 192,
            data_stride: 20,
            phase_span: 45,
            phase_drift_shift: 4,
            layout_shuffle: 0.50,
            seed_salt: 0x7065_726c,
        }
    }

    /// Object-oriented database: large, pointer-heavy
    /// (paper: 495 KB, 5.3%).
    pub fn vortex_like() -> BenchmarkProfile {
        BenchmarkProfile {
            name: "vortex",
            functions: 880,
            body_blocks: 10,
            loop_iters: 1,
            hot_fraction: 0.36,
            hot_functions: 16,
            call_prob: 0.22,
            rare_imm_permille: 38,
            fp_mix: false,
            data_kb: 384,
            data_stride: 32,
            phase_span: 55,
            phase_drift_shift: 4,
            layout_shuffle: 0.50,
            seed_salt: 0x0076_6f72,
        }
    }

    /// The paper's full benchmark suite, in its table order.
    pub fn suite() -> Vec<BenchmarkProfile> {
        vec![
            BenchmarkProfile::cc1_like(),
            BenchmarkProfile::go_like(),
            BenchmarkProfile::mpeg2enc_like(),
            BenchmarkProfile::pegwit_like(),
            BenchmarkProfile::perl_like(),
            BenchmarkProfile::vortex_like(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_six_distinct_benchmarks() {
        let suite = BenchmarkProfile::suite();
        assert_eq!(suite.len(), 6);
        let names: std::collections::HashSet<_> = suite.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn loop_benchmarks_have_high_reuse() {
        assert!(BenchmarkProfile::mpeg2enc_like().loop_iters > 50);
        assert!(BenchmarkProfile::pegwit_like().hot_fraction > 0.9);
        assert!(BenchmarkProfile::cc1_like().hot_fraction < 0.5);
    }

    #[test]
    fn salts_differ() {
        let suite = BenchmarkProfile::suite();
        let salts: std::collections::HashSet<_> = suite.iter().map(|p| p.seed_salt).collect();
        assert_eq!(salts.len(), 6);
    }
}
