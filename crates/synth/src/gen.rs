//! The synthetic program generator.
//!
//! Programs have the structure of real control-oriented embedded code:
//!
//! * a **dispatcher** main loop that advances an in-register LCG and calls a
//!   function through a binary if-tree (an interpreter-style dispatch),
//!   steering `hot_fraction` of the calls to a small hot subset of functions,
//! * **functions** with prologue/epilogue, an optional helper call (building
//!   realistic call depth over a strictly lower-index callee, so the call
//!   graph is acyclic), an inner loop, and branchy arithmetic/memory blocks,
//! * occasional unique 32-bit constants (`lui`/`ori` pairs) that defeat the
//!   CodePack dictionaries, controlling the raw-bits fraction of Table 4.
//!
//! Generation is fully deterministic for a given `(profile, seed)`.

use codepack_isa::{Assembler, Instruction, Label, Program, Reg, DATA_BASE};
use codepack_testkit::Rng;

use crate::BenchmarkProfile;

// Register conventions inside generated programs:
//   $s0 — dispatcher LCG state      $s1 — selected function index
//   $s2 — dispatcher iteration countdown
//   $s3 — dispatch counter (drives the cold-call phase window)
//   $t7 — per-function loop counter $t9 — block memory base
//   $at — branch temporaries        SCRATCH set — block ALU operands
const LCG_STATE: Reg = Reg::S0;
const FN_INDEX: Reg = Reg::S1;
const MAIN_COUNT: Reg = Reg::S2;
const DISPATCH_COUNT: Reg = Reg::S3;
const LOOP_COUNT: Reg = Reg::T7;

/// Generates an executable synthetic benchmark for `profile`.
///
/// The same `(profile, seed)` pair always produces the identical program,
/// byte for byte — experiments are reproducible.
///
/// ```
/// use codepack_synth::{generate, BenchmarkProfile};
/// let a = generate(&BenchmarkProfile::pegwit_like(), 7);
/// let b = generate(&BenchmarkProfile::pegwit_like(), 7);
/// assert_eq!(a.text_words(), b.text_words());
/// ```
pub fn generate(profile: &BenchmarkProfile, seed: u64) -> Program {
    let mut rng = Rng::seed_from_u64(seed ^ profile.seed_salt);
    let mut a = Assembler::new();
    let data_bytes = profile.data_kb * 1024;
    a.data_zeroed(data_bytes as usize);

    let fn_labels: Vec<Label> = (0..profile.functions).map(|_| a.new_label()).collect();
    emit_dispatcher(&mut a, profile, &fn_labels);
    for k in 0..profile.functions {
        emit_function(&mut a, profile, &mut rng, k, &fn_labels, data_bytes);
    }
    a.finish(profile.name)
        .expect("generator emits only in-range branches")
}

fn emit_dispatcher(a: &mut Assembler, profile: &BenchmarkProfile, fn_labels: &[Label]) {
    let loop_top = a.new_label();
    let cold = a.new_label();
    let dispatch = a.new_label();
    let after_call = a.new_label();
    let done = a.new_label();

    a.li(LCG_STATE, 0x1234_5678_u32 as i32);
    a.li(MAIN_COUNT, i32::MAX);
    a.li(DISPATCH_COUNT, 0);
    a.bind(loop_top);
    a.push(Instruction::Addiu {
        rt: DISPATCH_COUNT,
        rs: DISPATCH_COUNT,
        imm: 1,
    });

    // s0 = s0 * 1664525 + 1013904223
    a.li(Reg::T0, 1_664_525);
    a.push(Instruction::Multu {
        rs: LCG_STATE,
        rt: Reg::T0,
    });
    a.push(Instruction::Mflo { rd: LCG_STATE });
    a.li(Reg::T0, 1_013_904_223);
    a.push(Instruction::Addu {
        rd: LCG_STATE,
        rs: LCG_STATE,
        rt: Reg::T0,
    });

    // t1 = (s0 >> 24) & 0xff   — hot/cold coin
    a.push(Instruction::Srl {
        rd: Reg::T1,
        rt: LCG_STATE,
        shamt: 24,
    });
    // t2 = (s0 >> 8) & 0x7fff  — candidate index
    a.push(Instruction::Srl {
        rd: Reg::T2,
        rt: LCG_STATE,
        shamt: 8,
    });
    a.push(Instruction::Andi {
        rt: Reg::T2,
        rs: Reg::T2,
        imm: 0x7fff,
    });

    let hot_thresh = ((profile.hot_fraction * 256.0) as i32).clamp(0, 256);
    a.li(Reg::T3, hot_thresh);
    a.push(Instruction::Sltu {
        rd: Reg::T4,
        rs: Reg::T1,
        rt: Reg::T3,
    });
    a.beq(Reg::T4, Reg::ZERO, cold);
    // hot: s1 = t2 % hot_functions
    a.li(Reg::T5, profile.hot_functions.max(1) as i32);
    a.push(Instruction::Divu {
        rs: Reg::T2,
        rt: Reg::T5,
    });
    a.push(Instruction::Mfhi { rd: FN_INDEX });
    a.j(dispatch);
    a.bind(cold);
    // Cold calls walk the phase window *cyclically* — the LRU-thrash access
    // pattern of code whose working set slightly exceeds the cache, which
    // is what produces the paper's high I-miss rates with a compact,
    // recurring group set (Table 6):
    //   idx = (dispatches % span + dispatches >> drift) % functions
    a.li(
        Reg::T5,
        profile.phase_span.clamp(1, profile.functions) as i32,
    );
    a.push(Instruction::Divu {
        rs: DISPATCH_COUNT,
        rt: Reg::T5,
    });
    a.push(Instruction::Mfhi { rd: Reg::T2 });
    a.push(Instruction::Srl {
        rd: Reg::T6,
        rt: DISPATCH_COUNT,
        shamt: profile.phase_drift_shift.min(31) as u8,
    });
    a.push(Instruction::Addu {
        rd: Reg::T2,
        rs: Reg::T2,
        rt: Reg::T6,
    });
    a.li(Reg::T5, profile.functions as i32);
    a.push(Instruction::Divu {
        rs: Reg::T2,
        rt: Reg::T5,
    });
    a.push(Instruction::Mfhi { rd: FN_INDEX });
    a.bind(dispatch);

    emit_tree(a, 0, fn_labels.len(), fn_labels, after_call);

    a.bind(after_call);
    a.push(Instruction::Addiu {
        rt: MAIN_COUNT,
        rs: MAIN_COUNT,
        imm: -1,
    });
    a.bgtz(MAIN_COUNT, loop_top);
    a.bind(done);
    a.halt();
}

/// Binary if-tree dispatch over `$s1` ∈ [lo, hi).
fn emit_tree(a: &mut Assembler, lo: usize, hi: usize, fn_labels: &[Label], after: Label) {
    if hi - lo == 1 {
        a.jal(fn_labels[lo]);
        a.j(after);
        return;
    }
    let mid = lo + (hi - lo) / 2;
    let right = a.new_label();
    a.push(Instruction::Slti {
        rt: Reg::AT,
        rs: FN_INDEX,
        imm: mid as i16,
    });
    a.beq(Reg::AT, Reg::ZERO, right);
    emit_tree(a, lo, mid, fn_labels, after);
    a.bind(right);
    emit_tree(a, mid, hi, fn_labels, after);
}

fn emit_function(
    a: &mut Assembler,
    profile: &BenchmarkProfile,
    rng: &mut Rng,
    k: u32,
    fn_labels: &[Label],
    data_bytes: u32,
) {
    a.bind(fn_labels[k as usize]);
    a.push(Instruction::Addiu {
        rt: Reg::SP,
        rs: Reg::SP,
        imm: -8,
    });
    a.push(Instruction::Sw {
        rt: Reg::RA,
        base: Reg::SP,
        offset: 4,
    });

    // Optional helper call: a strictly lower index keeps the call graph
    // acyclic; a *nearby* index gives it the spatial clustering of real
    // call graphs (callees live close to callers in the binary).
    if k > 0 && rng.gen_bool(profile.call_prob) {
        let lo = k.saturating_sub(12);
        let callee = rng.gen_range(lo..k) as usize;
        a.jal(fn_labels[callee]);
    }

    // Inner loop with ±50% jittered trip count.
    let jitter = (profile.loop_iters / 2).max(1);
    let iters = (profile.loop_iters + rng.gen_range(0..=jitter)).min(30_000);
    a.li(LOOP_COUNT, iters as i32);
    let loop_top = a.new_label();
    a.bind(loop_top);

    // Block layout: execution order is 0..n, but with probability
    // `layout_shuffle` the blocks are *placed* in permuted order and
    // threaded by jumps — the non-sequential layout of compiled if/else
    // chains, which is what keeps real miss streams from being a pure
    // linear walk.
    let n = profile.body_blocks as usize;
    let block_labels: Vec<Label> = (0..n).map(|_| a.new_label()).collect();
    let epilogue = a.new_label();
    let mut layout: Vec<usize> = (0..n).collect();
    if rng.gen_bool(profile.layout_shuffle) {
        rng.shuffle(&mut layout);
    }
    if layout[0] != 0 {
        a.j(block_labels[0]);
    }
    for (pos, &b) in layout.iter().enumerate() {
        a.bind(block_labels[b]);
        emit_block(a, profile, rng, k, b as u32, data_bytes);
        if b + 1 == n {
            // Execution-final block carries the loop latch.
            a.push(Instruction::Addiu {
                rt: LOOP_COUNT,
                rs: LOOP_COUNT,
                imm: -1,
            });
            a.bgtz(LOOP_COUNT, loop_top);
            a.j(epilogue);
        } else if layout.get(pos + 1) != Some(&(b + 1)) {
            a.j(block_labels[b + 1]);
        }
    }

    a.bind(epilogue);
    a.push(Instruction::Lw {
        rt: Reg::RA,
        base: Reg::SP,
        offset: 4,
    });
    a.push(Instruction::Addiu {
        rt: Reg::SP,
        rs: Reg::SP,
        imm: 8,
    });
    a.push(Instruction::Jr { rs: Reg::RA });
}

/// Scratch registers blocks may write (never `$t7`, the loop counter, nor
/// the `$s` registers the dispatcher owns). A wide pool keeps the register
/// fields of generated instructions diverse, as compiler output is.
const SCRATCH: [Reg; 12] = [
    Reg::T0,
    Reg::T1,
    Reg::T2,
    Reg::T3,
    Reg::T4,
    Reg::T5,
    Reg::T6,
    Reg::T8,
    Reg::A0,
    Reg::A1,
    Reg::A2,
    Reg::V1,
];

fn emit_block(
    a: &mut Assembler,
    profile: &BenchmarkProfile,
    rng: &mut Rng,
    k: u32,
    b: u32,
    data_bytes: u32,
) {
    let pick = |rng: &mut Rng| SCRATCH[rng.gen_range(0..SCRATCH.len())];

    // ALU cluster.
    let alu_ops = rng.gen_range(3..=6);
    for _ in 0..alu_ops {
        if rng.gen_range(0..1000) < profile.rare_imm_permille {
            // A unique 32-bit constant: lui+ori, both half-words rare.
            let value = rng.gen_u32() | 0x1_0000; // ensure lui imm non-zero
            a.push(Instruction::Lui {
                rt: Reg::T6,
                imm: (value >> 16) as u16,
            });
            a.push(Instruction::Ori {
                rt: Reg::T6,
                rs: Reg::T6,
                imm: value as u16,
            });
            continue;
        }
        let (rd, rs, rt) = (pick(rng), pick(rng), pick(rng));
        match rng.gen_range(0..12) {
            0 => a.push(Instruction::Addu { rd, rs, rt }),
            1 => a.push(Instruction::Subu { rd, rs, rt }),
            2 => a.push(Instruction::Xor { rd, rs, rt }),
            3 => a.push(Instruction::Or { rd, rs, rt }),
            4 => a.push(Instruction::And { rd, rs, rt }),
            5 => a.push(Instruction::Slt { rd, rs, rt }),
            6 => a.push(Instruction::Sll {
                rd,
                rt,
                shamt: rng.gen_range(1..31),
            }),
            7 => a.push(Instruction::Srl {
                rd,
                rt,
                shamt: rng.gen_range(1..31),
            }),
            // Wide immediates: stack offsets, struct offsets, masks — the
            // low half-words real compilers emit.
            8 | 9 => a.push(Instruction::Addiu {
                rt: rd,
                rs,
                imm: rng.gen_range(-2048..2048),
            }),
            10 => a.push(Instruction::Andi {
                rt: rd,
                rs,
                imm: rng.gen_range(0..4096),
            }),
            _ => a.push(Instruction::Ori {
                rt: rd,
                rs,
                imm: rng.gen_range(0..4096),
            }),
        };
    }

    // One data-memory touch per block, with per-function spatial locality.
    let region = (k.wrapping_mul(997).wrapping_mul(profile.data_stride)) % data_bytes;
    let addr =
        DATA_BASE + (region + b * profile.data_stride) % data_bytes.saturating_sub(16).max(4);
    let addr = addr & !3;
    let offset = rng.gen_range(0..32) * 4;
    a.li(Reg::T9, addr as i32);
    if b % 3 == 2 {
        a.push(Instruction::Sw {
            rt: pick(rng),
            base: Reg::T9,
            offset,
        });
    } else {
        a.push(Instruction::Lw {
            rt: Reg::T0,
            base: Reg::T9,
            offset,
        });
    }

    // FP kernel for media-style codes.
    if profile.fp_mix && b % 3 == 1 {
        use codepack_isa::FReg;
        let mut f = |i: u8| FReg::new(rng.gen_range(0..8) * 2 + i);
        let (f0, f1, f2, f3) = (f(0), f(1), f(0), f(1));
        a.push(Instruction::Lwc1 {
            ft: f0,
            base: Reg::T9,
            offset: 0,
        });
        a.push(Instruction::Lwc1 {
            ft: f1,
            base: Reg::T9,
            offset: 4,
        });
        a.push(Instruction::AddS {
            fd: f2,
            fs: f0,
            ft: f1,
        });
        a.push(Instruction::MulS {
            fd: f3,
            fs: f2,
            ft: f1,
        });
        a.push(Instruction::Swc1 {
            ft: f3,
            base: Reg::T9,
            offset: 8,
        });
    }

    // Data-dependent forward skip: the branchiness of control code.
    let skip = a.new_label();
    a.push(Instruction::Andi {
        rt: Reg::AT,
        rs: Reg::T0,
        imm: if b.is_multiple_of(2) { 1 } else { 3 },
    });
    a.beq(Reg::AT, Reg::ZERO, skip);
    a.push(Instruction::Addiu {
        rt: Reg::T1,
        rs: Reg::T1,
        imm: 1,
    });
    a.push(Instruction::Xor {
        rd: Reg::T2,
        rs: Reg::T2,
        rt: Reg::T1,
    });
    a.bind(skip);
}

#[cfg(test)]
mod tests {
    use super::*;
    use codepack_cpu_less_check::run_sanity;

    /// Minimal functional run without depending on codepack-cpu (which
    /// depends on codepack-core, not on us — no cycle, but synth stays
    /// lean). We hand-roll a tiny interpreter check instead: decode every
    /// word and ensure branch targets stay in range.
    mod codepack_cpu_less_check {
        use codepack_isa::{decode, Instruction, Program, TEXT_BASE};

        pub fn run_sanity(p: &Program) {
            let n = p.text_words().len() as i64;
            for (i, &w) in p.text_words().iter().enumerate() {
                let insn = decode(w).unwrap_or_else(|e| panic!("word {i}: {e}"));
                match insn {
                    Instruction::Beq { offset, .. }
                    | Instruction::Bne { offset, .. }
                    | Instruction::Blez { offset, .. }
                    | Instruction::Bgtz { offset, .. }
                    | Instruction::Bltz { offset, .. }
                    | Instruction::Bgez { offset, .. } => {
                        let target = i as i64 + 1 + i64::from(offset);
                        assert!((0..n).contains(&target), "branch at {i} exits text");
                    }
                    Instruction::J { target } | Instruction::Jal { target } => {
                        let idx = i64::from(target) - i64::from(TEXT_BASE / 4);
                        assert!((0..n).contains(&idx), "jump at {i} exits text");
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn all_profiles_generate_wellformed_code() {
        for profile in BenchmarkProfile::suite() {
            let p = generate(&profile, 1);
            run_sanity(&p);
            assert!(p.text_words().len() > 1000, "{} too small", profile.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p1 = generate(&BenchmarkProfile::go_like(), 99);
        let p2 = generate(&BenchmarkProfile::go_like(), 99);
        assert_eq!(p1, p2);
    }

    #[test]
    fn different_seeds_differ() {
        let p1 = generate(&BenchmarkProfile::go_like(), 1);
        let p2 = generate(&BenchmarkProfile::go_like(), 2);
        assert_ne!(p1.text_words(), p2.text_words());
    }

    #[test]
    fn text_sizes_track_the_paper_ordering() {
        // Paper Table 3: cc1 > vortex > go > perl > mpeg2enc > pegwit.
        let size = |p: &BenchmarkProfile| generate(p, 1).text_size_bytes();
        let cc1 = size(&BenchmarkProfile::cc1_like());
        let vortex = size(&BenchmarkProfile::vortex_like());
        let go = size(&BenchmarkProfile::go_like());
        let perl = size(&BenchmarkProfile::perl_like());
        let mpeg = size(&BenchmarkProfile::mpeg2enc_like());
        let pegwit = size(&BenchmarkProfile::pegwit_like());
        assert!(cc1 > vortex && vortex > go && go > perl && perl > mpeg && mpeg > pegwit);
    }

    #[test]
    fn fp_mix_emits_fp_instructions() {
        let p = generate(&BenchmarkProfile::mpeg2enc_like(), 1);
        let has_fp = p
            .text_words()
            .iter()
            .any(|&w| matches!(codepack_isa::decode(w), Ok(i) if i.is_fp()));
        assert!(has_fp);
        let p = generate(&BenchmarkProfile::pegwit_like(), 1);
        let has_fp = p
            .text_words()
            .iter()
            .any(|&w| matches!(codepack_isa::decode(w), Ok(i) if i.is_fp()));
        assert!(!has_fp, "integer benchmark must not use the FPU");
    }
}
