//! Static instruction-mix analysis of generated programs.
//!
//! Used to validate that the synthetic benchmarks have compiler-plausible
//! instruction mixes (the paper's workloads are real compiled programs, so
//! wildly unrealistic mixes would undermine the substitution argument).

use codepack_isa::{decode, Program};

/// Static instruction-category counts of a text section.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InstructionMix {
    /// Loads (integer + FP).
    pub loads: u64,
    /// Stores (integer + FP).
    pub stores: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Jumps, calls, and returns.
    pub jumps: u64,
    /// Floating-point arithmetic.
    pub fp: u64,
    /// Integer multiply/divide.
    pub muldiv: u64,
    /// Everything else (integer ALU, moves, system).
    pub alu: u64,
    /// Total decoded instructions.
    pub total: u64,
}

impl InstructionMix {
    /// Fraction helper: `count / total` (0 when empty).
    fn frac(&self, count: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            count as f64 / self.total as f64
        }
    }

    /// Load fraction.
    pub fn load_fraction(&self) -> f64 {
        self.frac(self.loads)
    }

    /// Store fraction.
    pub fn store_fraction(&self) -> f64 {
        self.frac(self.stores)
    }

    /// Conditional-branch fraction.
    pub fn branch_fraction(&self) -> f64 {
        self.frac(self.branches)
    }

    /// Control-transfer fraction (branches + jumps).
    pub fn control_fraction(&self) -> f64 {
        self.frac(self.branches + self.jumps)
    }
}

/// Computes the static instruction mix of `program`'s text section.
///
/// ```
/// use codepack_synth::{generate, instruction_mix, BenchmarkProfile};
/// let p = generate(&BenchmarkProfile::go_like(), 1);
/// let mix = instruction_mix(&p);
/// assert!(mix.branch_fraction() > 0.05, "compiled code is branchy");
/// ```
pub fn instruction_mix(program: &Program) -> InstructionMix {
    let mut mix = InstructionMix::default();
    for &w in program.text_words() {
        let Ok(insn) = decode(w) else { continue };
        mix.total += 1;
        if insn.is_load() {
            mix.loads += 1;
        } else if insn.is_store() {
            mix.stores += 1;
        } else if insn.is_branch() {
            mix.branches += 1;
        } else if insn.is_jump() {
            mix.jumps += 1;
        } else if insn.is_fp() {
            mix.fp += 1;
        } else if insn.is_muldiv() {
            mix.muldiv += 1;
        } else {
            mix.alu += 1;
        }
    }
    mix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, BenchmarkProfile};

    #[test]
    fn mixes_are_compiler_plausible() {
        // SPEC-era integer codes: ~20-30% memory ops, ~10-25% control.
        for profile in BenchmarkProfile::suite() {
            let p = generate(&profile, 3);
            let mix = instruction_mix(&p);
            let mem = mix.load_fraction() + mix.store_fraction();
            assert!(
                (0.05..0.40).contains(&mem),
                "{}: memory fraction {:.2} out of band",
                profile.name,
                mem
            );
            assert!(
                (0.08..0.35).contains(&mix.control_fraction()),
                "{}: control fraction {:.2} out of band",
                profile.name,
                mix.control_fraction()
            );
        }
    }

    #[test]
    fn only_media_profiles_use_fp() {
        let mpeg = instruction_mix(&generate(&BenchmarkProfile::mpeg2enc_like(), 3));
        assert!(mpeg.fp > 0);
        let go = instruction_mix(&generate(&BenchmarkProfile::go_like(), 3));
        assert_eq!(go.fp, 0);
    }

    #[test]
    fn counts_partition_total() {
        let p = generate(&BenchmarkProfile::pegwit_like(), 3);
        let m = instruction_mix(&p);
        assert_eq!(
            m.loads + m.stores + m.branches + m.jumps + m.fp + m.muldiv + m.alu,
            m.total
        );
        assert_eq!(m.total, p.text_words().len() as u64, "all words decode");
    }
}
