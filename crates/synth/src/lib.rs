//! # codepack-synth — deterministic synthetic benchmarks
//!
//! The paper evaluates CodePack on SPEC CINT95 and MediaBench binaries that
//! we cannot redistribute or execute; this crate generates *executable SR32
//! stand-ins* whose properties match what drives the paper's results: text
//! size, I-cache miss class, call-graph shape, and half-word value skew
//! (compressibility). See `BenchmarkProfile` for the six workloads and
//! DESIGN.md for the substitution argument.
//!
//! ```
//! use codepack_synth::{generate, BenchmarkProfile};
//! let program = generate(&BenchmarkProfile::mpeg2enc_like(), 42);
//! assert!(program.text_size_bytes() > 64 * 1024);
//! ```

#![forbid(unsafe_code)]

mod gen;
mod mix;
mod profile;

pub use gen::generate;
pub use mix::{instruction_mix, InstructionMix};
pub use profile::BenchmarkProfile;
