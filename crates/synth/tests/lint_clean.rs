//! The generator's lint-clean contract: every synthetic benchmark must
//! pass `sr32lint` with zero errors *and* zero warnings — all code
//! reachable, every branch in bounds, no register read before a defining
//! path, and (for the compressed ones) a byte-exact static decompression
//! whose recounted stats equal the codec's.
//!
//! This is the static counterpart of `run_sanity`'s dynamic checks: a
//! generator change that emits an unreachable block, an out-of-range
//! branch, or an uninitialized read now fails here, with an address.

use codepack_analyze::{lint_compressed, lint_program};
use codepack_core::{CodePackImage, CompressionConfig};
use codepack_synth::{generate, BenchmarkProfile};

const SEED: u64 = 42;

#[test]
fn every_profile_lints_clean() {
    for profile in BenchmarkProfile::suite() {
        let program = generate(&profile, SEED);
        let report = lint_program(&program);
        assert!(
            report.is_clean(),
            "{} has lint errors:\n{}",
            profile.name,
            report.render()
        );
        assert_eq!(
            report.warnings(),
            0,
            "{} has lint warnings:\n{}",
            profile.name,
            report.render()
        );
    }
}

#[test]
fn compressed_images_lint_clean_with_exact_ratio_agreement() {
    // The two smallest profiles keep this fast in debug builds; the full
    // suite is covered by the CI tier-2 smoke via `cpack lint`.
    for profile in [
        BenchmarkProfile::pegwit_like(),
        BenchmarkProfile::mpeg2enc_like(),
    ] {
        let program = generate(&profile, SEED);
        let image = CodePackImage::compress(program.text_words(), &CompressionConfig::default());
        let report = lint_compressed(&program, &image);
        assert!(
            report.is_clean(),
            "{} compressed image has lint errors:\n{}",
            profile.name,
            report.render()
        );
        let ratio = report.ratio.expect("image lint produces a ratio report");
        assert_eq!(
            ratio.static_ratio, ratio.codec_ratio,
            "{}: static walk and codec must agree exactly",
            profile.name
        );
    }
}

#[test]
fn generator_stays_clean_across_seeds() {
    // The contract holds for the generator, not one lucky seed.
    let profile = BenchmarkProfile::pegwit_like();
    for seed in [1u64, 7, 1999] {
        let program = generate(&profile, seed);
        let report = lint_program(&program);
        assert!(
            report.is_clean() && report.warnings() == 0,
            "seed {seed}:\n{}",
            report.render()
        );
    }
}
