//! The paper's future-work suggestion, quantified: "Even completely
//! software-managed decompression may be an attractive option to resource
//! limited computers." A trap handler decodes CodePack blocks in software;
//! how much slower is it than the hardware decompressor, and where is it
//! tolerable?

use codepack_baselines::{SoftwareDecompConfig, SoftwareDecompFetch};
use codepack_bench::{run_with_engine, Workload};
use codepack_isa::TEXT_BASE;
use codepack_sim::{ArchConfig, CodeModel, Table};
use std::sync::Arc;

fn main() {
    let workloads = Workload::suite();
    let arch = ArchConfig::four_issue();

    let mut table = Table::new(
        [
            "Bench",
            "Native IPC",
            "HW CodePack",
            "SW CodePack",
            "SW vs native",
            "SW penalty/miss",
        ]
        .map(String::from)
        .to_vec(),
    )
    .with_title("Software-managed decompression (4-issue, CodePack images)");

    for w in &workloads {
        let native = w.run(arch, CodeModel::Native);
        let hw = w.run(arch, CodeModel::codepack_optimized());
        let engine = SoftwareDecompFetch::new(
            Arc::clone(&w.image),
            arch.memory,
            SoftwareDecompConfig::default(),
            TEXT_BASE,
        );
        let (sw_pipe, sw_fetch) = run_with_engine(&w.program, arch, Box::new(engine));
        table.row(vec![
            w.profile.name.to_string(),
            format!("{:.2}", native.ipc()),
            format!("{:.2}", hw.ipc()),
            format!("{:.2}", sw_pipe.ipc()),
            format!("{:.2}x", native.cycles() as f64 / sw_pipe.cycles as f64),
            format!("{:.0} cyc", sw_fetch.avg_miss_penalty()),
        ]);
    }
    table.print();
    println!(
        "(software decompression is viable exactly where the paper says: \
         loop-dominated codes with tiny miss rates; miss-heavy codes need the hardware)"
    );
}
