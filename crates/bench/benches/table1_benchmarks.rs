//! Paper Table 1: the benchmark inventory — instructions executed and the
//! L1 I-cache miss rate on the 4-issue machine.
//!
//! The paper runs each benchmark to completion (>1 billion instructions);
//! we simulate `CODEPACK_INSNS` instructions (shapes, not absolute counts).

use codepack_bench::{max_insns, paper, Workload};
use codepack_sim::{ArchConfig, CodeModel, Table};

fn main() {
    let mut table = Table::new(
        ["Bench", "Insns simulated", "I-miss rate (4-issue)", "paper"]
            .map(String::from)
            .to_vec(),
    )
    .with_title("Table 1: Benchmarks");

    for (i, w) in Workload::suite().into_iter().enumerate() {
        let r = w.run(ArchConfig::four_issue(), CodeModel::Native);
        table.row(vec![
            w.profile.name.to_string(),
            format!("{}", r.retired_instructions),
            format!("{:.2}%", r.imiss_per_insn() * 100.0),
            format!("{:.1}%", paper::TABLE1_MISS[i].1),
        ]);
    }
    table.print();
    println!(
        "(paper column: miss rates reported in Table 1 for >1e9-instruction runs; \
              ours use {} instructions)",
        max_insns()
    );
}
