//! Paper Table 3: compression ratio of the `.text` section.

use codepack_bench::{paper, Workload};
use codepack_sim::Table;

fn main() {
    let mut table = Table::new(
        [
            "Bench",
            "Original (bytes)",
            "Compressed (bytes)",
            "Ratio",
            "paper",
        ]
        .map(String::from)
        .to_vec(),
    )
    .with_title("Table 3: Compression ratio of .text section (smaller is better)");

    for (i, w) in Workload::suite().into_iter().enumerate() {
        let stats = w.image.stats();
        table.row(vec![
            w.profile.name.to_string(),
            format!("{}", stats.original_bytes),
            format!("{}", stats.total_bytes()),
            format!("{:.1}%", stats.compression_ratio() * 100.0),
            format!("{:.1}%", paper::TABLE3_RATIO[i].1),
        ]);
    }
    table.print();
}
