//! Paper Table 10: sensitivity to L1 I-cache size — speedup of baseline
//! and optimized CodePack over native code with 1/4/16/64 KB caches on the
//! 4-issue machine (native is re-simulated at each size).

use codepack_bench::Workload;
use codepack_sim::{ArchConfig, CodeModel, Table};

fn main() {
    let sizes_kb = [1u32, 4, 16, 64];
    let mut headers = vec!["Bench".to_string()];
    for kb in sizes_kb {
        headers.push(format!("{kb}KB CP"));
        headers.push(format!("{kb}KB Opt"));
    }
    let mut table =
        Table::new(headers).with_title("Table 10: speedup over native by I-cache size (4-issue)");

    for w in Workload::suite() {
        let mut row = vec![w.profile.name.to_string()];
        for kb in sizes_kb {
            let arch = ArchConfig::four_issue().with_icache_kb(kb);
            let native = w.run(arch, CodeModel::Native);
            let packed = w.run(arch, CodeModel::codepack_baseline());
            let opt = w.run(arch, CodeModel::codepack_optimized());
            row.push(format!("{:.2}", packed.speedup_over(&native)));
            row.push(format!("{:.2}", opt.speedup_over(&native)));
        }
        table.row(row);
    }
    table.print();
    println!("(paper: optimized CodePack beats native at every size; both converge to 1.0 as the cache grows)");
}
