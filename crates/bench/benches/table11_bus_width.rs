//! Paper Table 11: sensitivity to main-memory bus width — speedup of
//! baseline and optimized CodePack over native with 16/32/64/128-bit buses
//! on the 4-issue machine.

use codepack_bench::Workload;
use codepack_sim::{ArchConfig, CodeModel, Table};

fn main() {
    let widths = [16u32, 32, 64, 128];
    let mut headers = vec!["Bench".to_string()];
    for bits in widths {
        headers.push(format!("{bits}b CP"));
        headers.push(format!("{bits}b Opt"));
    }
    let mut table = Table::new(headers)
        .with_title("Table 11: speedup over native by memory bus width (4-issue)");

    for w in Workload::suite() {
        let mut row = vec![w.profile.name.to_string()];
        for bits in widths {
            let arch = ArchConfig::four_issue().with_bus_bits(bits);
            let native = w.run(arch, CodeModel::Native);
            let packed = w.run(arch, CodeModel::codepack_baseline());
            let opt = w.run(arch, CodeModel::codepack_optimized());
            row.push(format!("{:.2}", packed.speedup_over(&native)));
            row.push(format!("{:.2}", opt.speedup_over(&native)));
        }
        table.row(row);
    }
    table.print();
    println!("(paper: compression wins on narrow buses — fewer beats per line — and loses its edge on wide ones)");
}
