//! Ablations of the design decisions DESIGN.md calls out — not a paper
//! table, but evidence for why each CodePack feature exists.
//!
//! Compression-side: the raw-block fallback, the dedicated low-zero
//! codeword, and the dictionary admission threshold. Timing-side: the
//! 16-instruction output buffer (the paper's "inherent prefetching"),
//! instruction forwarding, and the index cache itself.

use codepack_bench::Workload;
use codepack_core::{CodePackImage, CompressionConfig, DecompressorConfig, IndexCacheModel};
use codepack_sim::{ArchConfig, CodeModel, Table};
use codepack_synth::{generate, BenchmarkProfile};

fn main() {
    compression_ablation();
    println!();
    timing_ablation();
}

fn compression_ablation() {
    let mut table = Table::new(
        ["Variant", "cc1", "go", "pegwit"]
            .map(String::from)
            .to_vec(),
    )
    .with_title("Ablation A: compression ratio by codec feature");

    let texts: Vec<Vec<u32>> = [
        BenchmarkProfile::cc1_like(),
        BenchmarkProfile::go_like(),
        BenchmarkProfile::pegwit_like(),
    ]
    .iter()
    .map(|p| generate(p, 42).text_words().to_vec())
    .collect();

    let variants: [(&str, CompressionConfig); 4] = [
        ("full CodePack", CompressionConfig::default()),
        (
            "no raw-block fallback",
            CompressionConfig {
                raw_block_fallback: false,
                ..CompressionConfig::default()
            },
        ),
        (
            "no low-zero codeword",
            CompressionConfig {
                pin_low_zero: false,
                ..CompressionConfig::default()
            },
        ),
        (
            "admit singletons to dict",
            CompressionConfig {
                dict_min_count: 1,
                ..CompressionConfig::default()
            },
        ),
    ];

    for (label, cfg) in variants {
        let mut row = vec![label.to_string()];
        for text in &texts {
            let img = CodePackImage::compress(text, &cfg);
            row.push(format!("{:.1}%", img.stats().compression_ratio() * 100.0));
        }
        table.row(row);
    }
    table.print();
}

fn timing_ablation() {
    let w = Workload::new(BenchmarkProfile::go_like());
    let arch = ArchConfig::four_issue();
    let native = w.run(arch, CodeModel::Native);

    let variants: [(&str, DecompressorConfig); 5] = [
        ("baseline", DecompressorConfig::baseline()),
        (
            "no output buffer",
            DecompressorConfig {
                output_buffer: false,
                ..DecompressorConfig::baseline()
            },
        ),
        (
            "no forwarding",
            DecompressorConfig {
                forwarding: false,
                ..DecompressorConfig::baseline()
            },
        ),
        (
            "no index cache at all",
            DecompressorConfig {
                index_cache: IndexCacheModel::None,
                ..DecompressorConfig::baseline()
            },
        ),
        ("optimized", DecompressorConfig::optimized()),
    ];

    let mut table = Table::new(
        ["Variant", "speedup vs native", "avg miss penalty (cyc)"]
            .map(String::from)
            .to_vec(),
    )
    .with_title("Ablation B: decompressor features (go, 4-issue)");
    for (label, cfg) in variants {
        let r = w.run(arch, CodeModel::codepack_with(cfg));
        table.row(vec![
            label.to_string(),
            format!("{:.3}", r.speedup_over(&native)),
            format!("{:.1}", r.fetch.avg_miss_penalty()),
        ]);
    }
    table.print();
}
