//! Paper Table 8: speedup over native code from wider decompression —
//! 1 (baseline), 2, and 16 instructions decompressed per cycle, on the
//! 4-issue machine. 16 decoders is the fastest possible: a compression
//! block holds only 16 instructions.

use codepack_bench::Workload;
use codepack_core::DecompressorConfig;
use codepack_sim::{ArchConfig, CodeModel, Table};

fn main() {
    let mut table = Table::new(
        ["Bench", "CodePack", "2 decoders", "16 decoders"]
            .map(String::from)
            .to_vec(),
    )
    .with_title("Table 8: speedup over native due to decompression rate (4-issue)");

    let arch = ArchConfig::four_issue();
    for w in Workload::suite() {
        let native = w.run(arch, CodeModel::Native);
        let speedup = |rate: u32| {
            w.run(
                arch,
                CodeModel::codepack_with(DecompressorConfig::decoders(rate)),
            )
            .speedup_over(&native)
        };
        table.row(vec![
            w.profile.name.to_string(),
            format!("{:.2}", speedup(1)),
            format!("{:.2}", speedup(2)),
            format!("{:.2}", speedup(16)),
        ]);
    }
    table.print();
}
