//! Paper Table 12: sensitivity to main-memory latency — speedup of
//! baseline and optimized CodePack over native with memory latency scaled
//! 0.5×–8× on the 4-issue machine.

use codepack_bench::Workload;
use codepack_sim::{ArchConfig, CodeModel, Table};

fn main() {
    let scales = [0.5f64, 1.0, 2.0, 4.0, 8.0];
    let mut headers = vec!["Bench".to_string()];
    for s in scales {
        headers.push(format!("{s}x CP"));
        headers.push(format!("{s}x Opt"));
    }
    let mut table =
        Table::new(headers).with_title("Table 12: speedup over native by memory latency (4-issue)");

    for w in Workload::suite() {
        let mut row = vec![w.profile.name.to_string()];
        for s in scales {
            let arch = ArchConfig::four_issue().with_memory_scale(s);
            let native = w.run(arch, CodeModel::Native);
            let packed = w.run(arch, CodeModel::codepack_baseline());
            let opt = w.run(arch, CodeModel::codepack_optimized());
            row.push(format!("{:.2}", packed.speedup_over(&native)));
            row.push(format!("{:.2}", opt.speedup_over(&native)));
        }
        table.row(row);
    }
    table.print();
    println!("(paper: as latency grows the optimized decompressor gains — it makes fewer, denser memory accesses)");
}
