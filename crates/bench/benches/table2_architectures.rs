//! Paper Table 2: the simulated architectures. Pure configuration — this
//! target prints the three machines exactly as the simulator will run them,
//! so the experiment record is self-describing.

use codepack_sim::{ArchConfig, Table};

fn main() {
    let archs = [
        ArchConfig::one_issue(),
        ArchConfig::four_issue(),
        ArchConfig::eight_issue(),
    ];
    let mut t = Table::new(
        ["Parameter", "1-issue", "4-issue", "8-issue"]
            .map(String::from)
            .to_vec(),
    )
    .with_title("Table 2: simulated architectures");

    let row = |label: &str, f: &dyn Fn(&ArchConfig) -> String| {
        vec![label.to_string(), f(&archs[0]), f(&archs[1]), f(&archs[2])]
    };

    t.row(row("fetch queue size", &|a| {
        a.pipeline.fetch_queue.to_string()
    }));
    t.row(row("decode width", &|a| {
        a.pipeline.decode_width.to_string()
    }));
    t.row(row("issue width", &|a| {
        format!(
            "{} {}",
            a.pipeline.issue_width,
            if a.pipeline.in_order {
                "in-order"
            } else {
                "out-of-order"
            }
        )
    }));
    t.row(row("commit width", &|a| {
        a.pipeline.commit_width.to_string()
    }));
    t.row(row("RUU entries", &|a| a.pipeline.ruu_size.to_string()));
    t.row(row("load/store queue", &|a| {
        a.pipeline.lsq_size.to_string()
    }));
    t.row(row("function units", &|a| {
        format!(
            "alu:{} mult:{} mem:{} fpalu:{} fpmult:{}",
            a.pipeline.fu.int_alu,
            a.pipeline.fu.int_mult,
            a.pipeline.fu.mem_port,
            a.pipeline.fu.fp_alu,
            a.pipeline.fu.fp_mult
        )
    }));
    t.row(row("branch predictor", &|a| {
        format!("{:?}", a.pipeline.predictor)
    }));
    t.row(row("L1 I-cache", &|a| {
        format!(
            "{}KB, {}B lines, {}-assoc",
            a.icache.size_bytes() / 1024,
            a.icache.line_bytes(),
            a.icache.assoc()
        )
    }));
    t.row(row("L1 D-cache", &|a| {
        format!(
            "{}KB, {}B lines, {}-assoc",
            a.dcache.size_bytes() / 1024,
            a.dcache.line_bytes(),
            a.dcache.assoc()
        )
    }));
    t.row(row("memory latency", &|a| {
        format!(
            "{} cyc, {} cyc rate",
            a.memory.first_access_cycles(),
            a.memory.next_access_cycles()
        )
    }));
    t.row(row("memory width", &|a| {
        format!("{} bits", a.memory.bus_bits())
    }));
    t.print();
    println!(
        "(RUU/LSQ depths are our choices where the published table is illegible — see DESIGN.md)"
    );
}
