//! Paper Table 4: composition of the compressed region — what fraction of
//! the compressed image is index table, dictionaries, codeword tags,
//! dictionary indices, raw tags, raw (uncompressed) bits, and alignment pad.

use codepack_bench::{paper, Workload};
use codepack_sim::Table;

fn main() {
    let headers = [
        "Bench", "Index", "Dict", "Tags", "Indices", "RawTag", "RawBits", "Pad", "Total B",
    ]
    .map(String::from)
    .to_vec();
    let mut measured = Table::new(headers.clone())
        .with_title("Table 4: Composition of compressed region (measured)");
    for w in Workload::suite() {
        let s = w.image.stats();
        let f = s.table4_fractions();
        let mut row = vec![w.profile.name.to_string()];
        row.extend(f.iter().map(|v| format!("{:.1}%", v * 100.0)));
        row.push(format!("{}", s.total_bytes()));
        measured.row(row);
    }
    measured.print();

    let mut reference = Table::new(headers).with_title("Table 4 (paper, for comparison)");
    for (name, f) in paper::TABLE4_COMPOSITION {
        let mut row = vec![name.to_string()];
        row.extend(f.iter().map(|v| format!("{v:.1}%")));
        row.push("-".to_string());
        reference.row(row);
    }
    reference.print();
}
