//! Paper Table 5: instructions per cycle for native code, baseline
//! CodePack, and the optimized CodePack model across the 1-, 4-, and
//! 8-issue architectures.

use codepack_bench::Workload;
use codepack_sim::{ArchConfig, CodeModel, Table};

fn main() {
    let workloads = Workload::suite();
    let archs = [
        ArchConfig::one_issue(),
        ArchConfig::four_issue(),
        ArchConfig::eight_issue(),
    ];

    for arch in archs {
        let mut table = Table::new(
            ["Bench", "Native", "CodePack", "Optimized"]
                .map(String::from)
                .to_vec(),
        )
        .with_title(format!("Table 5 ({}): instructions per cycle", arch.name));
        for w in &workloads {
            let native = w.run(arch, CodeModel::Native);
            let packed = w.run(arch, CodeModel::codepack_baseline());
            let opt = w.run(arch, CodeModel::codepack_optimized());
            table.row(vec![
                w.profile.name.to_string(),
                format!("{:.2}", native.ipc()),
                format!("{:.2}", packed.ipc()),
                format!("{:.2}", opt.ipc()),
            ]);
        }
        table.print();
        println!();
    }
}
