//! Beyond the paper: does CodePack still matter once the system can afford
//! a unified L2? The decompressor moves behind the L2 (the L2 holds native
//! lines), so it services only L2 misses. The paper's conclusion — that
//! compression helps when misses reach slow memory — predicts the benefit
//! and the penalty should both shrink as the L2 absorbs the miss stream.

use codepack_bench::Workload;
use codepack_sim::{ArchConfig, CodeModel, Table};

fn main() {
    let mut table = Table::new(
        [
            "Bench",
            "no-L2 CP",
            "no-L2 Opt",
            "128KB-L2 CP",
            "128KB-L2 Opt",
            "L2 missrate",
        ]
        .map(String::from)
        .to_vec(),
    )
    .with_title("CodePack behind a unified L2 (speedup over native, 4-issue)");

    for w in Workload::suite() {
        let flat = ArchConfig::four_issue();
        let l2 = ArchConfig::four_issue().with_l2_kb(128);

        let native_flat = w.run(flat, CodeModel::Native);
        let cp_flat = w.run(flat, CodeModel::codepack_baseline());
        let opt_flat = w.run(flat, CodeModel::codepack_optimized());

        let native_l2 = w.run(l2, CodeModel::Native);
        let cp_l2 = w.run(l2, CodeModel::codepack_baseline());
        let opt_l2 = w.run(l2, CodeModel::codepack_optimized());

        let l2_missrate = opt_l2.pipeline.l2.map_or(0.0, |s| s.miss_ratio());

        table.row(vec![
            w.profile.name.to_string(),
            format!("{:.2}", cp_flat.speedup_over(&native_flat)),
            format!("{:.2}", opt_flat.speedup_over(&native_flat)),
            format!("{:.2}", cp_l2.speedup_over(&native_l2)),
            format!("{:.2}", opt_l2.speedup_over(&native_l2)),
            format!("{:.0}%", l2_missrate * 100.0),
        ]);
    }
    table.print();
    println!(
        "(an L2 compresses the spread toward 1.0 from both sides: the decompressor \
         neither hurts nor helps much once the L2 absorbs the miss stream — \
         but the 40% ROM saving remains)"
    );
}
