//! `.cpk` frame pack/unpack throughput: serial vs parallel group pipeline.
//!
//! Packs the whole six-profile corpus into one frame and times the four
//! interesting regimes — pack and unpack, each at one worker and at
//! `FRAME_WORKERS` workers — then merges a `frame` section into
//! `BENCH_codec.json` (see [`codepack_bench::scorecard`]; the per-profile
//! decode rows from `decode_throughput` are preserved).
//!
//! The section records the machine's CPU count alongside the worker
//! count: parallel speedup is physics, not bookkeeping, so the validator
//! (`tools/validate_bench.py`) only enforces a speedup floor when
//! `cpus >= workers`. A one-CPU container still produces a valid
//! scorecard — its speedups just hover around 1.0 and are exempt.
//!
//! Run modes match `decode_throughput`: full by default, smoke under
//! `TESTKIT_BENCH_FAST=1` with `BENCH_CODEC_OUT` pointed at scratch.

use codepack_bench::scorecard::{self, FrameSection, Scorecard, SCORECARD_SEED};
use codepack_core::frame::{pack_frame, unpack_frame, PackOptions, UnpackOptions};
use codepack_synth::{generate, BenchmarkProfile};
use codepack_testkit::{Bench, Throughput};

/// Worker count for the parallel rows (the ISSUE's reference point).
const FRAME_WORKERS: usize = 4;

fn mb_per_s(bytes: u64, median_ns: f64) -> f64 {
    bytes as f64 * 1e3 / median_ns.max(1e-9)
}

fn main() {
    let smoke = std::env::var("TESTKIT_BENCH_FAST").is_ok_and(|v| v != "0");
    let mode = if smoke { "smoke" } else { "full" };
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get() as u64);

    // One corpus: the six benchmark texts concatenated (~2.3 MB), so the
    // frame has enough groups for the pipeline to matter.
    let mut corpus: Vec<u32> = Vec::new();
    for profile in BenchmarkProfile::suite() {
        corpus.extend_from_slice(generate(&profile, SCORECARD_SEED).text_words());
    }
    let bytes = corpus.len() as u64 * 4;

    let serial_pack = PackOptions::default();
    let parallel_pack = PackOptions {
        workers: FRAME_WORKERS,
        ..PackOptions::default()
    };
    let parallel_unpack = UnpackOptions {
        workers: FRAME_WORKERS,
        ..UnpackOptions::default()
    };

    let frame = pack_frame(&corpus, &serial_pack);
    assert_eq!(
        frame,
        pack_frame(&corpus, &parallel_pack),
        "parallel pack must be byte-identical before it is worth timing"
    );
    assert_eq!(
        unpack_frame(&frame, &parallel_unpack).expect("clean frame unpacks"),
        corpus,
        "parallel unpack must round-trip before it is worth timing"
    );

    let mut b = Bench::new("frame_throughput");
    let rows = [
        ("pack/serial", &frame, true, 1usize),
        ("pack/parallel", &frame, true, FRAME_WORKERS),
        ("unpack/serial", &frame, false, 1),
        ("unpack/parallel", &frame, false, FRAME_WORKERS),
    ];
    let mut mb_s = Vec::new();
    for (id, frame, is_pack, workers) in rows {
        let ns = b
            .with_throughput(Throughput::Bytes(bytes))
            .bench(id.to_string(), || {
                if is_pack {
                    pack_frame(
                        &corpus,
                        &PackOptions {
                            workers,
                            ..PackOptions::default()
                        },
                    )
                    .len()
                } else {
                    unpack_frame(
                        frame,
                        &UnpackOptions {
                            workers,
                            ..UnpackOptions::default()
                        },
                    )
                    .expect("clean frame unpacks")
                    .len()
                }
            })
            .median_ns;
        mb_s.push(mb_per_s(bytes, ns));
    }
    b.finish();

    let section = FrameSection {
        mode: mode.to_owned(),
        workers: FRAME_WORKERS as u64,
        cpus,
        bytes,
        serial_pack_mb_s: mb_s[0],
        parallel_pack_mb_s: mb_s[1],
        serial_unpack_mb_s: mb_s[2],
        parallel_unpack_mb_s: mb_s[3],
    };

    let path = scorecard_path_and_merge(section);
    println!("frame scorecard ({mode}) -> {}", path.display());
    println!(
        "  corpus {:.1} MB, {} workers on {} cpu(s)",
        bytes as f64 / 1e6,
        FRAME_WORKERS,
        cpus
    );
    println!(
        "  pack:   serial {:>7.1} MB/s  parallel {:>7.1} MB/s  ({:.2}x)",
        mb_s[0],
        mb_s[1],
        mb_s[1] / mb_s[0].max(1e-9)
    );
    println!(
        "  unpack: serial {:>7.1} MB/s  parallel {:>7.1} MB/s  ({:.2}x)",
        mb_s[2],
        mb_s[3],
        mb_s[3] / mb_s[2].max(1e-9)
    );
}

/// Read-modify-write of the scorecard: keep the decode rows, replace the
/// frame section.
fn scorecard_path_and_merge(section: FrameSection) -> std::path::PathBuf {
    let path = scorecard::scorecard_path();
    let mut card = scorecard::load(&path).unwrap_or_else(|| Scorecard {
        mode: section.mode.clone(),
        ..Scorecard::default()
    });
    card.frame = Some(section);
    std::fs::write(&path, scorecard::render(&card)).expect("write scorecard");
    path
}
