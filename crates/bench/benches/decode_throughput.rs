//! Decode-throughput scorecard: scalar vs table-driven fast backend.
//!
//! For every benchmark profile this times whole-image decompression
//! through both [`DecodeBackend`]s and emits `BENCH_codec.json` — the
//! standing codec scorecard the ROADMAP asks for — with MB/s (decimal,
//! original text bytes per second) per profile and backend.
//!
//! Output goes to `$BENCH_CODEC_OUT` when set, else `BENCH_codec.json`
//! at the workspace root. The scorecard is shared with `frame_throughput`
//! (which owns the `frame` section): writes go through
//! [`codepack_bench::scorecard`]'s read-modify-write so each bench only
//! replaces its own section. The raw testkit measurements also land in
//! `target/bench/decode_throughput.json` like every other suite.
//!
//! Run modes:
//!
//! * full (default): `cargo bench --bench decode_throughput` — the
//!   numbers checked in at the repo root.
//! * smoke: `TESTKIT_BENCH_FAST=1 cargo bench --bench decode_throughput`
//!   with `BENCH_CODEC_OUT` pointed at a scratch file — what the ci.sh
//!   tier-2 gate runs to catch fast-path regressions quickly.

use codepack_bench::scorecard::{self, ProfileRow, SCORECARD_SEED};
use codepack_core::{CodePackImage, CompressionConfig, DecodeBackend};
use codepack_synth::{generate, BenchmarkProfile};
use codepack_testkit::{Bench, Throughput};

const SEED: u64 = SCORECARD_SEED;

/// Decimal MB/s from a per-iteration byte count and median ns.
fn mb_per_s(bytes: u64, median_ns: f64) -> f64 {
    bytes as f64 * 1e3 / median_ns.max(1e-9)
}

fn main() {
    let smoke = std::env::var("TESTKIT_BENCH_FAST").is_ok_and(|v| v != "0");
    let mode = if smoke { "smoke" } else { "full" };
    let mut b = Bench::new("decode_throughput");
    let mut rows = Vec::new();

    for profile in BenchmarkProfile::suite() {
        let text = generate(&profile, SEED).text_words().to_vec();
        let bytes = text.len() as u64 * 4;
        let image = CodePackImage::compress(&text, &CompressionConfig::default());
        // Build the decode tables outside the timed region: the scorecard
        // measures steady-state decode, and one table build amortizes over
        // an image's lifetime anyway.
        image.fast_decoder();

        let scalar_ns = b
            .with_throughput(Throughput::Bytes(bytes))
            .bench(format!("scalar/{}", profile.name), || {
                image
                    .decompress_all_with(DecodeBackend::Scalar)
                    .expect("clean image decodes")
            })
            .median_ns;
        let fast_ns = b
            .with_throughput(Throughput::Bytes(bytes))
            .bench(format!("fast/{}", profile.name), || {
                image.decompress_all_fast().expect("clean image decodes")
            })
            .median_ns;

        rows.push(ProfileRow {
            name: profile.name.to_owned(),
            bytes,
            scalar_mb_s: mb_per_s(bytes, scalar_ns),
            fast_mb_s: mb_per_s(bytes, fast_ns),
        });
    }

    b.finish();

    // Read-modify-write: replace the decode rows, keep any frame section
    // a `frame_throughput` run left behind.
    let path = scorecard::scorecard_path();
    let mut card = scorecard::load(&path).unwrap_or_default();
    card.mode = mode.to_owned();
    card.profiles = rows;
    let doc = scorecard::render(&card);
    std::fs::write(&path, &doc).expect("write scorecard");
    let rows = &card.profiles;
    println!("scorecard ({mode}) -> {}", path.display());
    for r in rows {
        println!(
            "  {:>10}: scalar {:>8.1} MB/s  fast {:>9.1} MB/s  ({:.1}x)",
            r.name,
            r.scalar_mb_s,
            r.fast_mb_s,
            r.fast_mb_s / r.scalar_mb_s.max(1e-9)
        );
    }
}
