//! The paper's future-work hypothesis, tested: "even smaller compressed
//! representations with higher decompression penalties could be used. This
//! would improve the compressed instruction fetch latency, which is the
//! most time consuming part of the CodePack decompression."
//!
//! HuffPack trades CodePack's 1–2 insn/cycle tag decode for bit-serial
//! Huffman (0.5 insn/cycle) in exchange for a denser stream. The hypothesis
//! predicts HuffPack should *gain* on slow/narrow memories (fetch-dominated)
//! and lose on fast ones (decode-dominated).

use codepack_baselines::{HuffPackConfig, HuffPackFetch, HuffPackImage};
use codepack_bench::{run_with_engine, Workload};
use codepack_isa::TEXT_BASE;
use codepack_sim::{ArchConfig, CodeModel, Table};
use std::sync::Arc;

fn main() {
    let workloads = Workload::suite();

    // Ratio comparison.
    let mut ratios = Table::new(
        ["Bench", "CodePack", "HuffPack", "gain"]
            .map(String::from)
            .to_vec(),
    )
    .with_title("HuffPack: denser codewords (ratio, smaller is better)");
    for w in &workloads {
        let hp = HuffPackImage::compress(w.program.text_words());
        assert_eq!(
            hp.decompress_all().unwrap(),
            w.program.text_words(),
            "huffpack must be lossless"
        );
        let cp_ratio = w.image.stats().compression_ratio();
        let hp_ratio = hp.stats().compression_ratio();
        ratios.row(vec![
            w.profile.name.to_string(),
            format!("{:.1}%", cp_ratio * 100.0),
            format!("{:.1}%", hp_ratio * 100.0),
            format!("{:+.1}pp", (hp_ratio - cp_ratio) * 100.0),
        ]);
    }
    ratios.print();
    println!();

    // Performance across memory latencies: where does density beat decode
    // speed? (go-like: the miss-heavy case.)
    let w = &workloads[1]; // go
    let mut perf = Table::new(
        [
            "Memory",
            "Native IPC",
            "CodePack opt",
            "HuffPack",
            "HuffPack wins?",
        ]
        .map(String::from)
        .to_vec(),
    )
    .with_title("go: optimized CodePack vs HuffPack by memory latency (4-issue)");
    for scale in [0.5f64, 1.0, 2.0, 4.0, 8.0] {
        let arch = ArchConfig::four_issue().with_memory_scale(scale);
        let native = w.run(arch, CodeModel::Native);
        let cp = w.run(arch, CodeModel::codepack_optimized());
        let hp_img = Arc::new(HuffPackImage::compress(w.program.text_words()));
        let engine = HuffPackFetch::new(hp_img, arch.memory, HuffPackConfig::default(), TEXT_BASE);
        let (hp_pipe, _) = run_with_engine(&w.program, arch, Box::new(engine));
        perf.row(vec![
            format!("{scale}x"),
            format!("{:.3}", native.ipc()),
            format!("{:.3}", cp.ipc()),
            format!("{:.3}", hp_pipe.ipc()),
            if hp_pipe.ipc() > cp.ipc() {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    perf.print();
    println!();

    // Bus width is where density matters most: every saved byte is a beat.
    let mut bus = Table::new(
        [
            "Bus",
            "Native IPC",
            "CodePack opt",
            "HuffPack",
            "HuffPack wins?",
        ]
        .map(String::from)
        .to_vec(),
    )
    .with_title("go: optimized CodePack vs HuffPack by bus width (4-issue)");
    for bits in [8u32, 16, 32, 64] {
        let arch = ArchConfig::four_issue().with_bus_bits(bits);
        let native = w.run(arch, CodeModel::Native);
        let cp = w.run(arch, CodeModel::codepack_optimized());
        let hp_img = Arc::new(HuffPackImage::compress(w.program.text_words()));
        let engine = HuffPackFetch::new(hp_img, arch.memory, HuffPackConfig::default(), TEXT_BASE);
        let (hp_pipe, _) = run_with_engine(&w.program, arch, Box::new(engine));
        bus.row(vec![
            format!("{bits}-bit"),
            format!("{:.3}", native.ipc()),
            format!("{:.3}", cp.ipc()),
            format!("{:.3}", hp_pipe.ipc()),
            if hp_pipe.ipc() > cp.ipc() {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    bus.print();
    println!(
        "(hypothesis: the denser stream wins once fetch dominates decode — \
         the gap closes monotonically as memory slows or narrows)"
    );
}
