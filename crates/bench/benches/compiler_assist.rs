//! The paper's §5.1 suggestion, tested: "It is possible that new compiler
//! optimizations could select instructions so that more of them fit in the
//! dictionary and less raw bits are required."
//!
//! We apply the cheapest such pass — canonical operand ordering for
//! commutative operations — and measure the compression-ratio change.

use codepack_bench::Workload;
use codepack_core::{canonicalize_commutative, CodePackImage, CompressionConfig};
use codepack_sim::Table;

fn main() {
    let mut table = Table::new(
        [
            "Bench",
            "Ratio before",
            "Ratio after",
            "Raw HW before",
            "after",
            "rewritten",
        ]
        .map(String::from)
        .to_vec(),
    )
    .with_title("Compiler assist: canonical commutative operand order (paper §5.1)");

    for w in Workload::suite() {
        let before = w.image.stats();
        let (canon, cstats) = canonicalize_commutative(w.program.text_words());
        let after_img = CodePackImage::compress(&canon, &CompressionConfig::default());
        let after = after_img.stats();
        table.row(vec![
            w.profile.name.to_string(),
            format!("{:.2}%", before.compression_ratio() * 100.0),
            format!("{:.2}%", after.compression_ratio() * 100.0),
            format!("{}", before.raw_halfwords),
            format!("{}", after.raw_halfwords),
            format!(
                "{} ({:.1}%)",
                cstats.rewritten,
                cstats.rewritten as f64 / cstats.total as f64 * 100.0
            ),
        ]);
    }
    table.print();
    println!("(a real compiler would go further: register-allocation shaping, immediate canonicalization)");
}
