//! Paper Table 7: speedup over native code from the index-cache
//! optimization — baseline CodePack, a 64-line × 4-entry index cache, and a
//! perfect (always-hit) index cache, on the 4-issue machine.

use codepack_bench::Workload;
use codepack_core::DecompressorConfig;
use codepack_sim::{ArchConfig, CodeModel, Table};

fn main() {
    let mut table = Table::new(
        ["Bench", "CodePack", "Index Cache", "Perfect"]
            .map(String::from)
            .to_vec(),
    )
    .with_title("Table 7: speedup over native due to index cache (4-issue)");

    let arch = ArchConfig::four_issue();
    for w in Workload::suite() {
        let native = w.run(arch, CodeModel::Native);
        let speedup = |cfg: DecompressorConfig| {
            w.run(arch, CodeModel::codepack_with(cfg))
                .speedup_over(&native)
        };
        table.row(vec![
            w.profile.name.to_string(),
            format!("{:.2}", speedup(DecompressorConfig::baseline())),
            format!("{:.2}", speedup(DecompressorConfig::index_cache_only())),
            format!("{:.2}", speedup(DecompressorConfig::perfect_index())),
        ]);
    }
    table.print();
    println!("(values > 1.00 mean compressed code outruns native)");
}
