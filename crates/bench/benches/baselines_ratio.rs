//! Beyond the paper's tables: compression-ratio and miss-path comparison
//! of CodePack against the prior-art schemes its background section (§2)
//! discusses — CCRP (Huffman cache lines + LAT), whole-instruction
//! dictionary compression (Lefurgy 1997), and a Thumb/MIPS16-style 16-bit
//! re-encoding.
//!
//! Expected shape (from the literature the paper cites): Thumb ~70%,
//! MIPS16 ~60%, CCRP ~73%, CodePack ~60%, instruction dictionaries ~60%
//! but with dictionaries of thousands of entries.

use codepack_baselines::{estimate_thumb, CcrpConfig, CcrpFetch, CcrpImage, InsnDictImage};
use codepack_bench::{run_with_engine, Workload};
use codepack_isa::TEXT_BASE;
use codepack_sim::{ArchConfig, CodeModel, Table};
use std::sync::Arc;

fn main() {
    let workloads = Workload::suite();

    let mut ratios = Table::new(
        [
            "Bench",
            "CodePack",
            "CCRP",
            "InsnDict",
            "Thumb16",
            "dict entries",
        ]
        .map(String::from)
        .to_vec(),
    )
    .with_title("Compression ratio by scheme (smaller is better)");

    for w in &workloads {
        let text = w.program.text_words();
        let ccrp = CcrpImage::compress(text, 32);
        let dict = InsnDictImage::compress(text);
        let thumb = estimate_thumb(text);
        assert_eq!(
            ccrp.decompress_all().unwrap(),
            text,
            "ccrp must be lossless"
        );
        assert_eq!(
            dict.decompress_all().unwrap(),
            text,
            "insn-dict must be lossless"
        );
        ratios.row(vec![
            w.profile.name.to_string(),
            format!("{:.1}%", w.image.stats().compression_ratio() * 100.0),
            format!("{:.1}%", ccrp.stats().compression_ratio() * 100.0),
            format!("{:.1}%", dict.stats().compression_ratio() * 100.0),
            format!("{:.1}%", thumb.size_ratio() * 100.0),
            format!(
                "{} vs {}",
                dict.stats().dict_entries,
                w.image.high_dict().len() as u32 + w.image.low_dict().len() as u32
            ),
        ]);
    }
    ratios.print();
    println!(
        "(dict entries: whole-instruction dictionary vs CodePack's two half-word dictionaries)"
    );
    println!();

    // Miss-path performance: CCRP's 4-decodes-per-instruction vs CodePack.
    let mut perf = Table::new(
        [
            "Bench",
            "Native IPC",
            "CCRP IPC",
            "CodePack IPC",
            "CCRP avg penalty",
            "CP avg penalty",
        ]
        .map(String::from)
        .to_vec(),
    )
    .with_title("CCRP vs CodePack miss-path performance (4-issue)");
    let arch = ArchConfig::four_issue();
    for w in &workloads {
        let native = w.run(arch, CodeModel::Native);
        let packed = w.run(arch, CodeModel::codepack_baseline());
        let ccrp_img = Arc::new(CcrpImage::compress(w.program.text_words(), 32));
        let engine = CcrpFetch::new(ccrp_img, arch.memory, CcrpConfig::default(), TEXT_BASE);
        let (ccrp_pipe, ccrp_fetch) = run_with_engine(&w.program, arch, Box::new(engine));
        perf.row(vec![
            w.profile.name.to_string(),
            format!("{:.2}", native.ipc()),
            format!("{:.2}", ccrp_pipe.ipc()),
            format!("{:.2}", packed.ipc()),
            format!("{:.1}", ccrp_fetch.avg_miss_penalty()),
            format!("{:.1}", packed.fetch.avg_miss_penalty()),
        ]);
    }
    perf.print();
}
