//! Block-profiler overhead guard: running the CodePack-optimized model
//! with a metrics-only null-sink observer, and the same run with the
//! per-block profiler armed on top of it.
//!
//! Profiling sits on the fetch-miss path behind the same branch-cheap
//! `Obs` handle the rest of the instrumentation uses: per miss it is
//! increment-only, and the expensive decode-path attribution is deferred
//! to one counted decode per touched block at end of run. This bench
//! measures armed-vs-unarmed on an observed run and **fails** (exit code
//! 1) if the overhead exceeds 3%, the budget promised in DESIGN.md.
//!
//! Runs on the in-tree `codepack_testkit::bench` harness (no criterion).
//! Set `TESTKIT_BENCH_FAST=1` for a quick smoke run.

use std::sync::Arc;

use codepack_core::CodePackImage;
use codepack_obs::Obs;
use codepack_sim::{ArchConfig, CodeModel, Simulation};
use codepack_synth::{generate, BenchmarkProfile};
use codepack_testkit::{Bench, Throughput};

const INSNS: u64 = 30_000;
const BUDGET_PCT: f64 = 3.0;

fn main() {
    let program = generate(&BenchmarkProfile::pegwit_like(), 42);
    let model = CodeModel::codepack_optimized();
    // Share one pre-compressed image across iterations, as the matrix
    // runner does across cells: the image's cached per-block decode
    // counters then amortise instead of being rebuilt every run.
    let CodeModel::CodePack { compression, .. } = model else {
        unreachable!("codepack_optimized is a CodePack model")
    };
    let image = Arc::new(CodePackImage::compress(program.text_words(), &compression));
    let sim = Simulation::new(ArchConfig::four_issue(), model);
    let run = |obs: Obs| {
        sim.try_run_observed(&program, INSNS, Some(Arc::clone(&image)), obs)
            .expect("pegwit runs clean")
            .0
            .cycles()
    };

    let mut b = Bench::new("profile_overhead");
    let unarmed = b
        .with_throughput(Throughput::Elements(INSNS))
        .bench("pipeline_4issue_cpopt/profile_unarmed", || {
            run(Obs::with_null_sink())
        })
        .median_ns;
    let armed = b
        .with_throughput(Throughput::Elements(INSNS))
        .bench("pipeline_4issue_cpopt/profile_armed", || {
            let mut obs = Obs::with_null_sink();
            obs.arm_profile();
            run(obs)
        })
        .median_ns;

    print!("{}", b.render());
    if let Some(path) = b.finish() {
        println!("results written to {}", path.display());
    }

    let overhead_pct = (armed - unarmed) / unarmed * 100.0;
    println!("armed-profile overhead vs unarmed: {overhead_pct:+.2}%  (budget {BUDGET_PCT:.1}%)");
    if overhead_pct >= BUDGET_PCT {
        eprintln!("profile_overhead: FAIL — profiling overhead exceeds the {BUDGET_PCT}% budget");
        std::process::exit(1);
    }
    println!("profile_overhead: OK");
}
