//! Micro-benchmarks of the codec itself: dictionary construction,
//! whole-image compression, per-block decompression, and full-image
//! decompression throughput. Not a paper table — these quantify the
//! software cost of the algorithm a hardware decompressor implements.
//!
//! Runs on the in-tree `codepack_testkit::bench` harness (no criterion).
//! Results print as a table and land in `target/bench/codec_micro.json`.
//! Set `TESTKIT_BENCH_FAST=1` for a quick smoke run.

use codepack_core::{CodePackImage, CompressionConfig, Dictionary};
use codepack_synth::{generate, BenchmarkProfile};
use codepack_testkit::{Bench, Throughput};

fn text() -> Vec<u32> {
    generate(&BenchmarkProfile::pegwit_like(), 42)
        .text_words()
        .to_vec()
}

fn main() {
    let words = text();
    let cfg = CompressionConfig::default();
    let image = CodePackImage::compress(&words, &cfg);

    let mut b = Bench::new("codec_micro");

    b.with_throughput(Throughput::Elements(words.len() as u64))
        .bench("dictionary_build/low_halfwords", || {
            Dictionary::build(words.iter().map(|&w| w as u16), 457, 2, true)
        });

    b.with_throughput(Throughput::Bytes(words.len() as u64 * 4))
        .bench("compress/pegwit_text", || {
            CodePackImage::compress(&words, &cfg)
        });

    b.with_throughput(Throughput::Bytes(words.len() as u64 * 4))
        .bench("decompress/full_image", || image.decompress_all().unwrap());

    let mut block = 0u32;
    b.with_throughput(Throughput::Elements(16))
        .bench("decompress_block/single_block", || {
            block = (block + 1) % image.num_blocks();
            image.decompress_block(block).unwrap()
        });

    print!("{}", b.render());
    if let Some(path) = b.finish() {
        println!("results written to {}", path.display());
    }
}
