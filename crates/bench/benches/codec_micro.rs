//! Criterion micro-benchmarks of the codec itself: dictionary construction,
//! whole-image compression, per-block decompression, and full-image
//! decompression throughput. Not a paper table — these quantify the
//! software cost of the algorithm a hardware decompressor implements.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::time::Duration;

use codepack_core::{CodePackImage, CompressionConfig, Dictionary};
use codepack_synth::{generate, BenchmarkProfile};

fn text() -> Vec<u32> {
    generate(&BenchmarkProfile::pegwit_like(), 42).text_words().to_vec()
}

fn bench_dictionary_build(c: &mut Criterion) {
    let words = text();
    let mut g = c.benchmark_group("dictionary_build");
    g.throughput(Throughput::Elements(words.len() as u64));
    g.bench_function("low_halfwords", |b| {
        b.iter(|| Dictionary::build(words.iter().map(|&w| w as u16), 457, 2, true))
    });
    g.finish();
}

fn bench_compress(c: &mut Criterion) {
    let words = text();
    let cfg = CompressionConfig::default();
    let mut g = c.benchmark_group("compress");
    g.throughput(Throughput::Bytes(words.len() as u64 * 4));
    g.bench_function("pegwit_text", |b| b.iter(|| CodePackImage::compress(&words, &cfg)));
    g.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let words = text();
    let image = CodePackImage::compress(&words, &CompressionConfig::default());
    let mut g = c.benchmark_group("decompress");
    g.throughput(Throughput::Bytes(words.len() as u64 * 4));
    g.bench_function("full_image", |b| b.iter(|| image.decompress_all().unwrap()));
    g.finish();

    let mut g = c.benchmark_group("decompress_block");
    g.throughput(Throughput::Elements(16));
    g.bench_function("single_block", |b| {
        let mut block = 0u32;
        b.iter_batched(
            || {
                block = (block + 1) % image.num_blocks();
                block
            },
            |bk| image.decompress_block(bk).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_dictionary_build, bench_compress, bench_decompress
}
criterion_main!(benches);
