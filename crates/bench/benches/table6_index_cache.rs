//! Paper Table 6: index-cache miss ratio for cc1 on the 4-issue machine,
//! sweeping a fully-associative cache of 1–64 lines × 1–8 index entries
//! per line. The probe stream is the L1 I-miss stream of the baseline
//! CodePack run.

use codepack_bench::{paper, Workload};
use codepack_core::{DecompressorConfig, IndexCacheModel};
use codepack_sim::{ArchConfig, CodeModel, Table};
use codepack_synth::BenchmarkProfile;

fn main() {
    let w = Workload::new(BenchmarkProfile::cc1_like());
    let lines = [1usize, 4, 16, 64];
    let entries = [1u32, 2, 4, 8];

    let mut headers = vec!["Lines".to_string()];
    headers.extend(entries.iter().map(|e| format!("{e} entries")));
    headers.extend(entries.iter().map(|e| format!("paper {e}")));
    let mut table = Table::new(headers)
        .with_title("Table 6: index-cache miss ratio for cc1 (4-issue, fully associative)");

    for (li, &l) in lines.iter().enumerate() {
        let mut row = vec![format!("{l}")];
        for &e in &entries {
            let cfg = DecompressorConfig {
                index_cache: IndexCacheModel::Cached {
                    lines: l,
                    entries_per_line: e,
                },
                ..DecompressorConfig::baseline()
            };
            let r = w.run(ArchConfig::four_issue(), CodeModel::codepack_with(cfg));
            row.push(format!("{:.1}%", r.fetch.index_miss_ratio() * 100.0));
        }
        for (ei, _) in entries.iter().enumerate() {
            row.push(format!("{:.1}%", paper::TABLE6_CC1[li][ei]));
        }
        table.row(row);
    }
    table.print();
}
