//! Paper Figure 2: the L1-miss service timeline, reproduced as text.
//!
//! Rebuilds the paper's worked example — compressed instructions arriving
//! 2,3,3,3,3,2 per 64-bit beat — and prints when each instruction becomes
//! available under (a) native critical-word-first, (b) baseline CodePack,
//! and (c) the optimized decompressor. The paper's headline points on this
//! figure: native critical word at t=10; baseline CodePack critical
//! instruction (5th of the block) at t=25; optimized at t=14.

use std::sync::Arc;

use codepack_core::{
    CodePackFetch, CodePackImage, CompressionConfig, DecompressorConfig, FetchEngine, NativeFetch,
};
use codepack_mem::MemoryTiming;

/// Same construction as `codepack-core`'s Figure-2 regression test: unique
/// high half-words (raw, 19 bits), zero lows (2 bits) except instructions 0
/// and 5 of each block (5-bit dictionary codeword), giving the paper's
/// 2,3,3,3,3,2 beat profile.
fn figure2_image() -> Arc<CodePackImage> {
    let mut text = Vec::new();
    for b in 0..2u32 {
        for j in 0..16u32 {
            let high = 0x8000 + (b * 16 + j) * 257;
            let low = if j == 0 || j == 5 { 0xaa } else { 0 };
            text.push((high << 16) | low);
        }
    }
    Arc::new(CodePackImage::compress(
        &text,
        &CompressionConfig::default(),
    ))
}

fn main() {
    let image = figure2_image();
    let timing = MemoryTiming::default();
    let info = image.block_info(0);

    println!("=== Figure 2: example of L1 miss activity (64-bit bus, 10-cycle latency, 2-cycle rate) ===");
    println!();
    println!(
        "Compressed block 0: {} bytes; instructions per 64-bit beat:",
        info.byte_len
    );
    let mut per_beat = [0u32; 8];
    for j in 0..16 {
        let bytes = u32::from(info.cum_bits[j + 1]).div_ceil(8);
        let beat = bytes.div_ceil(8).max(1) - 1;
        per_beat[beat as usize] += 1;
    }
    let beats: Vec<String> = per_beat
        .iter()
        .filter(|&&c| c > 0)
        .map(|c| c.to_string())
        .collect();
    println!("  {}   (paper: 2,3,3,3,3,2)", beats.join(","));
    println!();

    // (a) native
    let mut native = NativeFetch::new(timing);
    let svc = native.service_miss(4 * 4, 32);
    println!("(a) Native, miss on 5th instruction of the line:");
    println!(
        "    critical word ready t={} (critical-word-first), line fill done t={}",
        svc.critical_ready, svc.line_fill_complete
    );
    println!();

    // (b) baseline CodePack: cold index.
    let mut base = CodePackFetch::new(
        Arc::clone(&image),
        timing,
        DecompressorConfig {
            request_overhead: 0,
            ..DecompressorConfig::baseline()
        },
        0,
    );
    let svc = base.service_miss(4 * 4, 32);
    println!("(b) CodePack baseline, miss on 5th instruction of block 0:");
    println!(
        "    index fetch from main memory: t=0..{}",
        timing.burst_read_cycles(4)
    );
    println!("    codes burst + 1 insn/cycle decode overlap");
    println!(
        "    critical instruction ready t={}  (paper: t=25)",
        svc.critical_ready
    );
    println!();

    // (c) optimized: warm index cache, 2 decoders.
    let mut opt = CodePackFetch::new(
        image,
        timing,
        DecompressorConfig {
            request_overhead: 0,
            ..DecompressorConfig::optimized()
        },
        0,
    );
    opt.service_miss(0, 32); // warm the index cache with the same group
    let svc = opt.service_miss((16 + 4) * 4, 32);
    println!("(c) CodePack optimized (index cache hit, 2 decompressors/cycle):");
    println!("    index ready t=0 (probed in parallel with L1)");
    println!(
        "    critical instruction ready t={}  (paper: t=14)",
        svc.critical_ready
    );
}
