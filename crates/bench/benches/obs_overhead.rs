//! Observability overhead guard: running the 5-stage (1-issue, in-order)
//! pipeline with a disabled `Obs` handle, with a metrics-only null-sink
//! observer, and with a full ring-buffer trace, on the same program.
//!
//! The disabled handle is the default for every simulation in the
//! workspace, so its cost is the one that matters: each instrumentation
//! site must stay a single predictable branch. This bench measures the
//! null-sink configuration against the disabled one and **fails** (exit
//! code 1) if the overhead exceeds 3%, the budget promised in
//! `crates/obs/src/handle.rs` and DESIGN.md.
//!
//! Runs on the in-tree `codepack_testkit::bench` harness (no criterion).
//! Set `TESTKIT_BENCH_FAST=1` for a quick smoke run.

use codepack_obs::{Obs, RingSink};
use codepack_sim::{ArchConfig, CodeModel, Simulation};
use codepack_synth::{generate, BenchmarkProfile};
use codepack_testkit::{Bench, Throughput};

const INSNS: u64 = 30_000;
const BUDGET_PCT: f64 = 3.0;

fn main() {
    let program = generate(&BenchmarkProfile::pegwit_like(), 42);
    let sim = Simulation::new(ArchConfig::one_issue(), CodeModel::Native);
    let run = |obs: Obs| {
        sim.try_run_observed(&program, INSNS, None, obs)
            .expect("pegwit runs clean")
            .0
            .cycles()
    };

    let mut b = Bench::new("obs_overhead");
    let disabled = b
        .with_throughput(Throughput::Elements(INSNS))
        .bench("pipeline_1issue/obs_disabled", || run(Obs::disabled()))
        .median_ns;
    let null_sink = b
        .with_throughput(Throughput::Elements(INSNS))
        .bench("pipeline_1issue/obs_null_sink", || {
            run(Obs::with_null_sink())
        })
        .median_ns;
    b.with_throughput(Throughput::Elements(INSNS))
        .bench("pipeline_1issue/obs_ring_64k", || {
            run(Obs::with_sink(Box::new(RingSink::new(1 << 16))))
        });

    print!("{}", b.render());
    if let Some(path) = b.finish() {
        println!("results written to {}", path.display());
    }

    let overhead_pct = (null_sink - disabled) / disabled * 100.0;
    println!("null-sink overhead vs disabled: {overhead_pct:+.2}%  (budget {BUDGET_PCT:.1}%)");
    if overhead_pct >= BUDGET_PCT {
        eprintln!("obs_overhead: FAIL — observability overhead exceeds the {BUDGET_PCT}% budget");
        std::process::exit(1);
    }
    println!("obs_overhead: OK");
}
