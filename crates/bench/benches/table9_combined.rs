//! Paper Table 9: the two optimizations individually and combined —
//! index cache only, 2-wide decoder only, and both ("All"), as speedup
//! over native on the 4-issue machine.

use codepack_bench::Workload;
use codepack_core::DecompressorConfig;
use codepack_sim::{ArchConfig, CodeModel, Table};

fn main() {
    let mut table = Table::new(
        ["Bench", "CodePack", "Index", "Decompress", "All"]
            .map(String::from)
            .to_vec(),
    )
    .with_title("Table 9: comparison of optimizations (speedup over native, 4-issue)");

    let arch = ArchConfig::four_issue();
    for w in Workload::suite() {
        let native = w.run(arch, CodeModel::Native);
        let speedup = |cfg: DecompressorConfig| {
            w.run(arch, CodeModel::codepack_with(cfg))
                .speedup_over(&native)
        };
        table.row(vec![
            w.profile.name.to_string(),
            format!("{:.2}", speedup(DecompressorConfig::baseline())),
            format!("{:.2}", speedup(DecompressorConfig::index_cache_only())),
            format!("{:.2}", speedup(DecompressorConfig::decoders(2))),
            format!("{:.2}", speedup(DecompressorConfig::optimized())),
        ]);
    }
    table.print();
}
