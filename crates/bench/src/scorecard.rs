//! The `BENCH_codec.json` codec scorecard: one checked-in document shared
//! by two bench targets.
//!
//! `decode_throughput` owns the per-profile rows; `frame_throughput` owns
//! the `frame` section (serial-vs-parallel `.cpk` pack/unpack). Either
//! bench may run alone, so both go through this module's read-modify-write
//! cycle: load whatever is on disk, replace only your own section, and
//! re-render the whole document with a fixed field order so the artifact
//! is byte-stable regardless of which bench ran last.

use std::path::PathBuf;

use codepack_obs::json;

/// One profile row of the decode-throughput section.
#[derive(Clone, Debug)]
pub struct ProfileRow {
    /// Benchmark profile name (`cc1`, `go`, ...).
    pub name: String,
    /// Original text size in bytes (the throughput denominator).
    pub bytes: u64,
    /// Scalar-backend decode throughput, decimal MB/s.
    pub scalar_mb_s: f64,
    /// Fast-backend decode throughput, decimal MB/s.
    pub fast_mb_s: f64,
}

/// The `.cpk` frame pack/unpack section.
#[derive(Clone, Debug)]
pub struct FrameSection {
    /// `smoke` or `full` — the mode the frame bench ran in.
    pub mode: String,
    /// Worker count used for the parallel rows.
    pub workers: u64,
    /// CPUs visible to the bench process. Speedup expectations only make
    /// sense when `cpus >= workers`; the validator gates on this.
    pub cpus: u64,
    /// Corpus size in bytes (the throughput denominator).
    pub bytes: u64,
    /// One-worker frame pack, decimal MB/s.
    pub serial_pack_mb_s: f64,
    /// `workers`-worker frame pack, decimal MB/s.
    pub parallel_pack_mb_s: f64,
    /// One-worker frame unpack, decimal MB/s.
    pub serial_unpack_mb_s: f64,
    /// `workers`-worker frame unpack, decimal MB/s.
    pub parallel_unpack_mb_s: f64,
}

/// The whole scorecard document.
#[derive(Clone, Debug, Default)]
pub struct Scorecard {
    /// `smoke` or `full` — the mode of the decode-throughput rows.
    pub mode: String,
    /// Per-profile decode rows (empty until `decode_throughput` runs).
    pub profiles: Vec<ProfileRow>,
    /// Frame section (absent until `frame_throughput` runs).
    pub frame: Option<FrameSection>,
}

/// Seed every scorecard run uses, mirrored in the document.
pub const SCORECARD_SEED: u64 = 42;

/// The scorecard location: `$BENCH_CODEC_OUT` when set, else
/// `BENCH_codec.json` at the workspace root.
pub fn scorecard_path() -> PathBuf {
    match std::env::var("BENCH_CODEC_OUT") {
        Ok(p) => PathBuf::from(p),
        Err(_) => workspace_root().join("BENCH_codec.json"),
    }
}

/// The workspace root, found via `Cargo.lock` like testkit's bench dir.
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

/// Loads the scorecard at `path`. Returns `None` when the file is absent
/// or unparseable — the caller then starts from an empty document rather
/// than failing the bench run over a stale artifact.
pub fn load(path: &std::path::Path) -> Option<Scorecard> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = json::parse(&text).ok()?;
    let mode = doc.get("mode")?.as_str()?.to_owned();
    let mut profiles = Vec::new();
    for row in doc.get("profiles")?.as_array()? {
        profiles.push(ProfileRow {
            name: row.get("name")?.as_str()?.to_owned(),
            bytes: row.get("bytes")?.as_u64()?,
            scalar_mb_s: row.get("scalar_mb_s")?.as_f64()?,
            fast_mb_s: row.get("fast_mb_s")?.as_f64()?,
        });
    }
    let frame = doc.get("frame").and_then(|f| {
        Some(FrameSection {
            mode: f.get("mode")?.as_str()?.to_owned(),
            workers: f.get("workers")?.as_u64()?,
            cpus: f.get("cpus")?.as_u64()?,
            bytes: f.get("bytes")?.as_u64()?,
            serial_pack_mb_s: f.get("serial_pack_mb_s")?.as_f64()?,
            parallel_pack_mb_s: f.get("parallel_pack_mb_s")?.as_f64()?,
            serial_unpack_mb_s: f.get("serial_unpack_mb_s")?.as_f64()?,
            parallel_unpack_mb_s: f.get("parallel_unpack_mb_s")?.as_f64()?,
        })
    });
    Some(Scorecard {
        mode,
        profiles,
        frame,
    })
}

/// Renders the document with a fixed field order (schema v1).
pub fn render(card: &Scorecard) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str("  \"suite\": \"codec\",\n");
    out.push_str("  \"bench\": \"decode_throughput\",\n");
    out.push_str("  \"unit\": \"MB/s\",\n");
    out.push_str(&format!("  \"seed\": {SCORECARD_SEED},\n"));
    out.push_str(&format!("  \"mode\": \"{}\",\n", json::escape(&card.mode)));
    out.push_str("  \"profiles\": [");
    if card.profiles.is_empty() {
        out.push(']');
    } else {
        out.push('\n');
        for (i, r) in card.profiles.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"bytes\": {}, \"scalar_mb_s\": {:.2}, \
                 \"fast_mb_s\": {:.2}, \"speedup\": {:.2}}}{}\n",
                json::escape(&r.name),
                r.bytes,
                r.scalar_mb_s,
                r.fast_mb_s,
                r.fast_mb_s / r.scalar_mb_s.max(1e-9),
                if i + 1 == card.profiles.len() {
                    ""
                } else {
                    ","
                },
            ));
        }
        out.push_str("  ]");
    }
    if let Some(f) = &card.frame {
        out.push_str(",\n  \"frame\": {\n");
        out.push_str(&format!(
            "    \"mode\": \"{}\",\n    \"workers\": {},\n    \"cpus\": {},\n    \
             \"bytes\": {},\n",
            json::escape(&f.mode),
            f.workers,
            f.cpus,
            f.bytes
        ));
        out.push_str(&format!(
            "    \"serial_pack_mb_s\": {:.2},\n    \"parallel_pack_mb_s\": {:.2},\n    \
             \"pack_speedup\": {:.2},\n",
            f.serial_pack_mb_s,
            f.parallel_pack_mb_s,
            f.parallel_pack_mb_s / f.serial_pack_mb_s.max(1e-9)
        ));
        out.push_str(&format!(
            "    \"serial_unpack_mb_s\": {:.2},\n    \"parallel_unpack_mb_s\": {:.2},\n    \
             \"unpack_speedup\": {:.2}\n  }}",
            f.serial_unpack_mb_s,
            f.parallel_unpack_mb_s,
            f.parallel_unpack_mb_s / f.serial_unpack_mb_s.max(1e-9)
        ));
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scorecard {
        Scorecard {
            mode: "full".into(),
            profiles: vec![ProfileRow {
                name: "pegwit".into(),
                bytes: 87200,
                scalar_mb_s: 120.5,
                fast_mb_s: 340.25,
            }],
            frame: Some(FrameSection {
                mode: "smoke".into(),
                workers: 4,
                cpus: 1,
                bytes: 2_000_000,
                serial_pack_mb_s: 50.0,
                parallel_pack_mb_s: 49.5,
                serial_unpack_mb_s: 200.0,
                parallel_unpack_mb_s: 198.0,
            }),
        }
    }

    #[test]
    fn render_load_round_trips_both_sections() {
        let card = sample();
        let dir = std::env::temp_dir().join(format!("scorecard-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("card.json");
        std::fs::write(&path, render(&card)).unwrap();
        let back = load(&path).expect("rendered scorecard loads");
        assert_eq!(back.mode, "full");
        assert_eq!(back.profiles.len(), 1);
        assert_eq!(back.profiles[0].name, "pegwit");
        assert_eq!(back.profiles[0].bytes, 87200);
        // Re-render of the reloaded card is byte-stable.
        assert_eq!(render(&back), std::fs::read_to_string(&path).unwrap());
        let f = back.frame.expect("frame section survives");
        assert_eq!((f.workers, f.cpus), (4, 1));
        assert_eq!(f.bytes, 2_000_000);
    }

    #[test]
    fn render_without_frame_matches_legacy_shape() {
        let mut card = sample();
        card.frame = None;
        let doc = render(&card);
        assert!(!doc.contains("\"frame\""));
        assert!(json::parse(&doc).is_ok());
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("scorecard-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "not json at all").unwrap();
        assert!(load(&path).is_none());
        assert!(load(&dir.join("missing.json")).is_none());
    }
}
