//! Calibration check: prints measured text size, compression ratio, raw
//! fraction, and 4-issue I-miss rate for each profile next to the paper's
//! targets. Used while tuning `BenchmarkProfile` parameters; kept as a
//! diagnostic tool.

#![forbid(unsafe_code)]

use codepack_bench::{max_insns, paper, Workload};
use codepack_sim::{ArchConfig, CodeModel, Table};

fn main() {
    let start = std::time::Instant::now();
    let mut table = Table::new(
        [
            "bench", "text KB", "paperKB", "ratio", "paper", "raw%", "imiss%", "paper", "IPCn",
            "IPCc", "IPCo",
        ]
        .map(String::from)
        .to_vec(),
    )
    .with_title(format!("calibration ({} insns/run)", max_insns()));

    let paper_kb = [1083, 310, 118, 89, 267, 495];
    for (i, w) in Workload::suite().into_iter().enumerate() {
        let stats = w.image.stats();
        let native = w.run(ArchConfig::four_issue(), CodeModel::Native);
        let packed = w.run(ArchConfig::four_issue(), CodeModel::codepack_baseline());
        let opt = w.run(ArchConfig::four_issue(), CodeModel::codepack_optimized());
        let raw_frac = stats.fraction_of_total(stats.raw_tag_bits + stats.raw_literal_bits);
        table.row(vec![
            w.profile.name.to_string(),
            format!("{}", w.program.text_size_bytes() / 1024),
            format!("{}", paper_kb[i]),
            format!("{:.1}%", stats.compression_ratio() * 100.0),
            format!("{:.1}%", paper::TABLE3_RATIO[i].1),
            format!("{:.1}%", raw_frac * 100.0),
            format!("{:.2}%", native.imiss_per_insn() * 100.0),
            format!("{:.1}%", paper::TABLE1_MISS[i].1),
            format!("{:.3}", native.ipc()),
            format!("{:.3}", packed.ipc()),
            format!("{:.3}", opt.ipc()),
        ]);
    }
    table.print();
    eprintln!("elapsed: {:.1}s", start.elapsed().as_secs_f64());
}
