//! # codepack-bench — the experiment harness
//!
//! One `cargo bench` target per table/figure of the paper (see DESIGN.md's
//! experiment index). This library holds the shared machinery: workload
//! sizing, program/image caching, and paper reference values for
//! side-by-side reporting.
//!
//! Workload length per simulation comes from the `CODEPACK_INSNS`
//! environment variable (default 1,000,000 instructions — the paper runs
//! >1 billion, which only changes the statistics' precision, not the
//! > trends).

#![forbid(unsafe_code)]

use std::sync::Arc;

use codepack_core::{CodePackImage, CompressionConfig};
use codepack_isa::Program;
use codepack_sim::{ArchConfig, CodeModel, SimResult, Simulation};
use codepack_synth::{generate, BenchmarkProfile};

/// Seed used by every experiment so all tables describe the same programs.
pub const EXPERIMENT_SEED: u64 = 42;

/// Instructions simulated per run (override with `CODEPACK_INSNS`).
pub fn max_insns() -> u64 {
    std::env::var("CODEPACK_INSNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

/// A generated benchmark with its compressed image, built once and shared
/// across all the experiment's simulations.
pub struct Workload {
    /// The profile it was generated from.
    pub profile: BenchmarkProfile,
    /// The executable program.
    pub program: Program,
    /// Its CodePack image under the default compression configuration.
    pub image: Arc<CodePackImage>,
}

impl Workload {
    /// Generates one workload.
    pub fn new(profile: BenchmarkProfile) -> Workload {
        let program = generate(&profile, EXPERIMENT_SEED);
        let image = Arc::new(CodePackImage::compress(
            program.text_words(),
            &CompressionConfig::default(),
        ));
        Workload {
            profile,
            program,
            image,
        }
    }

    /// Generates the paper's six benchmarks.
    pub fn suite() -> Vec<Workload> {
        BenchmarkProfile::suite()
            .into_iter()
            .map(Workload::new)
            .collect()
    }

    /// Runs this workload on `arch` under `model`, reusing the cached image
    /// for CodePack models with default compression.
    pub fn run(&self, arch: ArchConfig, model: CodeModel) -> SimResult {
        let image = match &model {
            CodeModel::CodePack { compression, .. }
                if *compression == CompressionConfig::default() =>
            {
                Some(Arc::clone(&self.image))
            }
            _ => None,
        };
        Simulation::new(arch, model).run_with_image(&self.program, max_insns(), image)
    }
}

pub mod scorecard;

/// Paper reference values, for printing next to measured numbers.
pub mod paper {
    /// Table 3: compression ratio of the `.text` section, percent.
    pub const TABLE3_RATIO: [(&str, f64); 6] = [
        ("cc1", 60.4),
        ("go", 58.9),
        ("mpeg2enc", 63.1),
        ("pegwit", 61.1),
        ("perl", 60.7),
        ("vortex", 55.4),
    ];

    /// Table 1: L1 I-cache miss rate on the 4-issue machine, percent.
    pub const TABLE1_MISS: [(&str, f64); 6] = [
        ("cc1", 6.7),
        ("go", 6.2),
        ("mpeg2enc", 0.0),
        ("pegwit", 0.1),
        ("perl", 4.4),
        ("vortex", 5.3),
    ];

    /// Table 4: composition of the compressed region, percent of total
    /// `(index, dict, tags, indices, raw tags, raw bits, pad)`.
    pub const TABLE4_COMPOSITION: [(&str, [f64; 7]); 6] = [
        ("cc1", [5.1, 0.3, 22.5, 46.1, 3.9, 20.9, 1.1]),
        ("go", [5.3, 1.0, 24.7, 50.9, 2.7, 14.2, 1.2]),
        ("mpeg2enc", [5.0, 2.7, 21.9, 46.0, 3.7, 19.9, 1.1]),
        ("pegwit", [5.1, 3.4, 26.3, 49.4, 2.7, 14.7, 1.1]),
        ("perl", [5.2, 1.1, 22.5, 46.0, 3.8, 20.3, 1.1]),
        ("vortex", [5.6, 0.7, 25.1, 50.3, 2.7, 14.3, 1.2]),
    ];

    /// Table 6: index-cache miss ratio for cc1 (4-issue), percent, by
    /// (lines, entries-per-line): rows = 1,4,16,64 lines; cols = 1,2,4,8.
    pub const TABLE6_CC1: [[f64; 4]; 4] = [
        [62.0, 51.9, 42.9, 35.8],
        [53.6, 39.1, 28.0, 19.2],
        [41.9, 29.7, 14.4, 4.56],
        [21.4, 2.7, 0.8, 0.2],
    ];
}

/// Runs `program` on `arch` with a custom I-miss service engine (for the
/// baseline-scheme benches that go beyond [`CodeModel`]'s variants).
pub fn run_with_engine(
    program: &Program,
    arch: ArchConfig,
    engine: Box<dyn codepack_core::FetchEngine>,
) -> (codepack_cpu::PipelineStats, codepack_core::FetchStats) {
    let mut pipeline =
        codepack_cpu::Pipeline::new(arch.pipeline, arch.icache, arch.dcache, arch.memory, engine);
    let mut machine = codepack_cpu::Machine::load(program);
    let stats = pipeline
        .run(&mut machine, max_insns())
        .expect("synthetic programs execute cleanly");
    (stats, pipeline.fetch_engine().stats())
}

/// Formats a count of bytes as the paper prints sizes.
pub fn fmt_bytes(b: u64) -> String {
    format!("{b}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builds_and_runs_briefly() {
        std::env::set_var("CODEPACK_INSNS", "20000");
        let w = Workload::new(BenchmarkProfile::pegwit_like());
        let r = w.run(ArchConfig::four_issue(), CodeModel::codepack_baseline());
        assert!(r.cycles() > 0);
        assert!(r.compression.is_some());
    }

    #[test]
    fn paper_tables_cover_all_six_benchmarks() {
        assert_eq!(paper::TABLE3_RATIO.len(), 6);
        assert_eq!(paper::TABLE1_MISS.len(), 6);
        assert_eq!(paper::TABLE4_COMPOSITION.len(), 6);
    }
}
