//! End-to-end tests of the `.cpk` frame subcommands (`pack`, `unpack`,
//! `cat`) and the strict-flag contract across every subcommand that has
//! grown since PR 2.

use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn cpack(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cpack"))
        .args(args)
        .output()
        .expect("cpack runs")
}

fn cpack_stdin(args: &[&str], input: &[u8]) -> Output {
    use std::io::Write;
    let mut child = Command::new(env!("CARGO_BIN_EXE_cpack"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("cpack spawns");
    child.stdin.take().unwrap().write_all(input).unwrap();
    child.wait_with_output().expect("cpack runs")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cpack-frame-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Every subcommand rejects an unknown flag with a nonzero exit and a
/// stderr message that names the offending flag and points at usage.
#[test]
fn every_subcommand_rejects_unknown_flags() {
    for args in [
        vec!["pack", "pegwit", "--bogus"],
        vec!["unpack", "x.cpk", "--bogus"],
        vec!["cat", "x.cpk", "--bogus"],
        vec!["profile", "pegwit", "--bogus"],
        vec!["faults", "--bogus"],
        vec!["compress", "pegwit", "--bogus"],
        vec!["lint", "pegwit", "--bogus"],
        vec!["inspect", "x.cpk", "--bogus"],
        vec!["disasm", "pegwit", "--bogus"],
        vec!["sim", "pegwit", "--bogus"],
        vec!["sweep", "bus", "pegwit", "--bogus"],
    ] {
        let out = cpack(&args);
        assert!(
            !out.status.success(),
            "`cpack {}` should fail",
            args.join(" ")
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--bogus"),
            "`cpack {}` stderr must name the flag: {stderr}",
            args.join(" ")
        );
        let lower = stderr.to_lowercase();
        assert!(
            lower.contains("usage") || lower.contains("cpack help"),
            "`cpack {}` stderr lacks a usage hint: {stderr}",
            args.join(" ")
        );
    }
}

/// pack -> unpack -> re-pack is byte-stable, and the frame is identical
/// at any worker count.
#[test]
fn pack_unpack_round_trip_is_byte_identical_at_any_worker_count() {
    let a = scratch("a.cpk");
    let text = scratch("text.bin");
    let b = scratch("b.cpk");

    let out = cpack(&["pack", "pegwit", "-o", a.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "pack failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = cpack(&["unpack", a.to_str().unwrap(), "-o", text.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "unpack failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = cpack(&[
        "pack",
        text.to_str().unwrap(),
        "-o",
        b.to_str().unwrap(),
        "--workers",
        "4",
    ]);
    assert!(
        out.status.success(),
        "re-pack failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(&a).unwrap(),
        std::fs::read(&b).unwrap(),
        "pack(unpack(f)) at 4 workers must equal the 1-worker frame"
    );
}

/// `pack` writes frames to stdout and `cat` streams the decoded words
/// back, so the two compose over a pipe; both backends agree.
#[test]
fn pack_and_cat_compose_over_stdio() {
    let packed = cpack(&["pack", "pegwit", "-o", "-"]);
    assert!(packed.status.success());
    assert!(!packed.stdout.is_empty());
    assert_eq!(&packed.stdout[..4], b"CPKF", "frame leads with its magic");

    let scalar = cpack_stdin(&["cat", "-", "--backend", "scalar"], &packed.stdout);
    let fast = cpack_stdin(&["cat", "-", "--backend", "fast"], &packed.stdout);
    assert!(scalar.status.success() && fast.status.success());
    assert_eq!(scalar.stdout, fast.stdout, "backends must agree");
    assert_eq!(scalar.stdout.len() % 4, 0, "whole words only");
    assert!(!scalar.stdout.is_empty());

    // unpack from stdin to stdout matches cat.
    let unpacked = cpack_stdin(&["unpack", "-", "-o", "-"], &packed.stdout);
    assert!(unpacked.status.success());
    assert_eq!(unpacked.stdout, scalar.stdout);
}

/// A truncated frame is rejected with a nonzero exit and a typed
/// truncation message, never a panic.
#[test]
fn truncated_frame_is_rejected() {
    let packed = cpack(&["pack", "pegwit", "-o", "-"]);
    assert!(packed.status.success());
    for cut in [0, 3, 40, packed.stdout.len() - 1] {
        let out = cpack_stdin(&["unpack", "-", "-o", "-"], &packed.stdout[..cut]);
        assert!(!out.status.success(), "cut at {cut} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("truncated"),
            "cut at {cut}: expected a truncation message, got {stderr}"
        );
    }
}

/// Garbage input fails with the bad-magic message.
#[test]
fn non_frame_input_is_rejected_as_bad_magic() {
    let out = cpack_stdin(&["cat", "-"], b"this is not a cpk frame at all..");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad magic"));
}

/// `pack` validates its knobs: bad integrity mode, bad worker count,
/// and raw input whose size is not a whole number of words.
#[test]
fn pack_validates_inputs() {
    let out = cpack(&["pack", "pegwit", "--integrity", "md5"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("md5"));

    let out = cpack(&["pack", "pegwit", "--workers", "0"]);
    assert!(!out.status.success());

    let out = cpack_stdin(&["pack", "-"], b"\x01\x02\x03"); // 3 bytes: not a word
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("32-bit instruction words"));
}

/// Integrity modes change the frame bytes but not the decoded words.
#[test]
fn integrity_modes_round_trip() {
    let mut frames = Vec::new();
    for mode in ["none", "parity", "crc32"] {
        let packed = cpack(&["pack", "mpeg2enc", "-o", "-", "--integrity", mode]);
        assert!(packed.status.success(), "pack --integrity {mode} failed");
        let out = cpack_stdin(&["unpack", "-", "-o", "-"], &packed.stdout);
        assert!(out.status.success(), "unpack of {mode} frame failed");
        frames.push((mode, packed.stdout, out.stdout));
    }
    assert_eq!(frames[0].2, frames[1].2);
    assert_eq!(frames[1].2, frames[2].2);
    assert_ne!(frames[0].1, frames[2].1, "trailers differ across modes");
}
