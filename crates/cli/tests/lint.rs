//! End-to-end tests of `cpack lint`: exit codes and the JSON report, on
//! clean benchmarks and deliberately corrupted ROM images.

use std::path::PathBuf;
use std::process::{Command, Output};

use codepack_obs::json::{self, Value};

fn cpack(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cpack"))
        .args(args)
        .output()
        .expect("cpack runs")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cpack-lint-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn clean_profile_exits_zero() {
    let out = cpack(&["lint", "pegwit"]);
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 error(s)"), "{stdout}");
    assert!(stdout.contains("ratio: static"), "{stdout}");
}

#[test]
fn clean_profile_json_is_well_formed() {
    let out = cpack(&["lint", "pegwit", "--json"]);
    assert!(out.status.success(), "{:?}", out);
    let doc = String::from_utf8_lossy(&out.stdout);
    let v = json::parse(&doc).expect("valid json");
    assert_eq!(v.get("tool").and_then(Value::as_str), Some("sr32lint"));
    assert_eq!(v.get("clean").and_then(Value::as_bool), Some(true));
    assert_eq!(v.get("errors").and_then(Value::as_u64), Some(0));
    let ratio = v.get("ratio").expect("ratio present");
    assert_eq!(
        ratio.get("static_ratio").and_then(Value::as_f64),
        ratio.get("codec_ratio").and_then(Value::as_f64),
        "static and codec ratios agree exactly"
    );
}

#[test]
fn clean_rom_file_exits_zero() {
    let rom = scratch("clean.cpk");
    let out = cpack(&["compress", "pegwit", "-o", rom.to_str().unwrap()]);
    assert!(out.status.success(), "{:?}", out);
    let out = cpack(&["lint", rom.to_str().unwrap()]);
    assert!(out.status.success(), "{:?}", out);
}

#[test]
fn corrupted_index_entry_fails_with_json_diagnostic_naming_the_address() {
    let rom = scratch("corrupt-index.cpk");
    let out = cpack(&["compress", "pegwit", "-o", rom.to_str().unwrap()]);
    assert!(out.status.success(), "{:?}", out);

    // CPK1 layout: magic(4) n_insns(4) high_len(2) low_len(2)
    // dict entries (2 bytes each), n_groups(4), then the index table.
    // Corrupt the second entry's low byte (second-block offset bits).
    let mut bytes = std::fs::read(&rom).unwrap();
    let hi = u16::from_le_bytes([bytes[8], bytes[9]]) as usize;
    let lo = u16::from_le_bytes([bytes[10], bytes[11]]) as usize;
    let index_at = 12 + 2 * (hi + lo) + 4;
    bytes[index_at + 4] ^= 0x55;
    std::fs::write(&rom, &bytes).unwrap();

    let out = cpack(&["lint", rom.to_str().unwrap(), "--json"]);
    assert!(!out.status.success(), "corruption must fail the gate");
    let doc = String::from_utf8_lossy(&out.stdout);
    let v = json::parse(&doc).expect("valid json on failure too");
    assert_eq!(v.get("clean").and_then(Value::as_bool), Some(false));
    assert!(v.get("errors").and_then(Value::as_u64).unwrap() > 0);
    let diags = v.get("diagnostics").and_then(Value::as_array).unwrap();
    let has_addressed_error = diags.iter().any(|d| {
        d.get("severity").and_then(Value::as_str) == Some("error")
            && d.get("addr")
                .and_then(Value::as_str)
                .is_some_and(|a| a.starts_with("0x"))
    });
    assert!(
        has_addressed_error,
        "an error diagnostic must name the native address: {doc}"
    );
}

#[test]
fn truncated_rom_fails_with_structure_error() {
    let rom = scratch("truncated.cpk");
    let out = cpack(&["compress", "pegwit", "-o", rom.to_str().unwrap()]);
    assert!(out.status.success(), "{:?}", out);
    let bytes = std::fs::read(&rom).unwrap();
    std::fs::write(&rom, &bytes[..40]).unwrap();
    let out = cpack(&["lint", rom.to_str().unwrap(), "--json"]);
    assert!(!out.status.success());
    let doc = String::from_utf8_lossy(&out.stdout);
    let v = json::parse(&doc).expect("valid json");
    let diags = v.get("diagnostics").and_then(Value::as_array).unwrap();
    assert!(diags
        .iter()
        .any(|d| d.get("check").and_then(Value::as_str) == Some("rom-structure")));
}

#[test]
fn unknown_target_is_a_usage_error() {
    let out = cpack(&["lint", "no-such-profile-or-file"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("neither"), "{stderr}");
}

#[test]
fn unexpected_flag_is_rejected() {
    let out = cpack(&["lint", "pegwit", "--frobnicate"]);
    assert!(!out.status.success());
}
