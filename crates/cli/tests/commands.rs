//! Integration tests of the `cpack` binary's behaviour, driven through the
//! compiled executable.

use std::process::Command;

fn cpack() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cpack"))
}

#[test]
fn help_prints_usage() {
    let out = cpack().arg("help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("compress") && text.contains("sweep"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = cpack().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn list_names_all_profiles() {
    let out = cpack().arg("list").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["cc1", "go", "mpeg2enc", "pegwit", "perl", "vortex"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn compress_then_inspect_round_trip() {
    let dir = std::env::temp_dir().join(format!("cpack-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let rom = dir.join("pegwit.cpk");

    let out = cpack()
        .args(["compress", "pegwit", "-o"])
        .arg(&rom)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(rom.exists());

    let out = cpack().arg("inspect").arg(&rom).output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ratio") && text.contains("dictionary"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn inspect_rejects_garbage() {
    let dir = std::env::temp_dir().join(format!("cpack-garbage-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bad = dir.join("bad.cpk");
    std::fs::write(&bad, b"not a rom at all").expect("write");
    let out = cpack().arg("inspect").arg(&bad).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("magic"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disasm_prints_instructions() {
    let out = cpack().args(["disasm", "go", "4"]).output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.lines().count(), 4);
    assert!(text.contains("0x00400000"));
}

#[test]
fn sim_reports_all_three_models() {
    let out = cpack()
        .args(["sim", "pegwit", "50000"])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Native"));
    assert!(text.contains("CodePack baseline"));
    assert!(text.contains("CodePack optimized"));
    assert!(text.contains("compression ratio"));
}

#[test]
fn sweep_rejects_unknown_kind() {
    let out = cpack()
        .args(["sweep", "voltage", "go"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown kind"));
}

#[test]
fn compare_lists_all_schemes() {
    let out = cpack().args(["compare", "pegwit"]).output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for scheme in ["CodePack", "CCRP", "Insn dictionary", "Thumb"] {
        assert!(text.contains(scheme), "missing {scheme}");
    }
}
