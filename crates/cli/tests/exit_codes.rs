//! Binary-level exit-code contract for `cpack`.
//!
//! The CLI promises a three-way taxonomy: **0** success, **1** the
//! operation failed (corrupt data, missing files, lost responses),
//! **2** command-line misuse. Scripts (ci.sh among them) branch on
//! these, so each class is pinned here by running the real binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cpack(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cpack"))
        .args(args)
        .output()
        .expect("cpack binary runs")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cpack-exit-codes-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

#[test]
fn success_paths_exit_zero() {
    let out = cpack(&["list"]);
    assert_eq!(out.status.code(), Some(0), "list: {out:?}");

    let out = cpack(&["help"]);
    assert_eq!(out.status.code(), Some(0));

    // No command at all prints usage and succeeds.
    let out = cpack(&[]);
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn pack_unpack_round_trip_exits_zero() {
    let cpk = scratch("ok.cpk");
    let raw = scratch("ok.bin");
    let out = cpack(&["pack", "pegwit", "-o", cpk.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "pack: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = cpack(&["unpack", cpk.to_str().unwrap(), "-o", raw.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "unpack: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(std::fs::metadata(&raw).unwrap().len() > 0);

    let out = cpack(&["cat", cpk.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    assert!(!out.stdout.is_empty());
}

#[test]
fn corrupt_and_missing_data_exit_one() {
    // A frame with its body bit-flipped: pack succeeds, unpack must
    // report corruption with exit 1 (not 2 — the command line is fine).
    let cpk = scratch("corrupt.cpk");
    let out = cpack(&["pack", "pegwit", "-o", cpk.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let mut bytes = std::fs::read(&cpk).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&cpk, &bytes).unwrap();

    for cmd in ["unpack", "cat"] {
        let out = cpack(&[cmd, cpk.to_str().unwrap()]);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{cmd} on corrupt frame: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            !out.stderr.is_empty(),
            "{cmd} explains the corruption on stderr"
        );
    }

    // A missing input file is an operational failure, not misuse.
    let out = cpack(&["unpack", "/nonexistent/road/to/nowhere.cpk"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");

    let out = cpack(&["pack", "/nonexistent/road/to/nowhere.bin"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}

#[test]
fn truncated_frame_exits_one() {
    let cpk = scratch("truncated.cpk");
    let out = cpack(&["pack", "pegwit", "-o", cpk.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let bytes = std::fs::read(&cpk).unwrap();
    std::fs::write(&cpk, &bytes[..bytes.len() / 3]).unwrap();

    let out = cpack(&["unpack", cpk.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "truncated: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn command_line_misuse_exits_two() {
    // Unknown command.
    let out = cpack(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    // Unknown flags on the frame commands.
    for args in [
        &["pack", "pegwit", "--bogus"][..],
        &["unpack", "x.cpk", "--bogus"],
        &["cat", "x.cpk", "--bogus"],
        &["loadgen", "--bogus"],
    ] {
        let out = cpack(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(!out.stderr.is_empty(), "{args:?} explains the misuse");
    }

    // Bad flag values are misuse too.
    let out = cpack(&["pack", "pegwit", "--integrity", "sha9000"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    let out = cpack(&["loadgen", "--requests", "not-a-number"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    let out = cpack(&["loadgen", "--mode", "sideways"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn loadgen_smoke_exits_zero_and_emits_scorecard() {
    let out_file = scratch("bench_service_smoke.json");
    let out = cpack(&[
        "loadgen",
        "--requests",
        "400",
        "--clients",
        "2",
        "--seed",
        "42",
        "--out",
        out_file.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "loadgen: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&out_file).unwrap();
    assert!(doc.contains("\"suite\": \"service\""));
    assert!(doc.contains("\"lost\": 0"));
    assert!(doc.contains("\"mismatched\": 0"));
}
