//! End-to-end tests of the `cpack` binary: flag hygiene and the
//! observability artifacts (`run --trace/--metrics`, `trace-export`).

use std::path::PathBuf;
use std::process::{Command, Output};

use codepack_obs::json;

fn cpack(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cpack"))
        .args(args)
        .output()
        .expect("cpack runs")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cpack-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn unknown_flags_fail_with_usage_hint() {
    for args in [
        vec!["run", "pegwit", "--bogus"],
        vec!["run", "--frobnicate"],
        vec!["trace-export", "in.jsonl", "--perfetto"],
        vec!["matrix", "--turbo"],
        vec!["list", "--verbose"],
        vec!["sim", "pegwit", "9000", "extra"],
        vec!["compare", "pegwit", "extra"],
    ] {
        let out = cpack(&args);
        assert!(
            !out.status.success(),
            "`cpack {}` should fail",
            args.join(" ")
        );
        let stderr = String::from_utf8_lossy(&out.stderr).to_lowercase();
        assert!(
            stderr.contains("usage") || stderr.contains("cpack help"),
            "`cpack {}` stderr lacks a usage hint: {stderr}",
            args.join(" ")
        );
    }
}

#[test]
fn unknown_command_fails() {
    let out = cpack(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn run_backend_flag_selects_decoder() {
    // Both backends run to completion and, being byte-identical decoders,
    // retire the same instruction stream in the same number of cycles.
    let outputs: Vec<String> = ["scalar", "fast"]
        .iter()
        .map(|b| {
            let out = cpack(&[
                "run",
                "pegwit",
                "20000",
                "--model",
                "cp-base",
                "--backend",
                b,
            ]);
            assert!(
                out.status.success(),
                "run --backend {b} failed: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            String::from_utf8_lossy(&out.stdout).into_owned()
        })
        .collect();
    assert_eq!(outputs[0], outputs[1], "backends must not change results");

    let bad = cpack(&["run", "pegwit", "--backend", "simd"]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown backend"));

    let native = cpack(&["run", "pegwit", "--model", "native", "--backend", "fast"]);
    assert!(!native.status.success());
    assert!(String::from_utf8_lossy(&native.stderr).contains("CodePack model"));
}

#[test]
fn run_writes_parseable_trace_and_metrics() {
    let trace = scratch("run.jsonl");
    let metrics = scratch("run.metrics.json");
    let out = cpack(&[
        "run",
        "pegwit",
        "20000",
        "--trace",
        trace.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("CPI breakdown"),
        "summary prints attribution"
    );

    // The trace is valid JSONL of typed events.
    let text = std::fs::read_to_string(&trace).unwrap();
    let events = codepack_obs::parse_jsonl(&text).expect("trace parses");
    assert!(!events.is_empty(), "a codepack run emits events");

    // The metrics document parses, and the CPI attribution closes:
    // components sum to the measured total within float rounding.
    let doc = std::fs::read_to_string(&metrics).unwrap();
    let v = json::parse(&doc).expect("metrics JSON parses");
    let b = v.get("cpi_breakdown").expect("breakdown present");
    let total = b.get("total").and_then(json::Value::as_f64).unwrap();
    let sum: f64 = [
        "compute",
        "icache_miss",
        "decompress",
        "index_lookup",
        "memory",
        "branch",
    ]
    .iter()
    .map(|k| b.get(k).and_then(json::Value::as_f64).unwrap())
    .sum();
    // Each JSON field carries six decimals, so allow their rounding.
    assert!(
        (sum - total).abs() < 1e-5,
        "CPI components ({sum}) must sum to total ({total})"
    );
    assert!(
        v.get("counters")
            .and_then(|c| c.get("pipeline.cycles"))
            .is_some(),
        "metrics carry pipeline counters"
    );
}

#[test]
fn trace_export_produces_valid_chrome_trace() {
    let trace = scratch("export.jsonl");
    let chrome = scratch("export.chrome.json");
    assert!(cpack(&[
        "run",
        "pegwit",
        "20000",
        "--model",
        "cp-base",
        "--trace",
        trace.to_str().unwrap(),
    ])
    .status
    .success());
    let out = cpack(&[
        "trace-export",
        trace.to_str().unwrap(),
        "--chrome",
        "-o",
        chrome.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "trace-export failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&chrome).unwrap();
    let v = json::parse(&doc).expect("chrome trace parses as JSON");
    let list = v
        .get("traceEvents")
        .and_then(json::Value::as_array)
        .expect("traceEvents array");
    assert!(list.len() > 4, "more than the thread-name metadata");
    for e in list {
        assert!(e.get("ph").is_some() && e.get("ts").is_some());
    }
}

#[test]
fn trace_export_requires_a_format() {
    let out = cpack(&["trace-export", "whatever.jsonl"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--chrome"));
}

#[test]
fn matrix_metrics_dir_writes_one_snapshot_per_cell() {
    let dir = scratch("matrix-metrics");
    let out = cpack(&[
        "matrix",
        "5000",
        "--workers",
        "2",
        "--metrics-dir",
        dir.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "matrix failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let snapshots: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    // Full default cube: 6 profiles x 3 archs x 3 models.
    assert_eq!(snapshots.len(), 54, "one snapshot per cell");
    let doc = std::fs::read_to_string(&snapshots[0]).unwrap();
    assert!(json::parse(&doc).is_ok(), "snapshots are valid JSON");
}

#[test]
fn matrix_resume_without_journal_is_rejected() {
    let out = cpack(&["matrix", "--resume"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--journal"));
}

#[test]
fn matrix_journal_resume_reproduces_the_uninterrupted_report() {
    // One uninterrupted journaled run ...
    let clean_dir = scratch("matrix-journal-clean");
    let clean = cpack(&[
        "matrix",
        "3000",
        "--workers",
        "2",
        "--json",
        "--journal",
        clean_dir.to_str().unwrap(),
    ]);
    assert!(
        clean.status.success(),
        "journaled matrix failed: {}",
        String::from_utf8_lossy(&clean.stderr)
    );
    let journal = clean_dir.join("journal.jsonl");
    let text = std::fs::read_to_string(&journal).unwrap();
    assert_eq!(
        text.lines().count(),
        55,
        "header + one record per cell, each flushed as it completed"
    );

    // ... then an interrupted one, simulated by truncating the journal
    // mid-record (as a kill -9 during an append would leave it), resumed
    // with a different worker count.
    let resumed_dir = scratch("matrix-journal-resumed");
    std::fs::create_dir_all(&resumed_dir).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let torn = format!(
        "{}\n{}",
        lines[..20].join("\n"),
        &lines[20][..lines[20].len() / 2] // a torn, half-written record
    );
    std::fs::write(resumed_dir.join("journal.jsonl"), torn).unwrap();
    let resumed = cpack(&[
        "matrix",
        "3000",
        "--workers",
        "3",
        "--json",
        "--journal",
        resumed_dir.to_str().unwrap(),
        "--resume",
    ]);
    assert!(
        resumed.status.success(),
        "resumed matrix failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&clean.stdout),
        String::from_utf8_lossy(&resumed.stdout),
        "a resumed sweep must be byte-identical to an uninterrupted one"
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("(19 resumed"),
        "summary counts the restored cells: {stderr}"
    );
}
