//! `cpack` — the command-line face of the CodePack reproduction.
//!
//! ```text
//! cpack list                          the six benchmark profiles
//! cpack compress <profile> [-o FILE]  compress to a CPK1 ROM image
//! cpack inspect  <FILE>               stats + dictionaries of a ROM image
//! cpack disasm   <profile> [N]        disassemble the first N instructions
//! cpack sim      <profile> [INSNS]    native vs CodePack on the 4-issue machine
//! cpack run      <profile> [INSNS] [--arch A] [--model M] [--trace F] [--metrics F]
//! cpack trace-export <FILE> --chrome [-o FILE]
//! cpack sweep    <bus|latency|cache> <profile> [INSNS]
//! cpack compare  <profile>            compression ratio across schemes
//! cpack lint     <profile|FILE.cpk> [--json]  static CFG + image verification
//! cpack matrix   [INSNS] [--workers N] [--json] [--metrics-dir DIR]
//!                [--retries N] [--journal DIR] [--resume]
//! cpack profile  <profile> [INSNS] [--out FILE] [--top N] [--workers N] [--json]
//! cpack profile  --diff A.json B.json
//! cpack pack     <profile|FILE|-> [-o FILE|-] [--workers N] [--integrity M]
//! cpack unpack   <FILE|-> [-o FILE|-] [--workers N] [--backend scalar|fast]
//! cpack cat      <FILE|-> [--workers N] [--backend scalar|fast]
//! cpack faults   [INSNS] [--profile P] [--rates PPB,..] [--integrity C,..]
//!                [--workers N] [--json] [--journal DIR] [--resume]
//! cpack loadgen  [--requests N] [--clients N] [--seed S] [--connect ADDR]
//!                [--mode smoke|full] [--out FILE] [--chaos]
//! ```
//!
//! Exit codes: 0 success, 1 the operation failed (corrupt data, I/O,
//! lint findings, lost responses), 2 command-line misuse.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use commands::CliError;

mod commands;
mod loadgen;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let legacy = |r: Result<(), String>| r.map_err(CliError::Failure);
    let result: Result<(), CliError> = match args.first().map(String::as_str) {
        Some("list") => legacy(commands::list(&args[1..])),
        Some("compress") => legacy(commands::compress(&args[1..])),
        Some("inspect") => legacy(commands::inspect(&args[1..])),
        Some("disasm") => legacy(commands::disasm(&args[1..])),
        Some("sim") => legacy(commands::sim(&args[1..])),
        Some("run") => legacy(commands::run(&args[1..])),
        Some("trace-export") => legacy(commands::trace_export(&args[1..])),
        Some("sweep") => legacy(commands::sweep(&args[1..])),
        Some("compare") => legacy(commands::compare(&args[1..])),
        Some("lint") => legacy(commands::lint(&args[1..])),
        Some("matrix") => legacy(commands::matrix(&args[1..])),
        Some("profile") => legacy(commands::profile(&args[1..])),
        Some("pack") => commands::pack(&args[1..]),
        Some("unpack") => commands::unpack(&args[1..]),
        Some("cat") => commands::cat(&args[1..]),
        Some("faults") => legacy(commands::faults(&args[1..])),
        Some("loadgen") => loadgen::loadgen(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        Some(other) => Err(CliError::Usage(format!(
            "unknown command `{other}` (try `cpack help`)"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cpack: {}", e.message());
            ExitCode::from(e.exit_code())
        }
    }
}
