//! `cpack` — the command-line face of the CodePack reproduction.
//!
//! ```text
//! cpack list                          the six benchmark profiles
//! cpack compress <profile> [-o FILE]  compress to a CPK1 ROM image
//! cpack inspect  <FILE>               stats + dictionaries of a ROM image
//! cpack disasm   <profile> [N]        disassemble the first N instructions
//! cpack sim      <profile> [INSNS]    native vs CodePack on the 4-issue machine
//! cpack run      <profile> [INSNS] [--arch A] [--model M] [--trace F] [--metrics F]
//! cpack trace-export <FILE> --chrome [-o FILE]
//! cpack sweep    <bus|latency|cache> <profile> [INSNS]
//! cpack compare  <profile>            compression ratio across schemes
//! cpack lint     <profile|FILE.cpk> [--json]  static CFG + image verification
//! cpack matrix   [INSNS] [--workers N] [--json] [--metrics-dir DIR]
//!                [--retries N] [--journal DIR] [--resume]
//! cpack profile  <profile> [INSNS] [--out FILE] [--top N] [--workers N] [--json]
//! cpack profile  --diff A.json B.json
//! cpack pack     <profile|FILE|-> [-o FILE|-] [--workers N] [--integrity M]
//! cpack unpack   <FILE|-> [-o FILE|-] [--workers N] [--backend scalar|fast]
//! cpack cat      <FILE|-> [--workers N] [--backend scalar|fast]
//! cpack faults   [INSNS] [--profile P] [--rates PPB,..] [--integrity C,..]
//!                [--workers N] [--json] [--journal DIR] [--resume]
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => commands::list(&args[1..]),
        Some("compress") => commands::compress(&args[1..]),
        Some("inspect") => commands::inspect(&args[1..]),
        Some("disasm") => commands::disasm(&args[1..]),
        Some("sim") => commands::sim(&args[1..]),
        Some("run") => commands::run(&args[1..]),
        Some("trace-export") => commands::trace_export(&args[1..]),
        Some("sweep") => commands::sweep(&args[1..]),
        Some("compare") => commands::compare(&args[1..]),
        Some("lint") => commands::lint(&args[1..]),
        Some("matrix") => commands::matrix(&args[1..]),
        Some("profile") => commands::profile(&args[1..]),
        Some("pack") => commands::pack(&args[1..]),
        Some("unpack") => commands::unpack(&args[1..]),
        Some("cat") => commands::cat(&args[1..]),
        Some("faults") => commands::faults(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `cpack help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("cpack: {msg}");
            ExitCode::FAILURE
        }
    }
}
