//! Implementation of the `cpack` subcommands.

use codepack_analyze::{lint_compressed, lint_frame, lint_rom, Diagnostic, LintReport};
use codepack_baselines::{estimate_thumb, CcrpImage, HuffPackImage, InsnDictImage};
use codepack_core::frame::{pack_frame, unpack_frame, PackOptions, UnpackOptions};
use codepack_core::parse_rom_parts;
use codepack_core::{CodePackImage, CompressionConfig, DecodeBackend};
use codepack_isa::{decode, Program, TEXT_BASE};
use codepack_mem::{IntegrityConfig, PPB_SCALE};
use codepack_obs::{chrome_trace_json, parse_jsonl, BlockProfile, JsonlSink, Obs};
use codepack_sim::{
    run_fault_campaign, run_matrix_with, ArchConfig, CodeModel, FaultCampaignSpec, MatrixOptions,
    MatrixSpec, Simulation, Table,
};
use codepack_synth::{generate, BenchmarkProfile};

/// Help text.
pub const USAGE: &str = "\
cpack — CodePack code compression toolkit (MICRO-32 1999 reproduction)

USAGE:
    cpack list                          list the benchmark profiles
    cpack compress <profile> [-o FILE]  compress to a CPK1 ROM image (default <profile>.cpk)
    cpack inspect  <FILE>               print stats + dictionaries of a ROM image
    cpack disasm   <profile> [N]        disassemble the first N instructions (default 32)
    cpack sim      <profile> [INSNS]    simulate native vs CodePack (default 500000)
    cpack run      <profile> [INSNS] [--arch 1|4|8] [--model native|cp-base|cp-opt]
                   [--backend scalar|fast] [--trace FILE.jsonl] [--metrics FILE.json]
                                        one observed run: event trace, metrics
                                        registry, CPI attribution; --backend
                                        picks the functional decoder (fast =
                                        table-driven default, scalar =
                                        bit-at-a-time reference)
    cpack trace-export <FILE.jsonl> --chrome [-o FILE.json]
                                        convert a JSONL trace to Chrome
                                        trace-event format (chrome://tracing)
    cpack sweep    <bus|latency|cache|l2> <profile> [INSNS]
    cpack compare  <profile>            compression ratio across schemes
    cpack lint     <profile|FILE.cpk> [--json]
                                        sr32lint: static CFG verification
                                        (decode, reachability, branch
                                        targets, call graph, use-before-def
                                        with callee summaries), decode-table
                                        soundness proof, compressed-image
                                        checks, and — on a CPKF stream
                                        frame — the static frame linter
                                        (chunk extents, CRCs, integrity
                                        trailers, payload decode);
                                        exits nonzero on any error
    cpack matrix   [INSNS] [--workers N] [--json] [--metrics-dir DIR]
                   [--retries N] [--journal DIR] [--resume]
                                        full profile x machine x model sweep;
                                        cells are isolated (a trapping cell
                                        degrades, never aborts), --journal
                                        records completed cells crash-safely
                                        and --resume re-runs only the rest
    cpack profile  <profile> [INSNS] [--out FILE.json] [--top N]
                   [--workers N] [--json]
                                        block-level access profile: run the
                                        benchmark under both decode backends
                                        with the per-block profiler armed and
                                        report hot blocks, the cumulative
                                        hotness curve, working set, and
                                        decode-path counters; --out writes
                                        the versioned profile artifact
                                        (byte-identical for any worker count)
    cpack profile  --diff A.json B.json compare two profile artifacts
    cpack pack     <profile|FILE|-> [-o FILE|-] [--workers N]
                   [--integrity none|parity|crc32]
                                        pack a text section into a streaming
                                        .cpk frame (CPKF): a profile name
                                        packs its synthetic program, a file
                                        or `-` (stdin) packs little-endian
                                        32-bit words; group chunks are
                                        encoded in parallel and the output
                                        is byte-identical at any worker
                                        count (default output: stdout)
    cpack unpack   <FILE|-> [-o FILE|-] [--workers N] [--backend scalar|fast]
                                        decode a .cpk frame back to the
                                        original words (little-endian bytes;
                                        default output: stdout)
    cpack cat      <FILE|-> [--workers N] [--backend scalar|fast]
                                        decode a .cpk frame to stdout
    cpack faults   [INSNS] [--profile P] [--rates PPB,PPB,..]
                   [--integrity none,parity,crc32] [--workers N] [--json]
                   [--retries N] [--journal DIR] [--resume]
                                        soft-error campaign: sweep fault
                                        rates x integrity configs on the
                                        journaled matrix runner, reporting
                                        detected/recovered/trapped/silent
                                        and protection slowdown vs native
    cpack loadgen  [--requests N] [--clients N] [--seed S] [--connect ADDR]
                   [--mode smoke|full] [--out FILE.json] [--chaos]
                                        drive cpackd with a fixed-seed mixed
                                        workload (compress/decompress/ping/
                                        lint/profile), verify every response
                                        against the direct library result,
                                        and write the BENCH_service.json
                                        latency scorecard (p50/p95/p99/p999);
                                        without --connect an in-process
                                        server is used; --chaos adds worker
                                        kills, slow requests, and torn/
                                        garbage frames while asserting zero
                                        lost or duplicated responses

Exit codes: 0 success, 1 operation failed (corrupt data, I/O error, lint
findings, lost responses), 2 command-line misuse.
";

const SEED: u64 = 42;

/// A classified CLI failure, mapped to the process exit code: misuse of
/// the command line (bad flags, missing arguments) exits 2; everything
/// that went wrong while doing the work — corrupt data, I/O failures,
/// lint findings — exits 1. Scripts can tell "you called it wrong" from
/// "your data is bad" without parsing stderr.
#[derive(Debug)]
pub enum CliError {
    /// Command-line misuse; exit code 2.
    Usage(String),
    /// The operation itself failed; exit code 1.
    Failure(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError::Failure(msg)
    }
}

impl CliError {
    /// The message to print on stderr.
    pub fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Failure(m) => m,
        }
    }

    /// The process exit code this failure class maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Failure(_) => 1,
        }
    }
}

/// Rejects any argument past what a subcommand consumed, so typos and
/// unsupported flags fail loudly instead of being silently ignored.
fn no_more(cmd: &str, rest: &[String]) -> Result<(), String> {
    match rest.first() {
        Some(a) => Err(format!(
            "{cmd}: unexpected argument `{a}` (see `cpack help` for usage)"
        )),
        None => Ok(()),
    }
}

fn profile_by_name(name: &str) -> Result<BenchmarkProfile, String> {
    BenchmarkProfile::suite()
        .into_iter()
        .find(|p| p.name == name)
        .ok_or_else(|| {
            format!(
                "unknown profile `{name}` (one of: {})",
                BenchmarkProfile::suite()
                    .iter()
                    .map(|p| p.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
}

fn program_for(name: &str) -> Result<Program, String> {
    Ok(generate(&profile_by_name(name)?, SEED))
}

/// `cpack list`
pub fn list(args: &[String]) -> Result<(), String> {
    no_more("list", args)?;
    let mut t = Table::new(
        ["Profile", "Functions", "Text (approx)", "Character"]
            .map(String::from)
            .to_vec(),
    );
    for p in BenchmarkProfile::suite() {
        let character = if p.loop_iters > 20 {
            "loop-dominated"
        } else {
            "branchy, miss-heavy"
        };
        t.row(vec![
            p.name.to_string(),
            format!("{}", p.functions),
            format!("~{} KB", p.functions * 110 * 4 / 1024),
            character.to_string(),
        ]);
    }
    t.print();
    Ok(())
}

/// `cpack compress <profile> [-o FILE]`
pub fn compress(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("compress: missing profile name")?;
    let out = match args.get(1).map(String::as_str) {
        Some("-o") => args.get(2).ok_or("compress: -o needs a file name")?.clone(),
        Some(other) => {
            return Err(format!(
                "compress: unexpected argument `{other}` (see `cpack help` for usage)"
            ))
        }
        None => format!("{name}.cpk"),
    };
    let program = program_for(name)?;
    let image = CodePackImage::compress(program.text_words(), &CompressionConfig::default());
    let rom = image.to_rom_bytes();
    std::fs::write(&out, &rom).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "{name}: {} -> {} bytes ({:.1}%), rom {} bytes -> {out}",
        image.stats().original_bytes,
        image.stats().total_bytes(),
        image.stats().compression_ratio() * 100.0,
        rom.len()
    );
    Ok(())
}

/// `cpack inspect <FILE>`
pub fn inspect(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("inspect: missing rom file")?;
    no_more("inspect", &args[1..])?;
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    let image = CodePackImage::from_rom_bytes(&bytes).map_err(|e| e.to_string())?;
    println!(
        "{path}: {} instructions, {} blocks, {} groups",
        image.len_insns(),
        image.num_blocks(),
        image.num_groups()
    );
    println!("{}", image.stats());
    println!(
        "high dictionary: {} entries; head:",
        image.high_dict().len()
    );
    for (rank, value) in image.high_dict().iter().take(6) {
        println!("  {rank:3} -> {value:#06x}");
    }
    println!("low dictionary: {} entries; head:", image.low_dict().len());
    for (rank, value) in image.low_dict().iter().take(6) {
        println!("  {rank:3} -> {value:#06x}");
    }
    Ok(())
}

/// `cpack disasm <profile> [N]`
pub fn disasm(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("disasm: missing profile name")?;
    let count: usize = match args.get(1).map(String::as_str) {
        None => 32,
        Some(s) if s.starts_with('-') && s.len() > 1 => {
            return Err(format!(
                "disasm: unknown flag `{s}` (see `cpack help` for usage)"
            ));
        }
        Some(s) => s
            .parse()
            .map_err(|_| format!("disasm: bad count `{s}` (see `cpack help` for usage)"))?,
    };
    no_more("disasm", args.get(2..).unwrap_or(&[]))?;
    let program = program_for(name)?;
    for (i, &w) in program.text_words().iter().take(count).enumerate() {
        let addr = TEXT_BASE + 4 * i as u32;
        match decode(w) {
            Ok(insn) => println!("{addr:#010x}:  {w:08x}  {insn}"),
            Err(_) => println!("{addr:#010x}:  {w:08x}  .word"),
        }
    }
    Ok(())
}

fn parse_insns(args: &[String], idx: usize, default: u64) -> Result<u64, String> {
    args.get(idx).map_or(Ok(default), |s| {
        if s.starts_with('-') && s.len() > 1 {
            return Err(format!("unknown flag `{s}` (see `cpack help` for usage)"));
        }
        s.parse()
            .map_err(|_| format!("bad instruction count `{s}` (see `cpack help` for usage)"))
    })
}

/// `cpack sim <profile> [INSNS]`
pub fn sim(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("sim: missing profile name")?;
    let insns = parse_insns(args, 1, 500_000)?;
    no_more("sim", args.get(2..).unwrap_or(&[]))?;
    let program = program_for(name)?;
    let arch = ArchConfig::four_issue();
    let native = Simulation::new(arch, CodeModel::Native).run(&program, insns);
    let packed = Simulation::new(arch, CodeModel::codepack_baseline()).run(&program, insns);
    let opt = Simulation::new(arch, CodeModel::codepack_optimized()).run(&program, insns);

    let mut t = Table::new(
        ["Model", "Cycles", "IPC", "Speedup", "I-miss/insn"]
            .map(String::from)
            .to_vec(),
    )
    .with_title(format!(
        "{name} on the 4-issue machine ({insns} instructions)"
    ));
    for (label, r) in [
        ("Native", &native),
        ("CodePack baseline", &packed),
        ("CodePack optimized", &opt),
    ] {
        t.row(vec![
            label.to_string(),
            format!("{}", r.cycles()),
            format!("{:.3}", r.ipc()),
            format!("{:.2}x", r.speedup_over(&native)),
            format!("{:.2}%", r.imiss_per_insn() * 100.0),
        ]);
    }
    t.print();
    if let Some(c) = packed.compression {
        println!("compression ratio: {:.1}%", c.compression_ratio() * 100.0);
    }
    Ok(())
}

/// `cpack run <profile> [INSNS] [--arch 1|4|8] [--model native|cp-base|cp-opt]
/// [--trace FILE] [--metrics FILE]`
///
/// One fully observed simulation: the pipeline runs with a live [`Obs`]
/// handle, streaming typed events to a JSONL trace (`--trace`) and
/// closing the books into a metrics + CPI-attribution report
/// (`--metrics`). The printed attribution always sums to measured CPI.
pub fn run(args: &[String]) -> Result<(), String> {
    const RUN_USAGE: &str = "usage: cpack run <profile> [INSNS] \
         [--arch 1|4|8] [--model native|cp-base|cp-opt] \
         [--backend scalar|fast] [--trace FILE.jsonl] [--metrics FILE.json]";
    let mut profile: Option<String> = None;
    let mut insns: Option<u64> = None;
    let mut arch = ArchConfig::four_issue();
    let mut model = ("cp-opt", CodeModel::codepack_optimized());
    let mut backend: Option<DecodeBackend> = None;
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--arch" => {
                let v = it.next().ok_or("run: --arch needs a machine (1|4|8)")?;
                arch = match v.as_str() {
                    "1" | "1-issue" => ArchConfig::one_issue(),
                    "4" | "4-issue" => ArchConfig::four_issue(),
                    "8" | "8-issue" => ArchConfig::eight_issue(),
                    other => return Err(format!("run: unknown arch `{other}` (1|4|8)")),
                };
            }
            "--model" => {
                let v = it.next().ok_or("run: --model needs a code model")?;
                model = match v.as_str() {
                    "native" => ("native", CodeModel::Native),
                    "cp-base" => ("cp-base", CodeModel::codepack_baseline()),
                    "cp-opt" => ("cp-opt", CodeModel::codepack_optimized()),
                    other => {
                        return Err(format!(
                            "run: unknown model `{other}` (native|cp-base|cp-opt)"
                        ))
                    }
                };
            }
            "--backend" => {
                let v = it.next().ok_or("run: --backend needs a decoder name")?;
                backend = Some(
                    DecodeBackend::parse(v)
                        .ok_or_else(|| format!("run: unknown backend `{v}` (scalar|fast)"))?,
                );
            }
            "--trace" => {
                trace_path = Some(it.next().ok_or("run: --trace needs a file name")?.clone());
            }
            "--metrics" => {
                metrics_path = Some(it.next().ok_or("run: --metrics needs a file name")?.clone());
            }
            flag if flag.starts_with('-') => {
                return Err(format!("run: unknown flag `{flag}`\n{RUN_USAGE}"));
            }
            v if profile.is_none() => profile = Some(v.to_string()),
            v if insns.is_none() => {
                insns = Some(
                    v.parse()
                        .map_err(|_| format!("run: bad instruction count `{v}`"))?,
                );
            }
            other => return Err(format!("run: unexpected argument `{other}`\n{RUN_USAGE}")),
        }
    }
    let name = profile.ok_or(format!("run: missing profile name\n{RUN_USAGE}"))?;
    let program = program_for(&name)?;
    let insns = insns.unwrap_or(500_000);
    if let Some(b) = backend {
        if matches!(model.1, CodeModel::Native) {
            return Err(format!(
                "run: --backend {b} requires a CodePack model (native code is never decoded)"
            ));
        }
        model.1 = model.1.with_decode_backend(b);
    }

    let obs = match &trace_path {
        Some(p) => {
            let file = std::fs::File::create(p).map_err(|e| format!("creating {p}: {e}"))?;
            Obs::with_sink(Box::new(JsonlSink::new(Box::new(std::io::BufWriter::new(
                file,
            )))))
        }
        None => Obs::with_null_sink(),
    };
    let (result, report) = Simulation::new(arch, model.1)
        .try_run_observed(&program, insns, None, obs)
        .map_err(|e| format!("run: program trapped: {e}"))?;
    let report = report.expect("run always enables the observer");

    println!(
        "{name} / {} / {}: {} cycles, {} instructions, IPC {:.3}",
        arch.name,
        model.0,
        result.cycles(),
        result.retired_instructions,
        result.ipc()
    );
    if let Some(c) = &result.compression {
        println!("compression ratio: {:.1}%", c.compression_ratio() * 100.0);
    }
    println!("events recorded: {}", report.events_recorded);
    print!("{}", report.breakdown.render());
    if let Some(p) = &trace_path {
        println!("trace -> {p}");
    }
    if let Some(p) = &metrics_path {
        std::fs::write(p, report.to_json()).map_err(|e| format!("writing {p}: {e}"))?;
        println!("metrics -> {p}");
    }
    Ok(())
}

/// `cpack trace-export <FILE.jsonl> --chrome [-o FILE.json]`
///
/// Converts a `--trace` JSONL document into Chrome trace-event JSON
/// loadable in `chrome://tracing` or Perfetto.
pub fn trace_export(args: &[String]) -> Result<(), String> {
    const TE_USAGE: &str = "usage: cpack trace-export <FILE.jsonl> --chrome [-o FILE.json]";
    let mut input: Option<String> = None;
    let mut chrome = false;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--chrome" => chrome = true,
            "-o" | "--out" => {
                out = Some(
                    it.next()
                        .ok_or("trace-export: -o needs a file name")?
                        .clone(),
                );
            }
            flag if flag.starts_with('-') => {
                return Err(format!("trace-export: unknown flag `{flag}`\n{TE_USAGE}"));
            }
            v if input.is_none() => input = Some(v.to_string()),
            other => {
                return Err(format!(
                    "trace-export: unexpected argument `{other}`\n{TE_USAGE}"
                ))
            }
        }
    }
    let input = input.ok_or(format!("trace-export: missing trace file\n{TE_USAGE}"))?;
    if !chrome {
        return Err(format!(
            "trace-export: no output format selected (--chrome)\n{TE_USAGE}"
        ));
    }
    let text = std::fs::read_to_string(&input).map_err(|e| format!("reading {input}: {e}"))?;
    let events = parse_jsonl(&text).map_err(|e| format!("trace-export: {input}: {e}"))?;
    let doc = chrome_trace_json(&events);
    let out = out.unwrap_or_else(|| format!("{}.chrome.json", input.trim_end_matches(".jsonl")));
    std::fs::write(&out, doc).map_err(|e| format!("writing {out}: {e}"))?;
    println!("{input}: {} events -> {out}", events.len());
    Ok(())
}

/// `cpack matrix [INSNS] [--workers N] [--json] [--metrics-dir DIR]
/// [--retries N] [--journal DIR] [--resume]`
///
/// Runs the whole experiment cube — every profile on every Table 2
/// machine under every code model — on a worker pool, and prints one
/// table (or JSON). The report is identical for any worker count.
///
/// Cells are fault-isolated: a trapping cell is recorded in the report
/// (outcome `trapped`) and the rest of the cube completes, so finishing
/// with failed cells is still exit 0 — the *report* is the product. With
/// `--journal DIR` every completed cell is appended to a crash-safe
/// journal; `--resume` restores completed cells from it and re-runs only
/// the missing or failed ones, producing byte-identical output to an
/// uninterrupted run.
pub fn matrix(args: &[String]) -> Result<(), String> {
    let mut insns = 200_000u64;
    let mut workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = false;
    let mut metrics_dir: Option<String> = None;
    let mut retries: Option<u32> = None;
    let mut journal_dir: Option<String> = None;
    let mut resume = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--resume" => resume = true,
            "--workers" => {
                let v = it.next().ok_or("matrix: --workers needs a count")?;
                workers = v.parse().map_err(|_| format!("bad worker count `{v}`"))?;
                if workers == 0 {
                    return Err("matrix: --workers must be at least 1".into());
                }
            }
            "--retries" => {
                let v = it.next().ok_or("matrix: --retries needs a count")?;
                retries = Some(v.parse().map_err(|_| format!("bad retry count `{v}`"))?);
            }
            "--journal" => {
                journal_dir = Some(
                    it.next()
                        .ok_or("matrix: --journal needs a directory")?
                        .clone(),
                );
            }
            "--metrics-dir" => {
                metrics_dir = Some(
                    it.next()
                        .ok_or("matrix: --metrics-dir needs a directory")?
                        .clone(),
                );
            }
            flag if flag.starts_with('-') => {
                return Err(format!(
                    "matrix: unknown flag `{flag}` (see `cpack help` for usage)"
                ));
            }
            n => {
                insns = n
                    .parse()
                    .map_err(|_| format!("matrix: unexpected argument `{n}`"))?
            }
        }
    }
    if resume && journal_dir.is_none() {
        return Err("matrix: --resume needs --journal DIR".into());
    }
    let mut spec = MatrixSpec::new(SEED, insns);
    if let Some(r) = retries {
        spec = spec.with_retries(r);
    }
    let mut opts = MatrixOptions::new(workers)
        .observed(metrics_dir.is_some())
        .resuming(resume);
    if let Some(dir) = &journal_dir {
        opts = opts.with_journal(dir);
    }
    let report = run_matrix_with(&spec, &opts).map_err(|e| format!("matrix: {e}"))?;
    if let Some(dir) = &metrics_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
        for cell in &report.cells {
            let Some(snapshot) = cell.metrics.as_ref() else {
                continue; // failed cells have no snapshot
            };
            let path = format!("{dir}/{}.metrics.json", cell.file_stem());
            std::fs::write(&path, snapshot).map_err(|e| format!("writing {path}: {e}"))?;
        }
        println!("wrote metrics snapshots to {dir}/");
    }
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    // The summary goes to stderr so `--json > file` stays pure JSON and a
    // resumed run's stdout is byte-identical to an uninterrupted one.
    eprintln!("{}", report.summary().render());
    Ok(())
}

/// `cpack profile <profile> [INSNS] [--out FILE] [--top N] [--workers N]
/// [--json]`, or `cpack profile --diff A.json B.json`
///
/// Runs one benchmark on the 4-issue machine under both decode backends
/// (fast and scalar) with the per-block profiler armed, merges the
/// cells' profiles, and prints a hot-block report. `--out` writes the
/// versioned profile artifact — the input contract of the
/// profile-guided compressor — which is byte-identical for any worker
/// count at a fixed seed. `--diff` instead loads two artifacts and
/// reports per-block fetch movement between them.
pub fn profile(args: &[String]) -> Result<(), String> {
    const PROFILE_USAGE: &str = "usage: cpack profile <profile> [INSNS] \
         [--out FILE.json] [--top N] [--workers N] [--json]\n\
         \x20      cpack profile --diff A.json B.json";
    let mut name: Option<String> = None;
    let mut insns: Option<u64> = None;
    let mut out: Option<String> = None;
    let mut top = 10usize;
    let mut workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = false;
    let mut diff: Option<(String, String)> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--out" | "-o" => {
                out = Some(it.next().ok_or("profile: --out needs a file name")?.clone());
            }
            "--top" => {
                let v = it.next().ok_or("profile: --top needs a count")?;
                top = v.parse().map_err(|_| format!("bad top count `{v}`"))?;
            }
            "--workers" => {
                let v = it.next().ok_or("profile: --workers needs a count")?;
                workers = v.parse().map_err(|_| format!("bad worker count `{v}`"))?;
                if workers == 0 {
                    return Err("profile: --workers must be at least 1".into());
                }
            }
            "--diff" => {
                let a = it.next().ok_or("profile: --diff needs two files")?.clone();
                let b = it.next().ok_or("profile: --diff needs two files")?.clone();
                diff = Some((a, b));
            }
            flag if flag.starts_with('-') => {
                return Err(format!("profile: unknown flag `{flag}`\n{PROFILE_USAGE}"));
            }
            v if name.is_none() => name = Some(v.to_string()),
            v if insns.is_none() => {
                insns = Some(
                    v.parse()
                        .map_err(|_| format!("profile: bad instruction count `{v}`"))?,
                );
            }
            other => {
                return Err(format!(
                    "profile: unexpected argument `{other}`\n{PROFILE_USAGE}"
                ))
            }
        }
    }

    if let Some((a, b)) = diff {
        if name.is_some() || out.is_some() || json {
            return Err(format!(
                "profile: --diff takes exactly two artifacts\n{PROFILE_USAGE}"
            ));
        }
        return profile_diff(&a, &b, top);
    }

    let name = name.ok_or(format!("profile: missing profile name\n{PROFILE_USAGE}"))?;
    let bench = profile_by_name(&name)?;
    let insns = insns.unwrap_or(200_000);
    // One benchmark, one machine, both decode backends: the merged
    // artifact then carries fast- and scalar-path counters side by side.
    let spec = MatrixSpec::new(SEED, insns)
        .with_profiles(vec![bench])
        .with_archs(vec![ArchConfig::four_issue()])
        .with_models(vec![
            ("cp-opt", CodeModel::codepack_optimized()),
            (
                "cp-opt-scalar",
                CodeModel::codepack_optimized().with_decode_backend(DecodeBackend::Scalar),
            ),
        ]);
    let opts = MatrixOptions::new(workers).profiling(true);
    let report = run_matrix_with(&spec, &opts).map_err(|e| format!("profile: {e}"))?;
    if !report.summary().all_ok() {
        return Err(format!(
            "profile: cells failed: {}",
            report.summary().render()
        ));
    }
    let merged = report
        .profile
        .ok_or("profile: no profile collected (no compressed block was ever fetched)")?;

    if let Some(path) = &out {
        std::fs::write(path, merged.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if json {
        println!("{}", merged.to_json());
    } else {
        print!("{}", render_profile(&name, insns, &merged, top));
    }
    if let Some(path) = &out {
        eprintln!("profile -> {path}");
    }
    Ok(())
}

/// Human rendering of a merged block profile: top-N hot blocks, the
/// cumulative hotness curve, working-set summary, and decode-backend
/// totals. Deterministic for a given artifact.
fn render_profile(name: &str, insns: u64, p: &BlockProfile, top: usize) -> String {
    use std::fmt::Write as _;
    let t = p.totals();
    let mut out = String::new();
    let mut table = Table::new(
        [
            "Block", "Fetches", "Misses", "Beats", "p50 cyc", "p95 cyc", "Fast", "Scalar",
        ]
        .map(String::from)
        .to_vec(),
    )
    .with_title(format!(
        "{name}: hot blocks ({insns} insns/cell, source {})",
        p.source()
    ));
    for (block, s) in p.hot_blocks(top) {
        table.row(vec![
            format!("{block}"),
            format!("{}", s.fetches),
            format!("{}", s.misses()),
            format!("{}", s.memory_beats),
            format!("{}", s.miss_cycles.percentile(50.0)),
            format!("{}", s.miss_cycles.percentile(95.0)),
            format!("{}", s.decode_fast),
            format!("{}", s.decode_scalar),
        ]);
    }
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "working set: {} of {} blocks touched ({} fetches, {} misses)",
        p.blocks_touched(),
        p.total_blocks(),
        t.fetches,
        t.misses()
    );
    let curve: Vec<String> = [50.0, 80.0, 90.0, 95.0, 99.0]
        .iter()
        .map(|&pct| format!("{pct}% of fetches in {} blocks", p.coverage_blocks(pct)))
        .collect();
    let _ = writeln!(out, "hotness curve: {}", curve.join(", "));
    let _ = writeln!(
        out,
        "decode: {} fast ({} lookups, {} raw escapes, {} refills, {} fallbacks), {} scalar",
        t.decode_fast,
        t.table_lookups,
        t.raw_escapes,
        t.refills,
        t.scalar_fallbacks,
        t.decode_scalar
    );
    if t.faults_injected > 0 || t.machine_checks > 0 {
        let _ = writeln!(
            out,
            "faults: {} injected, {} recovered, {} machine checks",
            t.faults_injected, t.faults_recovered, t.machine_checks
        );
    }
    out
}

/// `cpack profile --diff A.json B.json`: loads two artifacts and reports
/// the blocks whose fetch counts moved the most.
fn profile_diff(a_path: &str, b_path: &str, top: usize) -> Result<(), String> {
    let load = |path: &str| -> Result<BlockProfile, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        BlockProfile::from_json(&text).map_err(|e| format!("{path}: {e}"))
    };
    let a = load(a_path)?;
    let b = load(b_path)?;
    // Union of touched blocks, with per-block fetch movement.
    let mut deltas: Vec<(u32, u64, u64)> = Vec::new();
    for (block, s) in a.iter() {
        let after = b.stats(block).map_or(0, |x| x.fetches);
        deltas.push((block, s.fetches, after));
    }
    for (block, s) in b.iter() {
        if a.stats(block).is_none() {
            deltas.push((block, 0, s.fetches));
        }
    }
    deltas
        .sort_by_key(|&(block, before, after)| (std::cmp::Reverse(before.abs_diff(after)), block));

    let ta = a.totals();
    let tb = b.totals();
    println!(
        "A {a_path} (source {}): {} fetches over {} blocks",
        a.source(),
        ta.fetches,
        a.blocks_touched()
    );
    println!(
        "B {b_path} (source {}): {} fetches over {} blocks",
        b.source(),
        tb.fetches,
        b.blocks_touched()
    );
    if a.to_json() == b.to_json() {
        println!("profiles are byte-identical");
        return Ok(());
    }
    let mut t = Table::new(
        ["Block", "A fetches", "B fetches", "Delta"]
            .map(String::from)
            .to_vec(),
    )
    .with_title("largest per-block fetch movement".to_string());
    for (block, before, after) in deltas.iter().take(top) {
        if before == after {
            break; // sorted by |delta|: everything past here is unchanged
        }
        let sign = if after >= before { "+" } else { "-" };
        t.row(vec![
            format!("{block}"),
            format!("{before}"),
            format!("{after}"),
            format!("{sign}{}", before.abs_diff(*after)),
        ]);
    }
    t.print();
    Ok(())
}

/// `cpack faults [INSNS] [--profile P] [--rates PPB,..] [--integrity C,..]
/// [--workers N] [--json] [--retries N] [--journal DIR] [--resume]`
pub fn faults(args: &[String]) -> Result<(), String> {
    let mut insns = 50_000u64;
    let mut workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = false;
    let mut profiles: Vec<BenchmarkProfile> = Vec::new();
    let mut rates: Option<Vec<u32>> = None;
    let mut integrity: Option<Vec<IntegrityConfig>> = None;
    let mut retries: Option<u32> = None;
    let mut journal_dir: Option<String> = None;
    let mut resume = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--resume" => resume = true,
            "--workers" => {
                let v = it.next().ok_or("faults: --workers needs a count")?;
                workers = v.parse().map_err(|_| format!("bad worker count `{v}`"))?;
                if workers == 0 {
                    return Err("faults: --workers must be at least 1".into());
                }
            }
            "--profile" => {
                let v = it.next().ok_or("faults: --profile needs a name")?;
                profiles.push(profile_by_name(v)?);
            }
            "--rates" => {
                let v = it.next().ok_or("faults: --rates needs a ppb list")?;
                let parsed = v
                    .split(',')
                    .map(|r| {
                        r.parse::<u32>()
                            .ok()
                            .filter(|&ppb| u64::from(ppb) <= PPB_SCALE)
                            .ok_or_else(|| format!("bad fault rate `{r}` (ppb, at most 1e9)"))
                    })
                    .collect::<Result<Vec<u32>, String>>()?;
                rates = Some(parsed);
            }
            "--integrity" => {
                let v = it.next().ok_or("faults: --integrity needs a config list")?;
                let parsed = v
                    .split(',')
                    .map(|c| match c {
                        "none" => Ok(IntegrityConfig::none()),
                        "parity" => Ok(IntegrityConfig::parity()),
                        "crc32" => Ok(IntegrityConfig::crc32()),
                        other => Err(format!(
                            "unknown integrity config `{other}` (none, parity, crc32)"
                        )),
                    })
                    .collect::<Result<Vec<IntegrityConfig>, String>>()?;
                integrity = Some(parsed);
            }
            "--retries" => {
                let v = it.next().ok_or("faults: --retries needs a count")?;
                retries = Some(v.parse().map_err(|_| format!("bad retry count `{v}`"))?);
            }
            "--journal" => {
                journal_dir = Some(
                    it.next()
                        .ok_or("faults: --journal needs a directory")?
                        .clone(),
                );
            }
            flag if flag.starts_with('-') => {
                return Err(format!(
                    "faults: unknown flag `{flag}` (see `cpack help` for usage)"
                ));
            }
            n => {
                insns = n
                    .parse()
                    .map_err(|_| format!("faults: unexpected argument `{n}`"))?
            }
        }
    }
    if resume && journal_dir.is_none() {
        return Err("faults: --resume needs --journal DIR".into());
    }
    let mut spec = FaultCampaignSpec::new(SEED, insns);
    if !profiles.is_empty() {
        spec = spec.with_profiles(profiles);
    }
    if let Some(r) = rates {
        spec = spec.with_rates_ppb(r);
    }
    if let Some(i) = integrity {
        spec = spec.with_integrity(i);
    }
    if let Some(r) = retries {
        spec = spec.with_retries(r);
    }
    let mut opts = MatrixOptions::new(workers).resuming(resume);
    if let Some(dir) = &journal_dir {
        opts = opts.with_journal(dir);
    }
    let report = run_fault_campaign(&spec, &opts).map_err(|e| format!("faults: {e}"))?;
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    // Summary to stderr keeps `--json > file` pure JSON.
    eprintln!("{}", report.report.summary().render());
    if !report.conservation_holds() {
        return Err(
            "faults: fault ledger does not conserve (injected != recovered + trapped + silent)"
                .into(),
        );
    }
    Ok(())
}

/// `cpack sweep <bus|latency|cache> <profile> [INSNS]`
pub fn sweep(args: &[String]) -> Result<(), String> {
    let kind = args
        .first()
        .ok_or("sweep: missing kind (bus|latency|cache)")?;
    let name = args.get(1).ok_or("sweep: missing profile name")?;
    let insns = parse_insns(args, 2, 300_000)?;
    no_more("sweep", args.get(3..).unwrap_or(&[]))?;
    let program = program_for(name)?;

    let points: Vec<(String, ArchConfig)> = match kind.as_str() {
        "bus" => [16u32, 32, 64, 128]
            .iter()
            .map(|&b| {
                (
                    format!("{b}-bit"),
                    ArchConfig::four_issue().with_bus_bits(b),
                )
            })
            .collect(),
        "latency" => [0.5f64, 1.0, 2.0, 4.0, 8.0]
            .iter()
            .map(|&s| {
                (
                    format!("{s}x"),
                    ArchConfig::four_issue().with_memory_scale(s),
                )
            })
            .collect(),
        "cache" => [1u32, 4, 16, 64]
            .iter()
            .map(|&k| {
                (
                    format!("{k} KB"),
                    ArchConfig::four_issue().with_icache_kb(k),
                )
            })
            .collect(),
        "l2" => [0u32, 64, 128, 256, 512]
            .iter()
            .map(|&k| {
                if k == 0 {
                    ("no L2".to_string(), ArchConfig::four_issue())
                } else {
                    (format!("{k} KB L2"), ArchConfig::four_issue().with_l2_kb(k))
                }
            })
            .collect(),
        other => {
            return Err(format!(
                "sweep: unknown kind `{other}` (bus|latency|cache|l2)"
            ))
        }
    };

    let mut t = Table::new(
        [
            "Point",
            "Native IPC",
            "CodePack",
            "Optimized",
            "Opt speedup",
        ]
        .map(String::from)
        .to_vec(),
    )
    .with_title(format!("{name}: {kind} sweep (4-issue)"));
    for (label, arch) in points {
        let native = Simulation::new(arch, CodeModel::Native).run(&program, insns);
        let packed = Simulation::new(arch, CodeModel::codepack_baseline()).run(&program, insns);
        let opt = Simulation::new(arch, CodeModel::codepack_optimized()).run(&program, insns);
        t.row(vec![
            label,
            format!("{:.3}", native.ipc()),
            format!("{:.3}", packed.ipc()),
            format!("{:.3}", opt.ipc()),
            format!("{:.2}x", opt.speedup_over(&native)),
        ]);
    }
    t.print();
    Ok(())
}

/// `cpack compare <profile>`
pub fn compare(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("compare: missing profile name")?;
    no_more("compare", &args[1..])?;
    let program = program_for(name)?;
    let text = program.text_words();
    let cp = CodePackImage::compress(text, &CompressionConfig::default());
    let ccrp = CcrpImage::compress(text, 32);
    let dict = InsnDictImage::compress(text);
    let thumb = estimate_thumb(text);

    let mut t = Table::new(["Scheme", "Ratio", "Notes"].map(String::from).to_vec())
        .with_title(format!("{name}: compression schemes"));
    t.row(vec![
        "CodePack".into(),
        format!("{:.1}%", cp.stats().compression_ratio() * 100.0),
        format!(
            "2 dicts, {} + {} entries",
            cp.high_dict().len(),
            cp.low_dict().len()
        ),
    ]);
    t.row(vec![
        "CCRP (Huffman lines)".into(),
        format!("{:.1}%", ccrp.stats().compression_ratio() * 100.0),
        format!("{} raw lines", ccrp.stats().raw_lines),
    ]);
    t.row(vec![
        "Insn dictionary".into(),
        format!("{:.1}%", dict.stats().compression_ratio() * 100.0),
        format!("{} entries", dict.stats().dict_entries),
    ]);
    t.row(vec![
        "Thumb-style 16-bit".into(),
        format!("{:.1}%", thumb.size_ratio() * 100.0),
        format!("+{:.1}% instructions", thumb.insn_overhead() * 100.0),
    ]);
    let huff = HuffPackImage::compress(text);
    t.row(vec![
        "HuffPack (future work)".into(),
        format!("{:.1}%", huff.stats().compression_ratio() * 100.0),
        "bit-serial decode".into(),
    ]);
    t.print();
    Ok(())
}

/// `cpack lint <profile|FILE.cpk> [--json]`
///
/// Lints a benchmark profile (generate, CFG-verify, compress, verify the
/// image against the native text) or a `.cpk` ROM file (image checks
/// only — there is no native reference). Exits nonzero when any
/// Error-severity diagnostic fires, so CI can gate on it.
pub fn lint(args: &[String]) -> Result<(), String> {
    let target = args
        .first()
        .ok_or("lint: missing profile name or .cpk file")?;
    let mut json = false;
    for a in &args[1..] {
        match a.as_str() {
            "--json" => json = true,
            other => {
                return Err(format!(
                    "lint: unexpected argument `{other}` (see `cpack help` for usage)"
                ))
            }
        }
    }

    let is_profile = BenchmarkProfile::suite().iter().any(|p| p.name == *target);
    let report: LintReport = if is_profile {
        let program = program_for(target)?;
        let image = CodePackImage::compress(program.text_words(), &CompressionConfig::default());
        lint_compressed(&program, &image)
    } else if std::path::Path::new(target).is_file() {
        let bytes = std::fs::read(target).map_err(|e| format!("reading {target}: {e}"))?;
        if bytes.starts_with(&codepack_core::frame::FRAME_MAGIC) {
            // A .cpk stream frame: run the static frame linter.
            let report = lint_frame(&bytes, target.as_str());
            return finish_lint(&report, json);
        }
        match parse_rom_parts(&bytes) {
            Ok(rom) => lint_rom(&rom, target.as_str()),
            Err(e) => {
                let mut r = LintReport::new(target.as_str());
                r.ran("rom-structure");
                r.push(Diagnostic::error("rom-structure", e.to_string()));
                r
            }
        }
    } else {
        return Err(format!(
            "lint: `{target}` is neither a benchmark profile nor a readable file"
        ));
    };

    finish_lint(&report, json)
}

/// Prints a lint report in the requested form and maps it to the lint
/// exit status (clean → `Ok`).
fn finish_lint(report: &LintReport, json: bool) -> Result<(), String> {
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "lint: {} error(s) in {}",
            report.errors(),
            report.target
        ))
    }
}

const PACK_USAGE: &str = "usage: cpack pack <profile|FILE|-> [-o FILE|-] \
[--workers N] [--integrity none|parity|crc32]";
const UNPACK_USAGE: &str =
    "usage: cpack unpack <FILE|-> [-o FILE|-] [--workers N] [--backend scalar|fast]";
const CAT_USAGE: &str = "usage: cpack cat <FILE|-> [--workers N] [--backend scalar|fast]";

/// Reads a frame command's input: `-` is stdin, anything else a file path.
fn read_input(cmd: &str, path: &str) -> Result<Vec<u8>, String> {
    use std::io::Read;
    if path == "-" {
        let mut buf = Vec::new();
        std::io::stdin()
            .lock()
            .read_to_end(&mut buf)
            .map_err(|e| format!("{cmd}: reading stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read(path).map_err(|e| format!("{cmd}: reading {path}: {e}"))
    }
}

/// Writes a frame command's output: `-` is stdout, anything else a file path.
fn write_output(cmd: &str, path: &str, bytes: &[u8]) -> Result<(), String> {
    use std::io::Write;
    if path == "-" {
        let mut out = std::io::stdout().lock();
        out.write_all(bytes)
            .and_then(|()| out.flush())
            .map_err(|e| format!("{cmd}: writing stdout: {e}"))
    } else {
        std::fs::write(path, bytes).map_err(|e| format!("{cmd}: writing {path}: {e}"))
    }
}

fn parse_frame_workers(cmd: &str, v: Option<&String>, usage: &str) -> Result<usize, String> {
    let v = v.ok_or(format!("{cmd}: --workers needs a count\n{usage}"))?;
    let workers: usize = v
        .parse()
        .map_err(|_| format!("{cmd}: bad worker count `{v}`\n{usage}"))?;
    if workers == 0 {
        return Err(format!("{cmd}: --workers must be at least 1\n{usage}"));
    }
    Ok(workers)
}

/// The instruction words a pack input denotes: a benchmark profile's
/// synthetic program, or raw little-endian words from a file / stdin.
fn pack_input_words(input: &str) -> Result<Vec<u32>, String> {
    if BenchmarkProfile::suite().iter().any(|p| p.name == input) {
        return Ok(program_for(input)?.text_words().to_vec());
    }
    let bytes = read_input("pack", input)?;
    if !bytes.len().is_multiple_of(4) {
        return Err(format!(
            "pack: input is {} bytes — not a whole number of 32-bit instruction words",
            bytes.len()
        ));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect())
}

/// Parses `cpack pack` arguments; errors here are command-line misuse.
fn pack_args(args: &[String]) -> Result<(String, String, PackOptions), String> {
    let mut input: Option<&String> = None;
    let mut out = String::from("-");
    let mut opts = PackOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" => {
                out = it
                    .next()
                    .ok_or(format!("pack: -o needs a file name\n{PACK_USAGE}"))?
                    .clone();
            }
            "--workers" => opts.workers = parse_frame_workers("pack", it.next(), PACK_USAGE)?,
            "--integrity" => {
                let v = it
                    .next()
                    .ok_or(format!("pack: --integrity needs a mode\n{PACK_USAGE}"))?;
                opts.integrity = match v.as_str() {
                    "none" => codepack_mem::StreamIntegrity::None,
                    "parity" => codepack_mem::StreamIntegrity::Parity,
                    "crc32" => codepack_mem::StreamIntegrity::Crc32,
                    other => {
                        return Err(format!(
                            "pack: unknown integrity mode `{other}` (none|parity|crc32)"
                        ))
                    }
                };
            }
            flag if flag.starts_with('-') && flag.len() > 1 => {
                return Err(format!("pack: unknown flag `{flag}`\n{PACK_USAGE}"));
            }
            other => {
                if input.is_some() {
                    return Err(format!("pack: unexpected argument `{other}`\n{PACK_USAGE}"));
                }
                input = Some(a);
            }
        }
    }
    let input = input.ok_or(format!("pack: missing input\n{PACK_USAGE}"))?;
    Ok((input.clone(), out, opts))
}

/// `cpack pack <profile|FILE|-> [-o FILE|-] [--workers N] [--integrity ...]`
pub fn pack(args: &[String]) -> Result<(), CliError> {
    let (input, out, opts) = pack_args(args).map_err(CliError::Usage)?;
    let words = pack_input_words(&input)?;
    let frame = pack_frame(&words, &opts);
    write_output("pack", &out, &frame)?;
    eprintln!(
        "pack: {} words ({} bytes) -> {} bytes ({:.1}%), integrity {}, {} worker(s)",
        words.len(),
        words.len() * 4,
        frame.len(),
        if words.is_empty() {
            100.0
        } else {
            frame.len() as f64 / (words.len() * 4) as f64 * 100.0
        },
        opts.integrity.as_str(),
        opts.workers
    );
    Ok(())
}

/// Shared argument loop of `cpack unpack` and `cpack cat`.
fn frame_decode_args<'a>(
    cmd: &str,
    args: &'a [String],
    usage: &str,
    allow_output: bool,
) -> Result<(&'a String, String, UnpackOptions), String> {
    let mut input: Option<&String> = None;
    let mut out = String::from("-");
    let mut opts = UnpackOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" if allow_output => {
                out = it
                    .next()
                    .ok_or(format!("{cmd}: -o needs a file name\n{usage}"))?
                    .clone();
            }
            "--workers" => opts.workers = parse_frame_workers(cmd, it.next(), usage)?,
            "--backend" => {
                let v = it
                    .next()
                    .ok_or(format!("{cmd}: --backend needs a decoder name\n{usage}"))?;
                opts.backend = DecodeBackend::parse(v)
                    .ok_or_else(|| format!("{cmd}: unknown backend `{v}` (scalar|fast)"))?;
            }
            flag if flag.starts_with('-') && flag.len() > 1 => {
                return Err(format!("{cmd}: unknown flag `{flag}`\n{usage}"));
            }
            other => {
                if input.is_some() {
                    return Err(format!("{cmd}: unexpected argument `{other}`\n{usage}"));
                }
                input = Some(a);
            }
        }
    }
    let input = input.ok_or(format!("{cmd}: missing input\n{usage}"))?;
    Ok((input, out, opts))
}

fn unpack_to(cmd: &str, input: &str, out: &str, opts: &UnpackOptions) -> Result<usize, String> {
    let frame = read_input(cmd, input)?;
    let words = unpack_frame(&frame, opts).map_err(|e| format!("{cmd}: {e}"))?;
    let mut bytes = Vec::with_capacity(words.len() * 4);
    for w in &words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    write_output(cmd, out, &bytes)?;
    Ok(words.len())
}

/// `cpack unpack <FILE|-> [-o FILE|-] [--workers N] [--backend scalar|fast]`
///
/// Exit codes: 0 on success, 1 when the frame is corrupt or I/O fails,
/// 2 on command-line misuse.
pub fn unpack(args: &[String]) -> Result<(), CliError> {
    let (input, out, opts) =
        frame_decode_args("unpack", args, UNPACK_USAGE, true).map_err(CliError::Usage)?;
    let n = unpack_to("unpack", input, &out, &opts)?;
    eprintln!(
        "unpack: {n} words ({} bytes), backend {}, {} worker(s)",
        n * 4,
        opts.backend,
        opts.workers
    );
    Ok(())
}

/// `cpack cat <FILE|-> [--workers N] [--backend scalar|fast]`
///
/// Exit codes mirror `unpack`: corruption exits 1, misuse exits 2.
pub fn cat(args: &[String]) -> Result<(), CliError> {
    let (input, _, opts) =
        frame_decode_args("cat", args, CAT_USAGE, false).map_err(CliError::Usage)?;
    unpack_to("cat", input, "-", &opts)?;
    Ok(())
}
