//! `cpack loadgen` — the fixed-seed load generator and chaos driver for
//! `cpackd`.
//!
//! The generator issues a deterministic mixed workload (compress /
//! decompress / ping / lint / profile, chosen per-request from the seed)
//! against either an in-process server (default) or a running daemon
//! (`--connect`). Every request's correct answer is precomputed from the
//! library (`pack_frame` etc.), so every `Ok` response is verified
//! byte-for-byte — the run *proves* zero lost, duplicated, or mismatched
//! responses rather than asserting throughput alone.
//!
//! `--chaos` runs a saboteur thread alongside: worker kills (both chaos
//! modes), slow `Burn` requests, and torn/garbage frames on raw sockets.
//! Typed failures (`Overloaded`, `WorkerLost`, …) are expected and
//! counted; lost or wrong responses fail the run with exit 1.
//!
//! The latency scorecard (exact sorted-sample percentiles, microseconds)
//! is written as a `BENCH_service.json` document (schema_version 1,
//! suite "service") validated by `tools/validate_bench.py
//! --require-service`.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use codepack_core::frame::{pack_frame, PackOptions};
use codepack_svc::{
    send_raw, server, CallError, Client, ClientConfig, Op, RetryPolicy, ServerConfig,
    CHAOS_EXIT_AFTER_REPLY, CHAOS_PANIC_MID_REQUEST,
};
use codepack_testkit::{mix_seed, Rng};

use crate::commands::CliError;

const LOADGEN_USAGE: &str = "usage: cpack loadgen [--requests N] [--clients N] [--seed S] \
[--connect ADDR] [--mode smoke|full] [--out FILE.json] [--deadline-ms D] [--chaos]";

/// Distinct payloads in the generated corpus.
const CORPUS_SIZE: usize = 24;

struct LoadgenArgs {
    requests: u64,
    clients: usize,
    seed: u64,
    connect: Option<SocketAddr>,
    mode: String,
    out: Option<String>,
    deadline_ms: u32,
    chaos: bool,
}

fn parse_args(args: &[String]) -> Result<LoadgenArgs, String> {
    let mut parsed = LoadgenArgs {
        requests: 20_000,
        clients: 4,
        seed: 42,
        connect: None,
        mode: "smoke".to_string(),
        out: None,
        deadline_ms: 2_000,
        chaos: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("loadgen: {flag} needs a value\n{LOADGEN_USAGE}"))
        };
        match a.as_str() {
            "--requests" => {
                parsed.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("loadgen: --requests: {e}\n{LOADGEN_USAGE}"))?;
            }
            "--clients" => {
                parsed.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("loadgen: --clients: {e}\n{LOADGEN_USAGE}"))?;
                if parsed.clients == 0 {
                    return Err(format!(
                        "loadgen: --clients must be at least 1\n{LOADGEN_USAGE}"
                    ));
                }
            }
            "--seed" => {
                parsed.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("loadgen: --seed: {e}\n{LOADGEN_USAGE}"))?;
            }
            "--connect" => {
                let v = value("--connect")?;
                parsed.connect = Some(
                    v.parse()
                        .map_err(|e| format!("loadgen: --connect {v}: {e}\n{LOADGEN_USAGE}"))?,
                );
            }
            "--mode" => {
                let v = value("--mode")?;
                if v != "smoke" && v != "full" {
                    return Err(format!(
                        "loadgen: --mode must be smoke|full\n{LOADGEN_USAGE}"
                    ));
                }
                parsed.mode = v.clone();
            }
            "--out" => parsed.out = Some(value("--out")?.clone()),
            "--deadline-ms" => {
                parsed.deadline_ms = value("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("loadgen: --deadline-ms: {e}\n{LOADGEN_USAGE}"))?;
            }
            "--chaos" => parsed.chaos = true,
            other => {
                return Err(format!(
                    "loadgen: unknown argument `{other}`\n{LOADGEN_USAGE}"
                ))
            }
        }
    }
    Ok(parsed)
}

/// One corpus entry: a payload of little-endian words and its
/// precomputed compressed frame (the ground truth every response is
/// checked against).
struct CorpusEntry {
    payload: Vec<u8>,
    frame: Vec<u8>,
}

/// Deterministic corpus: instruction-like words with a sprinkle of
/// incompressible randoms, sizes from 16 to ~1500 words.
fn build_corpus(seed: u64) -> Vec<CorpusEntry> {
    (0..CORPUS_SIZE)
        .map(|i| {
            let mut rng = Rng::seed_from_u64(mix_seed(seed, 0x1000 + i as u64));
            let n_words = 16 + rng.gen_range(0..1500u64) as usize;
            let words: Vec<u32> = (0..n_words)
                .map(|_| match rng.gen_range(0..10u32) {
                    0..=5 => 0x7c00_0000 | rng.gen_range(0..0x40u32) << 16 | rng.gen_range(0..32),
                    6..=8 => 0x3860_0000 | rng.gen_range(0..0x100u32),
                    _ => rng.gen_range(0..=u32::MAX),
                })
                .collect();
            let payload: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
            let frame = pack_frame(&words, &PackOptions::default());
            CorpusEntry { payload, frame }
        })
        .collect()
}

/// The op and corpus index of request `i` — a pure function of the seed,
/// independent of client count and scheduling.
fn plan_request(seed: u64, i: u64, corpus_len: usize) -> (Op, usize) {
    let mut rng = Rng::seed_from_u64(mix_seed(seed, i));
    let op = match rng.gen_range(0..100u32) {
        0..=39 => Op::Compress,
        40..=69 => Op::Decompress,
        70..=79 => Op::Ping,
        80..=89 => Op::Lint,
        _ => Op::Profile,
    };
    (op, rng.gen_range(0..corpus_len as u64) as usize)
}

/// Per-thread tally, merged at the end.
#[derive(Default)]
struct Tally {
    ok: u64,
    mismatched: u64,
    rejected: BTreeMap<&'static str, u64>,
    connection_errors: u64,
    latencies_us: Vec<u64>,
}

fn drive_requests(
    addr: SocketAddr,
    corpus: &[CorpusEntry],
    indices: impl Iterator<Item = u64>,
    seed: u64,
    client_seed: u64,
    deadline_ms: u32,
) -> Tally {
    let mut tally = Tally::default();
    let mut client = Client::new(
        addr,
        ClientConfig {
            deadline_ms,
            retry: RetryPolicy::default(),
            seed: client_seed,
            ..ClientConfig::default()
        },
    );
    for i in indices {
        let (op, ci) = plan_request(seed, i, corpus.len());
        let entry = &corpus[ci];
        let (request_payload, expected): (&[u8], Option<&[u8]>) = match op {
            Op::Compress => (&entry.payload, Some(&entry.frame)),
            Op::Decompress => (&entry.frame, Some(&entry.payload)),
            Op::Ping => (&entry.payload[..entry.payload.len().min(64)], None),
            Op::Lint | Op::Profile => {
                if op == Op::Lint {
                    (&entry.frame, None)
                } else {
                    (&entry.payload, None)
                }
            }
            _ => unreachable!("loadgen only plans the five data ops"),
        };
        let started = Instant::now();
        match client.call(op, request_payload) {
            Ok(reply) => {
                let good = match op {
                    Op::Compress | Op::Decompress => expected.is_some_and(|want| reply == want),
                    Op::Ping => reply == request_payload,
                    Op::Lint => {
                        reply.windows(11).any(|w| w == b"\"ok\":true}\n".as_slice())
                            || String::from_utf8_lossy(&reply).contains("\"ok\":true")
                    }
                    Op::Profile => {
                        String::from_utf8_lossy(&reply).contains("\"schema\":\"cpackd.profile.v1\"")
                    }
                    _ => false,
                };
                if good {
                    tally.ok += 1;
                    tally
                        .latencies_us
                        .push(started.elapsed().as_micros() as u64);
                } else {
                    tally.mismatched += 1;
                }
            }
            Err(CallError::Rejected { status, .. }) => {
                *tally.rejected.entry(status.name()).or_insert(0) += 1;
            }
            Err(CallError::Connection { .. }) => {
                tally.connection_errors += 1;
            }
        }
    }
    tally
}

/// The chaos saboteur: kills workers (both modes), injects slow
/// requests, and throws torn/garbage frames at the server until told to
/// stop. Returns the number of chaos actions taken.
fn run_chaos(addr: SocketAddr, seed: u64, stop: &AtomicBool) -> u64 {
    let mut rng = Rng::seed_from_u64(mix_seed(seed, 0xC4A05));
    let mut client = Client::new(
        addr,
        ClientConfig {
            deadline_ms: 500,
            retry: RetryPolicy::none(),
            seed,
            ..ClientConfig::default()
        },
    );
    let mut actions = 0u64;
    while !stop.load(Ordering::Relaxed) {
        match rng.gen_range(0..5u32) {
            0 => {
                let _ = client.call(Op::ChaosKill, &[CHAOS_EXIT_AFTER_REPLY]);
            }
            1 => {
                let _ = client.call(Op::ChaosKill, &[CHAOS_PANIC_MID_REQUEST]);
            }
            2 => {
                // A slow request to build queue pressure.
                let ms = rng.gen_range(20..120u32);
                let _ = client.call(Op::Burn, &ms.to_le_bytes());
            }
            3 => {
                // Garbage: a full header's worth of junk.
                let junk: Vec<u8> = (0..32).map(|_| rng.gen_range(0..=255u32) as u8).collect();
                let _ = send_raw(addr, &junk, Duration::from_millis(300));
            }
            _ => {
                // A torn, otherwise-valid request.
                let mut wire = Vec::new();
                let _ = codepack_svc::proto::write_request(
                    &mut wire,
                    &codepack_svc::Request {
                        id: actions,
                        op: Op::Ping,
                        deadline_ms: 100,
                        payload: vec![0xAA; 100],
                    },
                );
                let cut = rng.gen_range(1..wire.len() as u64) as usize;
                let _ = send_raw(addr, &wire[..cut], Duration::from_millis(300));
            }
        }
        actions += 1;
        thread::sleep(Duration::from_millis(15));
    }
    actions
}

/// Exact percentile over a sorted sample (nearest-rank on the scaled
/// index) — histograms are too coarse for a trustworthy p999.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn render_json(
    args: &LoadgenArgs,
    tally: &Tally,
    sorted_latencies: &[u64],
    chaos_actions: u64,
    elapsed: Duration,
) -> String {
    let rejected: Vec<String> = tally
        .rejected
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v}"))
        .collect();
    let mean = if sorted_latencies.is_empty() {
        0.0
    } else {
        sorted_latencies.iter().sum::<u64>() as f64 / sorted_latencies.len() as f64
    };
    let failed: u64 = tally.rejected.values().sum::<u64>() + tally.connection_errors;
    format!(
        "{{\n  \"schema_version\": 1,\n  \"suite\": \"service\",\n  \"bench\": \"loadgen\",\n  \
         \"unit\": \"us\",\n  \"seed\": {seed},\n  \"mode\": \"{mode}\",\n  \
         \"requests\": {requests},\n  \"clients\": {clients},\n  \"chaos\": {chaos},\n  \
         \"chaos_actions\": {chaos_actions},\n  \"elapsed_ms\": {elapsed_ms},\n  \
         \"results\": {{\n    \"ok\": {ok},\n    \"failed\": {failed},\n    \
         \"rejected\": {{{rejected}}},\n    \"connection_errors\": {conn},\n    \
         \"lost\": {lost},\n    \"duplicated\": 0,\n    \"mismatched\": {mismatched}\n  }},\n  \
         \"latency_us\": {{\n    \"min\": {min},\n    \"mean\": {mean:.1},\n    \
         \"p50\": {p50},\n    \"p95\": {p95},\n    \"p99\": {p99},\n    \"p999\": {p999},\n    \
         \"max\": {max}\n  }}\n}}\n",
        seed = args.seed,
        mode = args.mode,
        requests = args.requests,
        clients = args.clients,
        chaos = args.chaos,
        elapsed_ms = elapsed.as_millis(),
        ok = tally.ok,
        rejected = rejected.join(", "),
        conn = tally.connection_errors,
        lost = args.requests - (tally.ok + failed + tally.mismatched),
        mismatched = tally.mismatched,
        min = sorted_latencies.first().copied().unwrap_or(0),
        p50 = percentile(sorted_latencies, 50.0),
        p95 = percentile(sorted_latencies, 95.0),
        p99 = percentile(sorted_latencies, 99.0),
        p999 = percentile(sorted_latencies, 99.9),
        max = sorted_latencies.last().copied().unwrap_or(0),
    )
}

/// `cpack loadgen [--requests N] [--clients N] [--seed S] [--connect ADDR]
/// [--mode smoke|full] [--out FILE.json] [--deadline-ms D] [--chaos]`
pub fn loadgen(args: &[String]) -> Result<(), CliError> {
    let args = parse_args(args).map_err(CliError::Usage)?;

    // An in-process server unless pointed at a daemon.
    let in_process = if args.connect.is_none() {
        Some(
            server::start("127.0.0.1:0", ServerConfig::default())
                .map_err(|e| CliError::Failure(format!("loadgen: starting server: {e}")))?,
        )
    } else {
        None
    };
    let addr = match (&args.connect, &in_process) {
        (Some(a), _) => *a,
        (None, Some(h)) => h.addr(),
        (None, None) => unreachable!(),
    };

    eprintln!(
        "loadgen: {} requests, {} client(s), seed {}, {}{} -> {}",
        args.requests,
        args.clients,
        args.seed,
        if args.chaos { "chaos on, " } else { "" },
        if in_process.is_some() {
            "in-process server".to_string()
        } else {
            format!("daemon at {addr}")
        },
        args.out.as_deref().unwrap_or("-"),
    );
    let corpus = build_corpus(args.seed);

    let stop_chaos = Arc::new(AtomicBool::new(false));
    let chaos_thread = args.chaos.then(|| {
        let stop = Arc::clone(&stop_chaos);
        let seed = args.seed;
        thread::spawn(move || run_chaos(addr, seed, &stop))
    });

    let started = Instant::now();
    let tally = thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|t| {
                let corpus = &corpus;
                let requests = args.requests;
                let clients = args.clients as u64;
                let seed = args.seed;
                let deadline_ms = args.deadline_ms;
                scope.spawn(move || {
                    let indices = (t as u64..requests).step_by(clients as usize);
                    drive_requests(
                        addr,
                        corpus,
                        indices,
                        seed,
                        mix_seed(seed, 0xC11E_0000 + t as u64),
                        deadline_ms,
                    )
                })
            })
            .collect();
        let mut merged = Tally::default();
        for h in handles {
            let t = h.join().expect("client thread never panics");
            merged.ok += t.ok;
            merged.mismatched += t.mismatched;
            merged.connection_errors += t.connection_errors;
            for (k, v) in t.rejected {
                *merged.rejected.entry(k).or_insert(0) += v;
            }
            merged.latencies_us.extend(t.latencies_us);
        }
        merged
    });
    let elapsed = started.elapsed();

    stop_chaos.store(true, Ordering::Relaxed);
    let chaos_actions = chaos_thread.map(|h| h.join().unwrap_or(0)).unwrap_or(0);

    let mut sorted = tally.latencies_us.clone();
    sorted.sort_unstable();
    let json = render_json(&args, &tally, &sorted, chaos_actions, elapsed);
    match args.out.as_deref() {
        None | Some("-") => print!("{json}"),
        Some(path) => std::fs::write(path, &json)
            .map_err(|e| CliError::Failure(format!("loadgen: writing {path}: {e}")))?,
    }

    let failed: u64 = tally.rejected.values().sum::<u64>() + tally.connection_errors;
    let outcomes = tally.ok + failed + tally.mismatched;
    eprintln!(
        "loadgen: {} ok, {} typed failures, {} mismatched, p99 {}us in {:.1}s",
        tally.ok,
        failed,
        tally.mismatched,
        percentile(&sorted, 99.0),
        elapsed.as_secs_f64(),
    );

    // The robustness contract, enforced: every request has exactly one
    // outcome and every Ok response matched the library ground truth.
    if outcomes != args.requests {
        return Err(CliError::Failure(format!(
            "loadgen: {} responses lost ({} issued, {} accounted)",
            args.requests - outcomes,
            args.requests,
            outcomes
        )));
    }
    if tally.mismatched > 0 {
        return Err(CliError::Failure(format!(
            "loadgen: {} mismatched responses (wire result != library result)",
            tally.mismatched
        )));
    }
    if tally.connection_errors > 0 {
        return Err(CliError::Failure(format!(
            "loadgen: {} connection failures (transport lost contact with the service)",
            tally.connection_errors
        )));
    }
    if tally.ok == 0 {
        return Err(CliError::Failure(
            "loadgen: no request succeeded".to_string(),
        ));
    }
    if let Some(handle) = in_process {
        handle.shutdown();
    }
    Ok(())
}
