//! Table-driven batch decoding: the codec hot path.
//!
//! The scalar decoder in [`crate::image`] walks the bit stream one bit at a
//! time — faithful to the paper's hardware description, but far too slow to
//! serve as a software decompressor. This module implements the standard
//! software counterpart (see *Decoding billions of integers per second
//! through vectorization*): a 64-bit refillable bit buffer ([`Cursor`]) plus
//! a precomputed decode table ([`DecodeTable`]) that resolves tag, codeword
//! length, and dictionary rank (or the raw-literal escape) with a single
//! lookup on a fixed bit window.
//!
//! ## Decode-table format
//!
//! For each dictionary a table of `1 << window_bits` packed `u32` entries is
//! built from the codeword classes in [`crate::layout`]. Entry `i` describes
//! what happens when the next `window_bits` bits of the stream equal `i`:
//!
//! | bits    | field     | meaning                                          |
//! |---------|-----------|--------------------------------------------------|
//! | `31..24`| kind      | `HIT`, `RAW`, `BAD_RANK`, or `TOO_LONG`          |
//! | `21..16`| consumed  | codeword bits to consume (tag + index)           |
//! | `15..0` | payload   | decoded half-word (`HIT`) or offending rank (`BAD_RANK`) |
//!
//! A codeword of length `L ≤ window_bits` owns the `2^(window_bits - L)`
//! consecutive entries whose top `L` bits spell it (tags form a prefix code,
//! so the ranges never overlap). `RAW` entries consume only the 3-bit tag;
//! the 16 literal bits are pulled from the buffer afterwards. `BAD_RANK`
//! entries pre-compute the exact [`DecompressError::BadDictIndex`] the
//! scalar decoder would raise. `TOO_LONG` marks windows shorter than the
//! codeword they start; the decoder falls back to a scalar-equivalent path
//! (with the default [`LOOKUP_BITS`] window of 11 bits — the longest
//! dictionary codeword — no `TOO_LONG` entry is ever reachable, but narrower
//! windows are supported and exercised by tests).
//!
//! ## Bit-buffer invariants
//!
//! [`Cursor`] keeps up to 64 left-aligned bits in an accumulator:
//!
//! * after [`Cursor::refill`], at least `min(57, remaining)` bits are valid;
//! * bits below the valid count are zero **or** mirror upcoming stream
//!   bytes (the branch-light 8-byte refill may stage bits it has not
//!   advanced past; re-reading them is idempotent) — at true end-of-stream
//!   they are always zero;
//! * `consumed() = 8 * bytes_loaded - valid_bits` never decreases, and a
//!   failed [`Cursor::read`] reports `Truncated { at_bit: consumed() }`
//!   without consuming — bit-for-bit the contract of [`crate::BitReader`].
//!
//! The fast path runs a table step only while at least [`RAW_LEN_BITS`]
//! (19) bits remain, which bounds every in-window access; the tail of the
//! stream is decoded by the scalar-equivalent path so that success values
//! *and* error values are byte-identical to the reference decoder on every
//! input, valid or corrupt.

use crate::dict::Dictionary;
use crate::layout::{
    CodewordClass, BLOCK_INSNS, HIGH_CLASSES, LOW_CLASSES, RAW_LEN_BITS, RAW_TAG, RAW_TAG_BITS,
};
use crate::DecompressError;

/// Which decoder implementation services decompression requests.
///
/// `Scalar` is the bit-at-a-time reference ([`crate::decode_block_bytes`]);
/// `Fast` is the table-driven hot path of this module. The two are
/// byte-identical on every input — including corrupt ones, where they return
/// equal [`DecompressError`] values — so `Fast` is the default everywhere
/// and `Scalar` remains available as the differential-testing reference.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DecodeBackend {
    /// Bit-at-a-time reference decoder.
    Scalar,
    /// Table-driven batch decoder (this module).
    #[default]
    Fast,
}

impl DecodeBackend {
    /// Parses a backend name as used by `cpack run --backend`.
    pub fn parse(s: &str) -> Option<DecodeBackend> {
        match s {
            "scalar" => Some(DecodeBackend::Scalar),
            "fast" => Some(DecodeBackend::Fast),
            _ => None,
        }
    }

    /// The canonical lower-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            DecodeBackend::Scalar => "scalar",
            DecodeBackend::Fast => "fast",
        }
    }
}

impl std::fmt::Display for DecodeBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Default lookup-window width: the longest dictionary codeword (3-bit tag +
/// 8-bit index). At this width every dictionary codeword resolves in one
/// lookup and the scalar fallback is unreachable.
pub const LOOKUP_BITS: u32 = 11;

/// Decode-path counters for one [`FastDecoder::decode_block_counted`] call.
///
/// The profiling observatory (`cpack profile`) needs to see inside the
/// fast path — how many table lookups a block costs, how often it takes
/// the raw escape, how many bit-buffer refills it pays — to judge future
/// SIMD work against. The hot [`FastDecoder::decode_block`] stays
/// completely uninstrumented (its throughput is scorecard-gated); the
/// counted mirror collects these per block:
///
/// * `table_lookups` — decode-table steps, one per halfword resolved in
///   a window (raw escapes included: the escape is a table entry).
/// * `raw_escapes` — halfwords that took the 3-bit raw tag + 16 literal
///   bits path.
/// * `refills` — bit-buffer refill points in the decode loop (one per
///   instruction on the compressed path, one per accumulator drain on
///   the raw-block path; refills inside scalar-mirror reads not counted).
/// * `scalar_fallbacks` — halfwords decoded by the scalar mirror
///   (stream tail or a codeword longer than the window).
///
/// For a clean compressed block at the default window,
/// `table_lookups + scalar_fallbacks == 2 * BLOCK_INSNS` and
/// `refills == BLOCK_INSNS`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DecodeCounters {
    /// Decode-table lookups performed.
    pub table_lookups: u64,
    /// Raw-escape entries taken.
    pub raw_escapes: u64,
    /// Bit-buffer refill points in the decode loop.
    pub refills: u64,
    /// Halfwords decoded by the scalar-mirror fallback.
    pub scalar_fallbacks: u64,
}

const KIND_SHIFT: u32 = 24;
const LEN_SHIFT: u32 = 16;
const LEN_MASK: u32 = 0x3F;
const KIND_HIT: u32 = 0;
const KIND_RAW: u32 = 1;
const KIND_BAD_RANK: u32 = 2;
const KIND_TOO_LONG: u32 = 3;

const fn pack(kind: u32, len: u32, payload: u16) -> u32 {
    (kind << KIND_SHIFT) | (len << LEN_SHIFT) | payload as u32
}

/// A 64-bit refillable MSB-first bit buffer over a byte slice.
///
/// Semantically equivalent to [`crate::BitReader`] (same values, same
/// `Truncated { at_bit }` positions) but amortises memory traffic to one
/// 8-byte load per ~56 bits instead of one byte load per bit.
#[derive(Clone, Debug)]
struct Cursor<'a> {
    bytes: &'a [u8],
    /// Next byte index to load into the accumulator.
    next: usize,
    /// Left-aligned accumulator: the top `acc_bits` bits are valid.
    acc: u64,
    acc_bits: u32,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor {
            bytes,
            next: 0,
            acc: 0,
            acc_bits: 0,
        }
    }

    /// Bits consumed so far (the scalar reader's `bit_pos`).
    #[inline]
    fn consumed(&self) -> u64 {
        self.next as u64 * 8 - u64::from(self.acc_bits)
    }

    /// Bits left between the read position and the end of the slice.
    #[inline]
    fn remaining(&self) -> u64 {
        self.bytes.len() as u64 * 8 - self.consumed()
    }

    /// Tops the accumulator up to at least `min(57, remaining)` valid bits.
    #[inline]
    fn refill(&mut self) {
        if self.acc_bits > 56 {
            return;
        }
        if let Some(chunk) = self.bytes.get(self.next..self.next + 8) {
            // Branch-light refill: stage a whole 8-byte word, then advance
            // past only the bytes that fit. Staged-but-unadvanced bits are
            // re-ORed identically on the next refill.
            let word = u64::from_be_bytes(chunk.try_into().expect("slice of 8"));
            self.acc |= word >> self.acc_bits;
            self.next += ((63 - self.acc_bits) >> 3) as usize;
            self.acc_bits |= 56;
        } else {
            while self.acc_bits <= 56 && self.next < self.bytes.len() {
                self.acc |= u64::from(self.bytes[self.next]) << (56 - self.acc_bits);
                self.next += 1;
                self.acc_bits += 8;
            }
        }
    }

    /// The next `n` (1–57) bits without consuming. Caller must ensure
    /// `n <= acc_bits` (guaranteed after `refill` when `remaining() >= n`).
    #[inline]
    fn peek(&self, n: u32) -> u32 {
        debug_assert!((1..=57).contains(&n) && n <= self.acc_bits);
        (self.acc >> (64 - n)) as u32
    }

    /// Consumes `n <= acc_bits` bits.
    #[inline]
    fn consume(&mut self, n: u32) {
        debug_assert!(n <= self.acc_bits);
        self.acc <<= n;
        self.acc_bits -= n;
    }

    /// Reads `n` (0–32) bits MSB-first with [`crate::BitReader`] semantics:
    /// a short stream yields `Truncated { at_bit }` at the current position
    /// without consuming anything.
    #[inline]
    fn read(&mut self, n: u32) -> Result<u32, DecompressError> {
        debug_assert!(n <= 32);
        if n == 0 {
            return Ok(0);
        }
        self.refill();
        if self.remaining() < u64::from(n) {
            return Err(DecompressError::Truncated {
                at_bit: self.consumed(),
            });
        }
        let value = self.peek(n);
        self.consume(n);
        Ok(value)
    }
}

/// Precomputed single-lookup decode table for one dictionary.
#[derive(Clone, Debug)]
struct DecodeTable {
    window_bits: u32,
    entries: Vec<u32>,
    /// Rank-ordered dictionary values, for the scalar fallback path.
    values: Vec<u16>,
    dict_len: u16,
    high: bool,
    classes: &'static [CodewordClass; 5],
}

impl DecodeTable {
    fn build(
        dict: &Dictionary,
        classes: &'static [CodewordClass; 5],
        high: bool,
        window_bits: u32,
    ) -> DecodeTable {
        assert!(
            (u32::from(RAW_TAG_BITS)..=16).contains(&window_bits),
            "window must cover at least the raw tag and at most 16 bits"
        );
        let mut entries = vec![pack(KIND_TOO_LONG, 0, 0); 1 << window_bits];
        let fill = |entries: &mut [u32], code: u32, len: u32, entry: u32| {
            let span = 1usize << (window_bits - len);
            let start = (code as usize) << (window_bits - len);
            for e in &mut entries[start..start + span] {
                *e = entry;
            }
        };
        fill(
            &mut entries,
            u32::from(RAW_TAG),
            u32::from(RAW_TAG_BITS),
            pack(KIND_RAW, u32::from(RAW_TAG_BITS), 0),
        );
        for class in classes {
            let len = u32::from(class.len_bits());
            if len > window_bits {
                continue;
            }
            for idx in 0..class.capacity() {
                let rank = class.base + idx;
                let code = (u32::from(class.tag) << class.index_bits) | u32::from(idx);
                let entry = match dict.value(rank) {
                    Some(v) => pack(KIND_HIT, len, v),
                    None => pack(KIND_BAD_RANK, len, rank),
                };
                fill(&mut entries, code, len, entry);
            }
        }
        DecodeTable {
            window_bits,
            entries,
            values: dict.iter().map(|(_, v)| v).collect(),
            dict_len: dict.len(),
            high,
            classes,
        }
    }

    /// Decodes one half-word codeword at the cursor.
    #[inline]
    fn decode(&self, cur: &mut Cursor<'_>) -> Result<u16, DecompressError> {
        cur.refill();
        if cur.remaining() < u64::from(RAW_LEN_BITS) {
            // Near the end of the stream a window peek could run past the
            // slice; mirror the scalar decoder read-for-read instead so
            // truncation positions stay identical.
            return self.decode_scalar(cur);
        }
        self.decode_prefetched(cur)
    }

    /// The table step, assuming the caller already refilled and checked that
    /// at least [`RAW_LEN_BITS`] bits remain (the longest codeword).
    #[inline]
    fn decode_prefetched(&self, cur: &mut Cursor<'_>) -> Result<u16, DecompressError> {
        let entry = self.entries[cur.peek(self.window_bits) as usize];
        match entry >> KIND_SHIFT {
            KIND_HIT => {
                cur.consume((entry >> LEN_SHIFT) & LEN_MASK);
                Ok(entry as u16)
            }
            KIND_RAW => {
                cur.consume(u32::from(RAW_TAG_BITS));
                let literal = cur.peek(16) as u16;
                cur.consume(16);
                Ok(literal)
            }
            KIND_BAD_RANK => Err(DecompressError::BadDictIndex {
                high: self.high,
                rank: entry as u16,
                dict_len: self.dict_len,
            }),
            _ => self.decode_scalar(cur),
        }
    }

    /// Counting mirror of [`DecodeTable::decode`]; same results, plus
    /// [`DecodeCounters`] bookkeeping. Kept separate so the hot path
    /// carries no counter stores.
    fn decode_counted(
        &self,
        cur: &mut Cursor<'_>,
        c: &mut DecodeCounters,
    ) -> Result<u16, DecompressError> {
        cur.refill();
        if cur.remaining() < u64::from(RAW_LEN_BITS) {
            c.scalar_fallbacks += 1;
            return self.decode_scalar(cur);
        }
        self.decode_prefetched_counted(cur, c)
    }

    /// Counting mirror of [`DecodeTable::decode_prefetched`].
    fn decode_prefetched_counted(
        &self,
        cur: &mut Cursor<'_>,
        c: &mut DecodeCounters,
    ) -> Result<u16, DecompressError> {
        c.table_lookups += 1;
        let entry = self.entries[cur.peek(self.window_bits) as usize];
        match entry >> KIND_SHIFT {
            KIND_HIT => {
                cur.consume((entry >> LEN_SHIFT) & LEN_MASK);
                Ok(entry as u16)
            }
            KIND_RAW => {
                c.raw_escapes += 1;
                cur.consume(u32::from(RAW_TAG_BITS));
                let literal = cur.peek(16) as u16;
                cur.consume(16);
                Ok(literal)
            }
            KIND_BAD_RANK => Err(DecompressError::BadDictIndex {
                high: self.high,
                rank: entry as u16,
                dict_len: self.dict_len,
            }),
            _ => {
                c.scalar_fallbacks += 1;
                self.decode_scalar(cur)
            }
        }
    }

    /// Read-for-read mirror of the scalar `decode_halfword`, over the
    /// cursor. Used for stream tails and window-overflowing codewords.
    fn decode_scalar(&self, cur: &mut Cursor<'_>) -> Result<u16, DecompressError> {
        let first_two = cur.read(2)? as u8;
        let (tag, tag_bits) = if first_two <= 0b01 {
            (first_two, 2u8)
        } else {
            ((first_two << 1) | cur.read(1)? as u8, 3u8)
        };
        if tag == RAW_TAG {
            return Ok(cur.read(16)? as u16);
        }
        let class = self
            .classes
            .iter()
            .find(|c| c.tag == tag && c.tag_bits == tag_bits)
            .expect("every non-raw tag pattern maps to a class");
        let rank = class.base + cur.read(u32::from(class.index_bits))? as u16;
        self.values
            .get(rank as usize)
            .copied()
            .ok_or(DecompressError::BadDictIndex {
                high: self.high,
                rank,
                dict_len: self.dict_len,
            })
    }
}

/// What a decode-table entry resolves a bit window to.
///
/// Part of the hidden inspection surface consumed by the `sr32lint`
/// decode-table soundness prover (`codepack-analyze`), which re-derives the
/// expected entry for every window from the scalar tag semantics and
/// compares. Not a stable public API.
#[doc(hidden)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TableEntryKind {
    /// A complete dictionary codeword: payload is the decoded half-word.
    Hit,
    /// The 3-bit raw-literal escape; only the tag is consumed by the table.
    Raw,
    /// A well-formed codeword whose rank lies past the dictionary: payload
    /// is the offending rank.
    BadRank,
    /// The window is shorter than the codeword it starts.
    TooLong,
}

/// One unpacked decode-table entry, as seen through [`FastDecoder::inspect`].
#[doc(hidden)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableEntry {
    /// What the window resolves to.
    pub kind: TableEntryKind,
    /// Codeword bits the table step consumes.
    pub consumed: u32,
    /// Decoded half-word (`Hit`) or offending rank (`BadRank`); zero
    /// otherwise.
    pub payload: u16,
}

/// Read-only view of one decode table, for the static prover.
#[doc(hidden)]
pub struct TableView<'a> {
    table: &'a DecodeTable,
}

impl TableView<'_> {
    /// The window width the table was built for.
    pub fn window_bits(&self) -> u32 {
        self.table.window_bits
    }

    /// Number of entries (`1 << window_bits` for a well-formed table).
    pub fn len(&self) -> usize {
        self.table.entries.len()
    }

    /// `true` when the table has no entries (never, for a built table).
    pub fn is_empty(&self) -> bool {
        self.table.entries.is_empty()
    }

    /// The dictionary length the table encodes rank bounds against.
    pub fn dict_len(&self) -> u16 {
        self.table.dict_len
    }

    /// Unpacks entry `window`.
    ///
    /// # Panics
    ///
    /// Panics if `window >= self.len()`.
    pub fn entry(&self, window: usize) -> TableEntry {
        let e = self.table.entries[window];
        let kind = match e >> KIND_SHIFT {
            KIND_HIT => TableEntryKind::Hit,
            KIND_RAW => TableEntryKind::Raw,
            KIND_BAD_RANK => TableEntryKind::BadRank,
            _ => TableEntryKind::TooLong,
        };
        TableEntry {
            kind,
            consumed: (e >> LEN_SHIFT) & LEN_MASK,
            payload: e as u16,
        }
    }
}

/// The table-driven batch decoder for one pair of dictionaries.
///
/// Construction walks both dictionaries once to build the decode tables
/// (a few thousand entries); [`FastDecoder::decode_block`] then decodes any
/// number of blocks with one table lookup per codeword. [`CodePackImage`]
/// caches one of these per image.
///
/// [`CodePackImage`]: crate::CodePackImage
///
/// ```
/// use codepack_core::{CodePackImage, CompressionConfig, FastDecoder};
/// let text = vec![0x2402_0001u32; 16];
/// let image = CodePackImage::compress(&text, &CompressionConfig::default());
/// let fast = FastDecoder::new(image.high_dict(), image.low_dict());
/// let words = fast.decode_block(image.compressed_bytes()).unwrap();
/// assert_eq!(&words[..], &text[..]);
/// ```
#[derive(Clone, Debug)]
pub struct FastDecoder {
    high: DecodeTable,
    low: DecodeTable,
}

impl FastDecoder {
    /// Builds decode tables with the default [`LOOKUP_BITS`] window.
    pub fn new(high_dict: &Dictionary, low_dict: &Dictionary) -> FastDecoder {
        FastDecoder::with_window(high_dict, low_dict, LOOKUP_BITS)
    }

    /// Builds decode tables with a custom window width (3–16 bits). Windows
    /// narrower than the longest codeword exercise the scalar fallback;
    /// useful for testing, and for trading table size against hit rate.
    ///
    /// # Panics
    ///
    /// Panics if `window_bits` is outside `3..=16`.
    pub fn with_window(
        high_dict: &Dictionary,
        low_dict: &Dictionary,
        window_bits: u32,
    ) -> FastDecoder {
        FastDecoder {
            high: DecodeTable::build(high_dict, &HIGH_CLASSES, true, window_bits),
            low: DecodeTable::build(low_dict, &LOW_CLASSES, false, window_bits),
        }
    }

    /// Inspection view of one decode table (`true` = high dictionary).
    ///
    /// Hidden surface for the `sr32lint` table prover; not a stable API.
    #[doc(hidden)]
    pub fn inspect(&self, high: bool) -> TableView<'_> {
        TableView {
            table: if high { &self.high } else { &self.low },
        }
    }

    /// XORs `xor` into the packed entry at `window` of one decode table —
    /// the deliberate-corruption hook for the prover's negative tests. The
    /// decoder itself remains memory-safe on any poisoned table (entries
    /// only select match arms and consume counts masked to 6 bits).
    ///
    /// # Panics
    ///
    /// Panics if `window` is outside the table.
    #[doc(hidden)]
    pub fn poison_entry(&mut self, high: bool, window: usize, xor: u32) {
        let table = if high { &mut self.high } else { &mut self.low };
        table.entries[window] ^= xor;
    }

    /// Decodes one 16-instruction block starting at `bytes[0]`.
    ///
    /// Byte-identical to [`crate::decode_block_bytes`] on every input:
    /// equal output words on success and equal [`DecompressError`] values on
    /// corrupt or truncated streams. Trailing bits after the block (byte-
    /// alignment padding, subsequent blocks) are ignored.
    ///
    /// # Errors
    ///
    /// Returns a [`DecompressError`] if the stream is truncated or a
    /// codeword indexes past a dictionary. Never panics, whatever the input.
    pub fn decode_block(
        &self,
        bytes: &[u8],
    ) -> Result<[u32; BLOCK_INSNS as usize], DecompressError> {
        let mut cur = Cursor::new(bytes);
        let mut out = [0u32; BLOCK_INSNS as usize];
        if cur.read(1)? == 1 {
            // Non-compressed block: 16 raw 32-bit words. One refill covers
            // at least one word, so drain the accumulator between refills.
            let mut i = 0;
            while i < out.len() {
                cur.refill();
                if cur.remaining() < 32 {
                    return Err(DecompressError::Truncated {
                        at_bit: cur.consumed(),
                    });
                }
                while cur.acc_bits >= 32 && i < out.len() {
                    out[i] = cur.peek(32);
                    cur.consume(32);
                    i += 1;
                }
            }
            return Ok(out);
        }
        // One refill covers a whole instruction: both halfwords together are
        // at most 2 * RAW_LEN_BITS = 38 bits, and a refill stages >= 56 when
        // that much stream remains — so the common path pays one refill and
        // one bounds check per instruction instead of per halfword.
        for slot in &mut out {
            cur.refill();
            let (high, low) = if cur.remaining() >= 2 * u64::from(RAW_LEN_BITS) {
                (
                    self.high.decode_prefetched(&mut cur)?,
                    self.low.decode_prefetched(&mut cur)?,
                )
            } else {
                (self.high.decode(&mut cur)?, self.low.decode(&mut cur)?)
            };
            *slot = (u32::from(high) << 16) | u32::from(low);
        }
        Ok(out)
    }

    /// [`FastDecoder::decode_block`] plus [`DecodeCounters`]: identical
    /// results (success values and error values alike), with decode-path
    /// bookkeeping the profiler folds into block profiles. A deliberate
    /// structural mirror of the uncounted path — the hot loop must stay
    /// store-free, so the two are kept textually separate and pinned
    /// together by the `counted_decode_matches_uncounted` test.
    pub fn decode_block_counted(
        &self,
        bytes: &[u8],
    ) -> (
        Result<[u32; BLOCK_INSNS as usize], DecompressError>,
        DecodeCounters,
    ) {
        let mut c = DecodeCounters::default();
        let result = self.decode_block_counted_inner(bytes, &mut c);
        (result, c)
    }

    fn decode_block_counted_inner(
        &self,
        bytes: &[u8],
        c: &mut DecodeCounters,
    ) -> Result<[u32; BLOCK_INSNS as usize], DecompressError> {
        let mut cur = Cursor::new(bytes);
        let mut out = [0u32; BLOCK_INSNS as usize];
        if cur.read(1)? == 1 {
            let mut i = 0;
            while i < out.len() {
                c.refills += 1;
                cur.refill();
                if cur.remaining() < 32 {
                    return Err(DecompressError::Truncated {
                        at_bit: cur.consumed(),
                    });
                }
                while cur.acc_bits >= 32 && i < out.len() {
                    out[i] = cur.peek(32);
                    cur.consume(32);
                    i += 1;
                }
            }
            return Ok(out);
        }
        for slot in &mut out {
            c.refills += 1;
            cur.refill();
            let (high, low) = if cur.remaining() >= 2 * u64::from(RAW_LEN_BITS) {
                (
                    self.high.decode_prefetched_counted(&mut cur, c)?,
                    self.low.decode_prefetched_counted(&mut cur, c)?,
                )
            } else {
                (
                    self.high.decode_counted(&mut cur, c)?,
                    self.low.decode_counted(&mut cur, c)?,
                )
            };
            *slot = (u32::from(high) << 16) | u32::from(low);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitReader;
    use crate::image::{decode_block_bytes, CodePackImage, CompressionConfig};

    fn sample_image() -> CodePackImage {
        // Frequent immediates plus per-block unique constants: exercises
        // every codeword class and the raw escape.
        let text: Vec<u32> = (0..256)
            .map(|i| match i % 16 {
                15 => 0x3c01_0000 | ((i as u32).wrapping_mul(2654435761) >> 16),
                k => 0x2402_0000 | (k as u32),
            })
            .collect();
        CodePackImage::compress(&text, &CompressionConfig::default())
    }

    /// Deterministic xorshift — no external entropy in unit tests.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn cursor_matches_bitreader_values_and_errors() {
        let mut seed = 0x1234_5678_9abc_def0u64;
        for round in 0..200 {
            let len = (xorshift(&mut seed) % 40) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| xorshift(&mut seed) as u8).collect();
            let mut reader = BitReader::new(&bytes);
            let mut cursor = Cursor::new(&bytes);
            loop {
                let n = (xorshift(&mut seed) % 33) as u32;
                let want = reader.read(n);
                let got = cursor.read(n);
                assert_eq!(want, got, "round {round} read({n})");
                assert_eq!(reader.bit_pos(), cursor.consumed(), "round {round}");
                assert_eq!(reader.remaining(), cursor.remaining(), "round {round}");
                if want.is_err() && n > 0 {
                    break;
                }
            }
        }
    }

    #[test]
    fn cursor_zero_bit_read_always_succeeds() {
        let mut cur = Cursor::new(&[]);
        assert_eq!(cur.read(0), Ok(0));
        assert_eq!(cur.read(1), Err(DecompressError::Truncated { at_bit: 0 }));
    }

    #[test]
    fn default_window_resolves_every_codeword_pattern() {
        let img = sample_image();
        let fast = FastDecoder::new(img.high_dict(), img.low_dict());
        for table in [&fast.high, &fast.low] {
            assert_eq!(table.entries.len(), 1 << LOOKUP_BITS);
            for (i, &e) in table.entries.iter().enumerate() {
                assert_ne!(
                    e >> KIND_SHIFT,
                    KIND_TOO_LONG,
                    "window pattern {i:#x} unresolved at the full 11-bit window"
                );
            }
        }
    }

    #[test]
    fn fast_equals_scalar_on_clean_blocks() {
        let img = sample_image();
        let fast = FastDecoder::new(img.high_dict(), img.low_dict());
        for b in 0..img.num_blocks() {
            let offset = img.block_offset_via_index(b).unwrap() as usize;
            let bytes = &img.compressed_bytes()[offset..];
            assert_eq!(
                fast.decode_block(bytes),
                decode_block_bytes(bytes, img.high_dict(), img.low_dict()),
                "block {b}"
            );
        }
    }

    #[test]
    fn narrow_window_falls_back_and_still_matches() {
        let img = sample_image();
        for window in [3, 4, 6, 8] {
            let fast = FastDecoder::with_window(img.high_dict(), img.low_dict(), window);
            let has_too_long = fast
                .high
                .entries
                .iter()
                .any(|&e| e >> KIND_SHIFT == KIND_TOO_LONG);
            assert!(
                has_too_long,
                "a {window}-bit window must leave some codewords to the fallback"
            );
            for b in 0..img.num_blocks() {
                let offset = img.block_offset_via_index(b).unwrap() as usize;
                let bytes = &img.compressed_bytes()[offset..];
                assert_eq!(
                    fast.decode_block(bytes),
                    decode_block_bytes(bytes, img.high_dict(), img.low_dict()),
                    "window {window} block {b}"
                );
            }
        }
    }

    #[test]
    fn truncated_streams_report_identical_positions() {
        let img = sample_image();
        let fast = FastDecoder::new(img.high_dict(), img.low_dict());
        let offset = img.block_offset_via_index(0).unwrap() as usize;
        let block_len = img.block_info(0).byte_len as usize;
        let block = &img.compressed_bytes()[offset..offset + block_len];
        for cut in 0..block.len() {
            let short = &block[..cut];
            assert_eq!(
                fast.decode_block(short),
                decode_block_bytes(short, img.high_dict(), img.low_dict()),
                "truncated to {cut} bytes"
            );
        }
    }

    #[test]
    fn bad_rank_entries_match_scalar_errors() {
        // A tiny dictionary leaves most ranks unmapped: craft a codeword
        // that indexes past it and check both paths agree on the error.
        let high = Dictionary::from_ranked_values(vec![0x2402]);
        let low = Dictionary::from_ranked_values(vec![0x0000, 0x0001]);
        let fast = FastDecoder::new(&high, &low);
        // Block flag 0, then high tag 01 (class base 4) + index 0 -> rank 4.
        let mut w = crate::bits::BitWriter::new();
        w.write(0, 1);
        w.write(0b01, 2);
        w.write(0, 3);
        let bytes = w.into_bytes();
        let want = decode_block_bytes(&bytes, &high, &low);
        assert_eq!(fast.decode_block(&bytes), want);
        assert_eq!(
            want,
            Err(DecompressError::BadDictIndex {
                high: true,
                rank: 4,
                dict_len: 1,
            })
        );
    }

    #[test]
    fn counted_decode_matches_uncounted() {
        let img = sample_image();
        for window in [LOOKUP_BITS, 4] {
            let fast = FastDecoder::with_window(img.high_dict(), img.low_dict(), window);
            for b in 0..img.num_blocks() {
                let offset = img.block_offset_via_index(b).unwrap() as usize;
                let block_len = img.block_info(b).byte_len as usize;
                let whole = &img.compressed_bytes()[offset..offset + block_len];
                // Equal on clean blocks and on every truncation of them.
                for cut in (0..=whole.len()).rev() {
                    let bytes = &whole[..cut];
                    let (counted, c) = fast.decode_block_counted(bytes);
                    assert_eq!(
                        counted,
                        fast.decode_block(bytes),
                        "window {window} block {b}"
                    );
                    if cut == whole.len() {
                        assert_eq!(c.refills, u64::from(BLOCK_INSNS));
                        if window == LOOKUP_BITS {
                            assert_eq!(c.scalar_fallbacks, 0, "full window never falls back");
                            assert_eq!(
                                c.table_lookups,
                                2 * u64::from(BLOCK_INSNS),
                                "every halfword is one table lookup"
                            );
                        } else {
                            // A window-overflowing halfword counts both the
                            // lookup that found the long entry and the scalar
                            // fallback that resolved it, so the sum exceeds
                            // the halfword count.
                            assert!(c.scalar_fallbacks > 0, "narrow window must fall back");
                            assert!(
                                c.table_lookups + c.scalar_fallbacks >= 2 * u64::from(BLOCK_INSNS),
                                "every halfword does at least one of the two"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn counted_decode_counts_raw_blocks() {
        let text: Vec<u32> = (0..16u32)
            .map(|i| i.wrapping_mul(2654435761).rotate_left(7))
            .collect();
        let img = CodePackImage::compress(&text, &CompressionConfig::default());
        assert!(img.stats().raw_blocks > 0, "need a raw block to test");
        let fast = FastDecoder::new(img.high_dict(), img.low_dict());
        let offset = img.block_offset_via_index(0).unwrap() as usize;
        let (got, c) = fast.decode_block_counted(&img.compressed_bytes()[offset..]);
        assert_eq!(got.unwrap()[..], text[..]);
        assert_eq!(c.table_lookups, 0, "raw blocks never touch the tables");
        assert!(c.refills > 0);
    }

    #[test]
    fn backend_names_round_trip() {
        assert_eq!(DecodeBackend::parse("fast"), Some(DecodeBackend::Fast));
        assert_eq!(DecodeBackend::parse("scalar"), Some(DecodeBackend::Scalar));
        assert_eq!(DecodeBackend::parse("simd"), None);
        assert_eq!(DecodeBackend::default(), DecodeBackend::Fast);
        for b in [DecodeBackend::Scalar, DecodeBackend::Fast] {
            assert_eq!(DecodeBackend::parse(b.as_str()), Some(b));
            assert_eq!(b.to_string(), b.as_str());
        }
    }

    #[test]
    fn raw_blocks_decode_identically() {
        let text: Vec<u32> = (0..64u32)
            .map(|i| i.wrapping_mul(2654435761).rotate_left(7))
            .collect();
        let img = CodePackImage::compress(&text, &CompressionConfig::default());
        assert!(img.stats().raw_blocks > 0, "need a raw block to test");
        let fast = FastDecoder::new(img.high_dict(), img.low_dict());
        for b in 0..img.num_blocks() {
            let offset = img.block_offset_via_index(b).unwrap() as usize;
            let bytes = &img.compressed_bytes()[offset..];
            assert_eq!(
                fast.decode_block(bytes),
                decode_block_bytes(bytes, img.high_dict(), img.low_dict())
            );
        }
    }
}
