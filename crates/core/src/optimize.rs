//! Compression-aware code canonicalization — the compiler assist the paper
//! suggests in §5.1: "It is possible that new compiler optimizations could
//! select instructions so that more of them fit in the dictionary and less
//! raw bits are required."
//!
//! This pass applies the cheapest such optimization: for **commutative**
//! integer operations (`addu`, `and`, `or`, `xor`, plus `mult`/`multu`
//! operand order), it orders the two source registers canonically
//! (lower-numbered register first). The rewritten instruction computes the
//! identical result, but programs become more self-similar: `addu $3,$5,$4`
//! and `addu $3,$4,$5` collapse to one dictionary entry.

use codepack_isa::{decode, encode, Instruction, Reg};

/// Statistics from one canonicalization run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CanonicalizeStats {
    /// Instructions whose operands were reordered.
    pub rewritten: u64,
    /// Total instructions examined.
    pub total: u64,
}

/// Reorders commutative source operands into canonical (ascending register
/// number) order. Returns the rewritten text and what changed.
///
/// The transformation is semantics-preserving: only operand *order* of
/// commutative operations changes, never the computed value, the
/// destination, or any control flow. Undecodable words pass through
/// untouched.
///
/// ```
/// use codepack_core::canonicalize_commutative;
/// use codepack_isa::{decode, encode, Instruction, Reg};
///
/// let messy = encode(Instruction::Addu { rd: Reg::V0, rs: Reg::A1, rt: Reg::A0 });
/// let (text, stats) = canonicalize_commutative(&[messy]);
/// assert_eq!(stats.rewritten, 1);
/// match decode(text[0]).unwrap() {
///     Instruction::Addu { rs, rt, .. } => assert!(rs.index() < rt.index()),
///     _ => unreachable!(),
/// }
/// ```
pub fn canonicalize_commutative(text: &[u32]) -> (Vec<u32>, CanonicalizeStats) {
    let mut stats = CanonicalizeStats::default();
    let out = text
        .iter()
        .map(|&w| {
            stats.total += 1;
            let Ok(insn) = decode(w) else { return w };
            match canonical_form(insn) {
                Some(better) => {
                    stats.rewritten += 1;
                    encode(better)
                }
                None => w,
            }
        })
        .collect();
    (out, stats)
}

/// The canonical form of `insn` if one exists and differs from `insn`.
fn canonical_form(insn: Instruction) -> Option<Instruction> {
    use Instruction::*;
    let swap = |rs: Reg, rt: Reg| rs.index() > rt.index();
    match insn {
        Addu { rd, rs, rt } if swap(rs, rt) => Some(Addu { rd, rs: rt, rt: rs }),
        And { rd, rs, rt } if swap(rs, rt) => Some(And { rd, rs: rt, rt: rs }),
        Or { rd, rs, rt } if swap(rs, rt) => Some(Or { rd, rs: rt, rt: rs }),
        Xor { rd, rs, rt } if swap(rs, rt) => Some(Xor { rd, rs: rt, rt: rs }),
        Nor { rd, rs, rt } if swap(rs, rt) => Some(Nor { rd, rs: rt, rt: rs }),
        Mult { rs, rt } if swap(rs, rt) => Some(Mult { rs: rt, rt: rs }),
        Multu { rs, rt } if swap(rs, rt) => Some(Multu { rs: rt, rt: rs }),
        AddS { fd, fs, ft } if fs.index() > ft.index() => Some(AddS { fd, fs: ft, ft: fs }),
        MulS { fd, fs, ft } if fs.index() > ft.index() => Some(MulS { fd, fs: ft, ft: fs }),
        CEqS { fs, ft } if fs.index() > ft.index() => Some(CEqS { fs: ft, ft: fs }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CodePackImage, CompressionConfig};

    #[test]
    fn non_commutative_ops_untouched() {
        let sub = encode(Instruction::Subu {
            rd: Reg::V0,
            rs: Reg::A1,
            rt: Reg::A0,
        });
        let (text, stats) = canonicalize_commutative(&[sub]);
        assert_eq!(text[0], sub, "subtraction is not commutative");
        assert_eq!(stats.rewritten, 0);
    }

    #[test]
    fn already_canonical_is_a_fixpoint() {
        let ok = encode(Instruction::Or {
            rd: Reg::T0,
            rs: Reg::A0,
            rt: Reg::A1,
        });
        let (text, stats) = canonicalize_commutative(&[ok]);
        assert_eq!(text[0], ok);
        assert_eq!(stats.rewritten, 0);
        // Idempotence on a rewritten stream.
        let messy = encode(Instruction::Or {
            rd: Reg::T0,
            rs: Reg::A1,
            rt: Reg::A0,
        });
        let (once, _) = canonicalize_commutative(&[messy]);
        let (twice, stats) = canonicalize_commutative(&once);
        assert_eq!(once, twice);
        assert_eq!(stats.rewritten, 0);
    }

    #[test]
    fn undecodable_words_pass_through() {
        let (text, stats) = canonicalize_commutative(&[0xffff_ffff]);
        assert_eq!(text[0], 0xffff_ffff);
        assert_eq!(stats.rewritten, 0);
    }

    #[test]
    fn canonicalization_never_hurts_compression() {
        // A stream of commutative ops with scrambled operand order.
        let text: Vec<u32> = (0..512u32)
            .map(|i| {
                let a = Reg::new(8 + (i % 6) as u8);
                let b = Reg::new(8 + ((i / 7) % 6) as u8);
                encode(Instruction::Addu {
                    rd: Reg::new(2 + (i % 4) as u8),
                    rs: a,
                    rt: b,
                })
            })
            .collect();
        let before = CodePackImage::compress(&text, &CompressionConfig::default())
            .stats()
            .total_bytes();
        let (canon, stats) = canonicalize_commutative(&text);
        let after = CodePackImage::compress(&canon, &CompressionConfig::default())
            .stats()
            .total_bytes();
        assert!(stats.rewritten > 0);
        assert!(
            after <= before,
            "canonical text must compress at least as well: {after} vs {before}"
        );
    }
}
