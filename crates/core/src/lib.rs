//! # codepack-core — the CodePack code-compression algorithm
//!
//! This crate is the paper's subject (*Evaluation of a High Performance Code
//! Compression Method*, MICRO-32 1999): IBM's CodePack instruction
//! compression as shipped in the PowerPC 405, reimplemented from the paper's
//! description.
//!
//! ## The algorithm (paper §3.1, Figure 1)
//!
//! Each 32-bit instruction is split into 16-bit **high** and **low**
//! half-words with very different value distributions, so two separate
//! dictionaries (fewer than 512 entries each) are fixed at program load
//! time. Each half-word becomes a variable-length codeword of 2–11 bits — a
//! 2/3-bit *tag* giving the size class plus a dictionary index — or a 3-bit
//! raw tag followed by the literal 16 bits. The low half-word value `0`
//! (the most common) gets a tag-only 2-bit codeword. Groups of 16
//! instructions form byte-aligned **compression blocks**; two blocks form a
//! **compression group** mapped by one 32-bit **index table** entry
//! (first-block address + short second-block offset), which translates
//! L1-miss addresses into the compressed address space.
//!
//! ## What's here
//!
//! * [`CodePackImage`] — compress / decompress whole text sections, with the
//!   full composition accounting of the paper's Tables 3–4
//!   ([`CompositionStats`]),
//! * [`Dictionary`] — frequency-ranked half-word dictionaries,
//! * [`FastDecoder`] / [`DecodeBackend`] — the table-driven batch decoder
//!   hot path and the selector that keeps the scalar reference available,
//! * [`frame`] — the `.cpk` streaming frame format: a self-describing
//!   container over independently decodable group chunks with integrity
//!   trailers, parallel [`pack_frame`] / [`unpack_frame`], and
//!   [`FrameWriter`] / [`FrameReader`] io adapters,
//! * [`NativeFetch`] / [`CodePackFetch`] — cycle-level models of the L1
//!   I-miss service path (Figure 2), including the paper's optimizations:
//!   the fully-associative index cache and wider decompressors
//!   ([`DecompressorConfig`]),
//! * [`BitReader`] / [`BitWriter`] — the bit-granular stream layer.
//!
//! ```
//! use codepack_core::{CodePackImage, CompressionConfig};
//!
//! let text: Vec<u32> = (0..256).map(|i| 0x8c62_0000 | (i % 9)).collect();
//! let image = CodePackImage::compress(&text, &CompressionConfig::default());
//! assert_eq!(image.decompress_all()?, text);
//! println!("compression ratio: {:.1}%", image.stats().compression_ratio() * 100.0);
//! # Ok::<(), codepack_core::DecompressError>(())
//! ```

#![forbid(unsafe_code)]

mod bits;
mod dict;
mod error;
mod fastdecode;
mod fetch;
pub mod frame;
mod image;
pub mod layout;
mod optimize;
mod rom;
mod stats;

pub use bits::{BitReader, BitWriter};
pub use dict::Dictionary;
pub use error::DecompressError;
pub use fastdecode::{DecodeBackend, DecodeCounters, FastDecoder, LOOKUP_BITS};
#[doc(hidden)]
pub use fastdecode::{TableEntry, TableEntryKind, TableView};
pub use fetch::{
    CodePackFetch, DecompressorConfig, FetchEngine, FetchStats, IndexCacheModel, MissService,
    MissSource, NativeFetch,
};
pub use frame::{
    pack_frame, scan_frame, unpack_frame, FrameError, FrameReader, FrameRegion, FrameSummary,
    FrameWriter, PackOptions, UnpackOptions, FRAME_MAGIC, FRAME_VERSION,
};
pub use image::{
    decode_block_bytes, BlockInfo, CodePackImage, CompressionConfig, CorruptionOutOfRange,
};
pub use layout::{BLOCKS_PER_GROUP, BLOCK_INSNS, GROUP_INSNS};
pub use optimize::{canonicalize_commutative, CanonicalizeStats};
pub use rom::{parse_rom_parts, RomError, RomParts, ROM_MAGIC};
pub use stats::CompositionStats;
