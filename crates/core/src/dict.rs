//! Frequency-ranked half-word dictionaries.
//!
//! CodePack fixes its two dictionaries at program load time, adapting them to
//! the specific program (paper §3.1): the most common half-word values get
//! the shortest codewords. Values that do not earn a dictionary slot are left
//! in the instruction stream as raw escapes.

use std::collections::HashMap;

/// A ranked dictionary mapping 16-bit half-word values to codeword ranks.
///
/// Rank order *is* codeword length order: lower ranks land in shorter
/// codeword classes (see [`crate::layout`]).
///
/// ```
/// use codepack_core::Dictionary;
/// // "7" appears three times, "9" twice — "7" gets the lower rank.
/// let d = Dictionary::build([7, 9, 7, 9, 7].into_iter(), 16, 2, false);
/// assert_eq!(d.rank_of(7), Some(0));
/// assert_eq!(d.rank_of(9), Some(1));
/// assert_eq!(d.rank_of(1234), None);
/// assert_eq!(d.value(0), Some(7));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dictionary {
    ranks: Vec<u16>,
    index: HashMap<u16, u16>,
}

impl Dictionary {
    /// Builds a dictionary from a stream of half-word occurrences.
    ///
    /// * `capacity` — maximum number of entries kept (the codeword layout
    ///   caps this below 512),
    /// * `min_count` — values occurring fewer than this many times are left
    ///   out (a dictionary slot costs 16 bits of table space, so singletons
    ///   are cheaper as raw escapes),
    /// * `pin_zero` — reserve rank 0 for the value `0x0000` regardless of
    ///   its frequency. Used for the low dictionary, whose rank 0 is the
    ///   2-bit tag-only codeword.
    ///
    /// Ranking is deterministic: by descending count, then ascending value.
    pub fn build(
        halfwords: impl Iterator<Item = u16>,
        capacity: u16,
        min_count: u32,
        pin_zero: bool,
    ) -> Dictionary {
        let mut counts: HashMap<u16, u32> = HashMap::new();
        for h in halfwords {
            *counts.entry(h).or_insert(0) += 1;
        }
        if pin_zero {
            counts.remove(&0);
        }
        let mut ranked: Vec<(u16, u32)> = counts
            .into_iter()
            .filter(|&(_, c)| c >= min_count)
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        let mut ranks = Vec::with_capacity(capacity as usize);
        if pin_zero {
            ranks.push(0u16);
        }
        ranks.extend(
            ranked
                .iter()
                .take(capacity as usize - ranks.len())
                .map(|&(v, _)| v),
        );
        let index = ranks
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u16))
            .collect();
        Dictionary { ranks, index }
    }

    /// Reconstructs a dictionary from its rank-ordered values (e.g. when
    /// loading a ROM image — the hardware receives exactly this table at
    /// program load time).
    ///
    /// ```
    /// use codepack_core::Dictionary;
    /// let d = Dictionary::from_ranked_values(vec![7, 9]);
    /// assert_eq!(d.rank_of(9), Some(1));
    /// ```
    pub fn from_ranked_values(ranks: Vec<u16>) -> Dictionary {
        let index = ranks
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u16))
            .collect();
        Dictionary { ranks, index }
    }

    /// The codeword rank of `value`, if present.
    #[inline]
    pub fn rank_of(&self, value: u16) -> Option<u16> {
        self.index.get(&value).copied()
    }

    /// The value stored at `rank`, if any.
    #[inline]
    pub fn value(&self, rank: u16) -> Option<u16> {
        self.ranks.get(rank as usize).copied()
    }

    /// Number of entries.
    pub fn len(&self) -> u16 {
        self.ranks.len() as u16
    }

    /// Is the dictionary empty?
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// Bytes this dictionary occupies in the compressed image (16 bits per
    /// entry — the paper's Table 4 *Dictionary* column).
    pub fn size_bytes(&self) -> u32 {
        u32::from(self.len()) * 2
    }

    /// Iterates over `(rank, value)` pairs in rank order.
    pub fn iter(&self) -> impl Iterator<Item = (u16, u16)> + '_ {
        self.ranks.iter().enumerate().map(|(i, &v)| (i as u16, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_is_by_count_then_value() {
        let stream = [5u16, 5, 5, 3, 3, 9, 9, 1];
        let d = Dictionary::build(stream.into_iter(), 16, 1, false);
        assert_eq!(d.value(0), Some(5));
        // 3 and 9 tie at two occurrences: lower value first.
        assert_eq!(d.value(1), Some(3));
        assert_eq!(d.value(2), Some(9));
        assert_eq!(d.value(3), Some(1));
    }

    #[test]
    fn min_count_excludes_singletons() {
        let stream = [5u16, 5, 7];
        let d = Dictionary::build(stream.into_iter(), 16, 2, false);
        assert_eq!(d.len(), 1);
        assert_eq!(d.rank_of(7), None);
    }

    #[test]
    fn pin_zero_reserves_rank_zero() {
        // Zero appears once; 8 appears many times. Zero still gets rank 0.
        let stream = [8u16, 8, 8, 8, 0];
        let d = Dictionary::build(stream.into_iter(), 16, 2, true);
        assert_eq!(d.rank_of(0), Some(0));
        assert_eq!(d.rank_of(8), Some(1));
    }

    #[test]
    fn pin_zero_even_when_absent_from_stream() {
        let d = Dictionary::build([1u16, 1].into_iter(), 16, 2, true);
        assert_eq!(d.value(0), Some(0));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn capacity_truncates_tail() {
        let stream = (0..100u16).flat_map(|v| [v, v]); // all count 2
        let d = Dictionary::build(stream, 10, 2, false);
        assert_eq!(d.len(), 10);
        assert_eq!(d.rank_of(9), Some(9));
        assert_eq!(d.rank_of(10), None);
    }

    #[test]
    fn size_counts_two_bytes_per_entry() {
        let d = Dictionary::build([1u16, 1, 2, 2].into_iter(), 16, 2, false);
        assert_eq!(d.size_bytes(), 4);
    }

    #[test]
    fn deterministic_across_rebuilds() {
        let stream: Vec<u16> = (0..1000).map(|i| (i * 37 % 256) as u16).collect();
        let a = Dictionary::build(stream.iter().copied(), 457, 2, true);
        let b = Dictionary::build(stream.iter().copied(), 457, 2, true);
        assert_eq!(a, b);
    }
}
