//! MSB-first bit-granular I/O over byte buffers.
//!
//! CodePack codewords are 2–19 bits long and packed back-to-back; blocks are
//! byte-aligned by padding with zero bits (the paper's Table 4 *Pad* column).

use crate::DecompressError;

/// Writes an MSB-first bit stream into a growable byte buffer.
///
/// ```
/// use codepack_core::BitWriter;
/// let mut w = BitWriter::new();
/// w.write(0b101, 3);
/// w.write(0b1, 1);
/// let pad = w.align_to_byte();
/// assert_eq!(pad, 4);
/// assert_eq!(w.into_bytes(), vec![0b1011_0000]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the final partial byte (0–7).
    partial_bits: u32,
    bits_written: u64,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Total bits written so far (including any partial byte).
    pub fn bit_len(&self) -> u64 {
        self.bits_written
    }

    /// Appends the low `count` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn write(&mut self, value: u32, count: u32) {
        assert!(count <= 32, "cannot write more than 32 bits at once");
        for i in (0..count).rev() {
            let bit = (value >> i) & 1;
            if self.partial_bits == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= (bit as u8) << (7 - self.partial_bits);
            self.partial_bits = (self.partial_bits + 1) % 8;
        }
        self.bits_written += u64::from(count);
    }

    /// Pads with zero bits to the next byte boundary; returns the number of
    /// pad bits added (0–7).
    pub fn align_to_byte(&mut self) -> u32 {
        let pad = (8 - self.partial_bits) % 8;
        if pad > 0 {
            self.bits_written += u64::from(pad);
            self.partial_bits = 0;
        }
        pad
    }

    /// Finishes the stream (padding to a byte) and returns the bytes.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.align_to_byte();
        self.bytes
    }
}

/// Reads an MSB-first bit stream from a byte slice.
///
/// ```
/// use codepack_core::BitReader;
/// let mut r = BitReader::new(&[0b1011_0000]);
/// assert_eq!(r.read(3).unwrap(), 0b101);
/// assert_eq!(r.read(1).unwrap(), 1);
/// assert!(r.read(8).is_err(), "only 4 bits remain");
/// ```
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    bit_pos: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, bit_pos: 0 }
    }

    /// Bits consumed so far.
    pub fn bit_pos(&self) -> u64 {
        self.bit_pos
    }

    /// Bits remaining.
    pub fn remaining(&self) -> u64 {
        (self.bytes.len() as u64 * 8).saturating_sub(self.bit_pos)
    }

    /// Reads `count` bits MSB-first.
    ///
    /// # Errors
    ///
    /// Returns [`DecompressError::Truncated`] if fewer than `count` bits
    /// remain.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn read(&mut self, count: u32) -> Result<u32, DecompressError> {
        assert!(count <= 32, "cannot read more than 32 bits at once");
        if self.remaining() < u64::from(count) {
            return Err(DecompressError::Truncated {
                at_bit: self.bit_pos,
            });
        }
        let mut value = 0u32;
        for _ in 0..count {
            let byte = self.bytes[(self.bit_pos / 8) as usize];
            let bit = (byte >> (7 - (self.bit_pos % 8))) & 1;
            value = (value << 1) | u32::from(bit);
            self.bit_pos += 1;
        }
        Ok(value)
    }

    /// Skips to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        self.bit_pos = self.bit_pos.div_ceil(8) * 8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_packs_msb_first() {
        let mut w = BitWriter::new();
        w.write(1, 1);
        w.write(0, 1);
        w.write(0b111111, 6);
        assert_eq!(w.into_bytes(), vec![0b1011_1111]);
    }

    #[test]
    fn write_then_read_round_trip() {
        let fields = [(0b11u32, 2), (0x1234, 16), (0, 3), (0x7f, 7), (1, 1)];
        let mut w = BitWriter::new();
        for (v, n) in fields {
            w.write(v, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for (v, n) in fields {
            assert_eq!(r.read(n).unwrap(), v);
        }
    }

    #[test]
    fn bit_len_counts_pad() {
        let mut w = BitWriter::new();
        w.write(0b101, 3);
        assert_eq!(w.bit_len(), 3);
        assert_eq!(w.align_to_byte(), 5);
        assert_eq!(w.bit_len(), 8);
        assert_eq!(w.align_to_byte(), 0, "already aligned");
    }

    #[test]
    fn truncated_read_reports_position() {
        let mut r = BitReader::new(&[0xff]);
        r.read(6).unwrap();
        match r.read(4) {
            Err(DecompressError::Truncated { at_bit }) => assert_eq!(at_bit, 6),
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn reader_align_skips_partial_byte() {
        let mut r = BitReader::new(&[0xab, 0xcd]);
        r.read(3).unwrap();
        r.align_to_byte();
        assert_eq!(r.read(8).unwrap(), 0xcd);
    }

    #[test]
    fn thirty_two_bit_fields() {
        let mut w = BitWriter::new();
        w.write(0xdead_beef, 32);
        let bytes = w.into_bytes();
        assert_eq!(BitReader::new(&bytes).read(32).unwrap(), 0xdead_beef);
    }
}
