//! MSB-first bit-granular I/O over byte buffers.
//!
//! CodePack codewords are 2–19 bits long and packed back-to-back; blocks are
//! byte-aligned by padding with zero bits (the paper's Table 4 *Pad* column).

use crate::DecompressError;

/// Writes an MSB-first bit stream into a growable byte buffer.
///
/// ```
/// use codepack_core::BitWriter;
/// let mut w = BitWriter::new();
/// w.write(0b101, 3);
/// w.write(0b1, 1);
/// let pad = w.align_to_byte();
/// assert_eq!(pad, 4);
/// assert_eq!(w.into_bytes(), vec![0b1011_0000]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the final partial byte (0–7).
    partial_bits: u32,
    bits_written: u64,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Total bits written so far (including any partial byte).
    pub fn bit_len(&self) -> u64 {
        self.bits_written
    }

    /// Appends the low `count` bits of `value`, most significant first.
    ///
    /// `count == 0` writes nothing; `count == 32` writes the whole word.
    /// Both boundaries avoid shift-overflow by masking in `u64`: the naive
    /// `value & ((1u32 << count) - 1)` wraps (UB-adjacent overflow in
    /// release builds) at `count == 32`, and the byte-chunk loop never
    /// shifts by more than 7.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn write(&mut self, value: u32, count: u32) {
        assert!(count <= 32, "cannot write more than 32 bits at once");
        // Mask wide (count ≤ 32 < 64), so count == 32 keeps every bit and
        // count == 0 clears them all without an out-of-range shift.
        let value = u64::from(value) & ((1u64 << count) - 1);
        let mut left = count;
        while left > 0 {
            if self.partial_bits == 0 {
                self.bytes.push(0);
            }
            let free = 8 - self.partial_bits; // 1..=8
            let take = free.min(left);
            let chunk = ((value >> (left - take)) & ((1u64 << take) - 1)) as u8;
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= chunk << (free - take);
            self.partial_bits = (self.partial_bits + take) % 8;
            left -= take;
        }
        self.bits_written += u64::from(count);
    }

    /// Pads with zero bits to the next byte boundary; returns the number of
    /// pad bits added (0–7).
    pub fn align_to_byte(&mut self) -> u32 {
        let pad = (8 - self.partial_bits) % 8;
        if pad > 0 {
            self.bits_written += u64::from(pad);
            self.partial_bits = 0;
        }
        pad
    }

    /// Finishes the stream (padding to a byte) and returns the bytes.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.align_to_byte();
        self.bytes
    }
}

/// Reads an MSB-first bit stream from a byte slice.
///
/// ```
/// use codepack_core::BitReader;
/// let mut r = BitReader::new(&[0b1011_0000]);
/// assert_eq!(r.read(3).unwrap(), 0b101);
/// assert_eq!(r.read(1).unwrap(), 1);
/// assert!(r.read(8).is_err(), "only 4 bits remain");
/// ```
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    bit_pos: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, bit_pos: 0 }
    }

    /// Bits consumed so far.
    pub fn bit_pos(&self) -> u64 {
        self.bit_pos
    }

    /// Bits remaining.
    pub fn remaining(&self) -> u64 {
        (self.bytes.len() as u64 * 8).saturating_sub(self.bit_pos)
    }

    /// Reads `count` bits MSB-first.
    ///
    /// `count == 0` always succeeds with `0`, even positioned exactly at
    /// the end of the stream; `count == 32` assembles a full word from up
    /// to five straddled bytes. Every shift in the chunk loop is by at most
    /// 8 — the accumulator's total shift distance is `count`, applied in
    /// byte-sized steps, so no single shift can overflow.
    ///
    /// # Errors
    ///
    /// Returns [`DecompressError::Truncated`] if fewer than `count` bits
    /// remain.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn read(&mut self, count: u32) -> Result<u32, DecompressError> {
        assert!(count <= 32, "cannot read more than 32 bits at once");
        if self.remaining() < u64::from(count) {
            return Err(DecompressError::Truncated {
                at_bit: self.bit_pos,
            });
        }
        let mut value = 0u32;
        let mut left = count;
        while left > 0 {
            let byte = self.bytes[(self.bit_pos / 8) as usize];
            let used = (self.bit_pos % 8) as u32;
            let avail = 8 - used; // 1..=8
            let take = avail.min(left);
            let chunk = (u32::from(byte) >> (avail - take)) & ((1u32 << take) - 1);
            value = (value << take) | chunk;
            self.bit_pos += u64::from(take);
            left -= take;
        }
        Ok(value)
    }

    /// Skips to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        self.bit_pos = self.bit_pos.div_ceil(8) * 8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_packs_msb_first() {
        let mut w = BitWriter::new();
        w.write(1, 1);
        w.write(0, 1);
        w.write(0b111111, 6);
        assert_eq!(w.into_bytes(), vec![0b1011_1111]);
    }

    #[test]
    fn write_then_read_round_trip() {
        let fields = [(0b11u32, 2), (0x1234, 16), (0, 3), (0x7f, 7), (1, 1)];
        let mut w = BitWriter::new();
        for (v, n) in fields {
            w.write(v, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for (v, n) in fields {
            assert_eq!(r.read(n).unwrap(), v);
        }
    }

    #[test]
    fn bit_len_counts_pad() {
        let mut w = BitWriter::new();
        w.write(0b101, 3);
        assert_eq!(w.bit_len(), 3);
        assert_eq!(w.align_to_byte(), 5);
        assert_eq!(w.bit_len(), 8);
        assert_eq!(w.align_to_byte(), 0, "already aligned");
    }

    #[test]
    fn truncated_read_reports_position() {
        let mut r = BitReader::new(&[0xff]);
        r.read(6).unwrap();
        match r.read(4) {
            Err(DecompressError::Truncated { at_bit }) => assert_eq!(at_bit, 6),
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn reader_align_skips_partial_byte() {
        let mut r = BitReader::new(&[0xab, 0xcd]);
        r.read(3).unwrap();
        r.align_to_byte();
        assert_eq!(r.read(8).unwrap(), 0xcd);
    }

    #[test]
    fn thirty_two_bit_fields() {
        let mut w = BitWriter::new();
        w.write(0xdead_beef, 32);
        let bytes = w.into_bytes();
        assert_eq!(BitReader::new(&bytes).read(32).unwrap(), 0xdead_beef);
    }

    /// Bit-at-a-time reference writer: the pre-optimization semantics the
    /// chunked implementation must match exactly.
    fn reference_write(bytes: &mut Vec<u8>, partial: &mut u32, value: u32, count: u32) {
        for i in (0..count).rev() {
            let bit = (value >> i) & 1;
            if *partial == 0 {
                bytes.push(0);
            }
            let last = bytes.last_mut().unwrap();
            *last |= (bit as u8) << (7 - *partial);
            *partial = (*partial + 1) % 8;
        }
    }

    /// Every `count` in 0..=32 at every starting alignment 0..8, against
    /// the bit-at-a-time reference — bytes and bit accounting identical.
    #[test]
    fn write_boundary_exhaustive_vs_reference() {
        for count in 0..=32u32 {
            for align in 0..8u32 {
                for value in [0u32, 1, 0xffff_ffff, 0xdead_beef, 0x8000_0001] {
                    let mut w = BitWriter::new();
                    w.write(0x15, align); // set the starting alignment
                    w.write(value, count);
                    assert_eq!(w.bit_len(), u64::from(align + count));

                    let mut ref_bytes = Vec::new();
                    let mut partial = 0u32;
                    reference_write(&mut ref_bytes, &mut partial, 0x15, align);
                    reference_write(&mut ref_bytes, &mut partial, value, count);
                    assert_eq!(
                        w.into_bytes(),
                        ref_bytes,
                        "count={count} align={align} value={value:#x}"
                    );
                }
            }
        }
    }

    /// Every `count` in 0..=32 at every bit offset, reading back exactly
    /// what a reference bit-at-a-time read sees — including reads whose
    /// last bits land in the final byte of the stream.
    #[test]
    fn read_boundary_exhaustive() {
        let bytes: Vec<u8> = (0..9u8).map(|i| i.wrapping_mul(0x5b) ^ 0xa7).collect();
        let total_bits = bytes.len() as u64 * 8;
        for count in 0..=32u32 {
            for start in 0..total_bits {
                let mut r = BitReader::new(&bytes);
                if start > 0 {
                    // Position via chunked reads of mixed sizes.
                    let mut left = start;
                    while left > 0 {
                        let step = left.min(13) as u32;
                        r.read(step).unwrap();
                        left -= u64::from(step);
                    }
                }
                let got = r.read(count);
                if start + u64::from(count) > total_bits {
                    assert_eq!(
                        got,
                        Err(DecompressError::Truncated { at_bit: start }),
                        "count={count} start={start}"
                    );
                    // A failed read must not move the cursor.
                    assert_eq!(r.bit_pos(), start);
                } else {
                    let mut expected = 0u32;
                    for b in start..start + u64::from(count) {
                        let bit = (bytes[(b / 8) as usize] >> (7 - (b % 8))) & 1;
                        expected = (expected << 1) | u32::from(bit);
                    }
                    assert_eq!(got, Ok(expected), "count={count} start={start}");
                    assert_eq!(r.bit_pos(), start + u64::from(count));
                }
            }
        }
    }

    #[test]
    fn zero_width_fields_are_free() {
        let mut w = BitWriter::new();
        w.write(0xffff_ffff, 0); // value bits must all be masked away
        assert_eq!(w.bit_len(), 0);
        w.write(0b1, 1);
        w.write(0xffff_ffff, 0);
        assert_eq!(w.bit_len(), 1);
        assert_eq!(w.into_bytes(), vec![0b1000_0000]);

        // Reading 0 bits succeeds even exactly at the end of the stream.
        let mut r = BitReader::new(&[0xff]);
        r.read(8).unwrap();
        assert_eq!(r.read(0), Ok(0));
        assert_eq!(r.remaining(), 0);
        // And on a completely empty stream.
        assert_eq!(BitReader::new(&[]).read(0), Ok(0));
        assert_eq!(
            BitReader::new(&[]).read(1),
            Err(DecompressError::Truncated { at_bit: 0 })
        );
    }

    #[test]
    fn full_width_fields_at_every_alignment() {
        // A 32-bit field straddles 4 or 5 bytes depending on alignment.
        for align in 0..8u32 {
            let mut w = BitWriter::new();
            w.write(0, align);
            w.write(0xdead_beef, 32);
            w.write(0xffff_ffff, 32);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            r.read(align).unwrap();
            assert_eq!(r.read(32).unwrap(), 0xdead_beef, "align={align}");
            assert_eq!(r.read(32).unwrap(), 0xffff_ffff, "align={align}");
        }
    }

    #[test]
    fn straddling_the_final_byte_truncates_exactly() {
        // 12 bits of data: a 9-bit read from bit 4 needs bit 12 — gone.
        let mut w = BitWriter::new();
        w.write(0xabc >> 4, 8);
        let bytes = w.into_bytes(); // 8 bits after padding
        let mut r = BitReader::new(&bytes);
        r.read(4).unwrap();
        assert_eq!(r.read(4), Ok(0xb));
        assert_eq!(r.read(1), Err(DecompressError::Truncated { at_bit: 8 }));
    }
}
