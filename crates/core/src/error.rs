//! Error types for the CodePack codec.

use std::error::Error;
use std::fmt;

/// Error produced while decompressing a CodePack stream.
///
/// Corrupt input must surface as one of these variants — never a panic — so
/// the failure-injection tests in `tests/` exercise each case.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecompressError {
    /// The bit stream ended in the middle of a codeword.
    Truncated {
        /// Bit position at which more input was needed.
        at_bit: u64,
    },
    /// A codeword indexed past the end of a dictionary.
    BadDictIndex {
        /// Was it the high-half-word dictionary?
        high: bool,
        /// The out-of-range rank.
        rank: u16,
        /// Number of entries actually present.
        dict_len: u16,
    },
    /// A block number outside the compressed image was requested.
    BadBlock {
        /// The requested block number.
        block: u32,
        /// Number of blocks in the image.
        blocks: u32,
    },
}

impl fmt::Display for DecompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DecompressError::Truncated { at_bit } => {
                write!(f, "compressed stream truncated at bit {at_bit}")
            }
            DecompressError::BadDictIndex {
                high,
                rank,
                dict_len,
            } => write!(
                f,
                "codeword indexes entry {rank} of the {} dictionary, which has {dict_len} entries",
                if high { "high" } else { "low" }
            ),
            DecompressError::BadBlock { block, blocks } => {
                write!(
                    f,
                    "block {block} requested from an image of {blocks} blocks"
                )
            }
        }
    }
}

impl Error for DecompressError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_specific() {
        let e = DecompressError::BadDictIndex {
            high: true,
            rank: 500,
            dict_len: 12,
        };
        let s = e.to_string();
        assert!(s.contains("high dictionary") && s.contains("500"));
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_trait_object_compatible() {
        fn takes_err(_: &(dyn Error + Send + Sync)) {}
        takes_err(&DecompressError::Truncated { at_bit: 0 });
    }

    #[test]
    fn display_covers_every_variant() {
        let truncated = DecompressError::Truncated { at_bit: 1234 };
        assert_eq!(
            truncated.to_string(),
            "compressed stream truncated at bit 1234"
        );

        let low = DecompressError::BadDictIndex {
            high: false,
            rank: 7,
            dict_len: 3,
        };
        assert_eq!(
            low.to_string(),
            "codeword indexes entry 7 of the low dictionary, which has 3 entries"
        );

        let block = DecompressError::BadBlock {
            block: 99,
            blocks: 16,
        };
        assert_eq!(
            block.to_string(),
            "block 99 requested from an image of 16 blocks"
        );
    }

    #[test]
    fn errors_have_no_source() {
        // Leaf errors: `source()` must be `None` for every variant so
        // callers never chase a chain that isn't there.
        let variants = [
            DecompressError::Truncated { at_bit: 8 },
            DecompressError::BadDictIndex {
                high: true,
                rank: 1,
                dict_len: 0,
            },
            DecompressError::BadBlock {
                block: 0,
                blocks: 0,
            },
        ];
        for e in variants {
            assert!(e.source().is_none(), "{e} should be a leaf error");
        }
    }

    #[test]
    fn equality_and_clone_distinguish_payloads() {
        let a = DecompressError::Truncated { at_bit: 10 };
        let b = DecompressError::Truncated { at_bit: 11 };
        assert_ne!(a, b);
        assert_eq!(a, a.clone());

        let high = DecompressError::BadDictIndex {
            high: true,
            rank: 4,
            dict_len: 4,
        };
        let low = DecompressError::BadDictIndex {
            high: false,
            rank: 4,
            dict_len: 4,
        };
        assert_ne!(high, low);

        // Copy semantics: using `moved` after a by-value copy still compiles.
        let moved = a;
        let copied = moved;
        assert_eq!(moved, copied);

        // Debug output names the variant (useful in test assertions).
        assert!(format!("{high:?}").starts_with("BadDictIndex"));
    }
}
