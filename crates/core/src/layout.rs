//! The CodePack codeword layout: tag classes and their dictionary ranges.
//!
//! From the paper (§3.1): each 32-bit instruction splits into 16-bit high and
//! low half-words, each translated to a variable-length codeword of 2–11 bits
//! (or a 3-bit raw tag followed by the 16 literal bits). The first section of
//! each codeword is a 2- or 3-bit tag giving the size class; the second
//! indexes one of two dictionaries of fewer than 512 entries. The value 0 in
//! the **low** half-word is encoded with only the 2-bit tag `00` because it
//! is the most frequent value; the high dictionary gives tag `00` a 2-bit
//! index instead.

/// One size class of codewords: a tag and a run of dictionary ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodewordClass {
    /// Tag bit pattern (right-aligned).
    pub tag: u8,
    /// Number of tag bits (2 or 3).
    pub tag_bits: u8,
    /// Number of index bits following the tag.
    pub index_bits: u8,
    /// First dictionary rank covered by this class.
    pub base: u16,
}

impl CodewordClass {
    /// Number of dictionary entries addressable by this class.
    pub const fn capacity(&self) -> u16 {
        1 << self.index_bits
    }

    /// Total encoded length (tag + index) in bits.
    pub const fn len_bits(&self) -> u8 {
        self.tag_bits + self.index_bits
    }

    /// Does this class cover dictionary rank `rank`?
    pub const fn covers(&self, rank: u16) -> bool {
        rank >= self.base && rank < self.base + self.capacity()
    }
}

/// The raw-escape tag (`111`): 3 tag bits followed by the 16-bit literal.
pub const RAW_TAG: u8 = 0b111;
/// Number of bits in the raw tag.
pub const RAW_TAG_BITS: u8 = 3;
/// Total bits of a raw-escaped half-word (tag + literal).
pub const RAW_LEN_BITS: u8 = RAW_TAG_BITS + 16;

/// Classes for **low** half-words. Class 0 (`00`, zero index bits) encodes
/// only dictionary rank 0, which the dictionary builder pins to the value
/// `0x0000` — the paper's "value 0 … encoded using only a 2 bit tag".
pub const LOW_CLASSES: [CodewordClass; 5] = [
    CodewordClass {
        tag: 0b00,
        tag_bits: 2,
        index_bits: 0,
        base: 0,
    },
    CodewordClass {
        tag: 0b01,
        tag_bits: 2,
        index_bits: 3,
        base: 1,
    },
    CodewordClass {
        tag: 0b100,
        tag_bits: 3,
        index_bits: 6,
        base: 9,
    },
    CodewordClass {
        tag: 0b101,
        tag_bits: 3,
        index_bits: 7,
        base: 73,
    },
    CodewordClass {
        tag: 0b110,
        tag_bits: 3,
        index_bits: 8,
        base: 201,
    },
];

/// Classes for **high** half-words. No single value dominates, so tag `00`
/// carries a 2-bit index (the four most frequent high half-words get 4-bit
/// codewords).
pub const HIGH_CLASSES: [CodewordClass; 5] = [
    CodewordClass {
        tag: 0b00,
        tag_bits: 2,
        index_bits: 2,
        base: 0,
    },
    CodewordClass {
        tag: 0b01,
        tag_bits: 2,
        index_bits: 3,
        base: 4,
    },
    CodewordClass {
        tag: 0b100,
        tag_bits: 3,
        index_bits: 6,
        base: 12,
    },
    CodewordClass {
        tag: 0b101,
        tag_bits: 3,
        index_bits: 7,
        base: 76,
    },
    CodewordClass {
        tag: 0b110,
        tag_bits: 3,
        index_bits: 8,
        base: 204,
    },
];

/// Total dictionary capacity implied by a class list.
pub const fn dict_capacity(classes: &[CodewordClass; 5]) -> u16 {
    let last = classes[4];
    last.base + last.capacity()
}

/// Capacity of the low dictionary (457 entries — fewer than 512, as the
/// paper requires).
pub const LOW_DICT_CAPACITY: u16 = dict_capacity(&LOW_CLASSES);
/// Capacity of the high dictionary (460 entries).
pub const HIGH_DICT_CAPACITY: u16 = dict_capacity(&HIGH_CLASSES);

/// Finds the class covering `rank`, if any.
pub fn class_for_rank(classes: &[CodewordClass; 5], rank: u16) -> Option<&CodewordClass> {
    classes.iter().find(|c| c.covers(rank))
}

/// Number of instructions per compression block (paper: "Each group of 16
/// instructions is combined into a compression block").
pub const BLOCK_INSNS: u32 = 16;
/// Blocks per compression group ("each entry in the table maps one
/// compression group consisting of 2 compressed blocks — 32 instructions").
pub const BLOCKS_PER_GROUP: u32 = 2;
/// Instructions per compression group.
pub const GROUP_INSNS: u32 = BLOCK_INSNS * BLOCKS_PER_GROUP;
/// Bytes of one index-table entry (32-bit entries, paper §3.1).
pub const INDEX_ENTRY_BYTES: u32 = 4;
/// Bits of an index entry holding the second block's offset relative to the
/// first ("a few low-order bits represent the offset of the second block").
pub const INDEX_SECOND_OFFSET_BITS: u32 = 7;

/// Splits a 32-bit index-table entry into the first block's absolute byte
/// offset into the compressed stream and the second block's byte offset
/// relative to the first.
///
/// ```
/// use codepack_core::layout::index_entry_parts;
/// assert_eq!(index_entry_parts((100 << 7) | 23), (100, 23));
/// ```
pub const fn index_entry_parts(entry: u32) -> (u32, u32) {
    (
        entry >> INDEX_SECOND_OFFSET_BITS,
        entry & ((1 << INDEX_SECOND_OFFSET_BITS) - 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_tile_ranks_contiguously() {
        for classes in [&LOW_CLASSES, &HIGH_CLASSES] {
            let mut next = 0u16;
            for c in classes {
                assert_eq!(c.base, next, "classes must tile without gaps");
                next += c.capacity();
            }
        }
    }

    #[test]
    fn capacities_stay_under_512() {
        // "paper: dictionaries < 512 entries" — compile-time facts.
        const _: () = assert!(LOW_DICT_CAPACITY < 512 && HIGH_DICT_CAPACITY < 512);
        assert_eq!(LOW_DICT_CAPACITY, 457);
        assert_eq!(HIGH_DICT_CAPACITY, 460);
    }

    #[test]
    fn codeword_lengths_span_2_to_11_bits() {
        let all = LOW_CLASSES.iter().chain(HIGH_CLASSES.iter());
        let lens: Vec<u8> = all.map(CodewordClass::len_bits).collect();
        assert_eq!(
            *lens.iter().min().unwrap(),
            2,
            "low zero codeword is 2 bits"
        );
        assert_eq!(
            *lens.iter().max().unwrap(),
            11,
            "longest dictionary codeword is 11 bits"
        );
        assert_eq!(RAW_LEN_BITS, 19);
    }

    #[test]
    fn tags_form_a_prefix_code() {
        // 2-bit tags 00,01 and 3-bit tags 100,101,110,111: no 2-bit tag is a
        // prefix of a 3-bit tag.
        for classes in [&LOW_CLASSES, &HIGH_CLASSES] {
            for c in classes {
                if c.tag_bits == 3 {
                    assert!(c.tag >> 1 >= 0b10, "3-bit tags must start with 1x");
                } else {
                    assert!(c.tag <= 0b01, "2-bit tags must start with 0");
                }
            }
        }
        assert_eq!(RAW_TAG, 0b111);
    }

    #[test]
    fn rank_lookup_finds_correct_class() {
        assert_eq!(class_for_rank(&LOW_CLASSES, 0).unwrap().tag, 0b00);
        assert_eq!(class_for_rank(&LOW_CLASSES, 8).unwrap().tag, 0b01);
        assert_eq!(class_for_rank(&LOW_CLASSES, 9).unwrap().tag, 0b100);
        assert_eq!(class_for_rank(&LOW_CLASSES, 456).unwrap().tag, 0b110);
        assert!(class_for_rank(&LOW_CLASSES, 457).is_none());
        assert_eq!(class_for_rank(&HIGH_CLASSES, 3).unwrap().len_bits(), 4);
    }
}
