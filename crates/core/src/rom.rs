//! ROM image serialization — the artifact the real CodePack toolchain
//! produces: a self-contained binary blob (dictionaries + index table +
//! compressed stream) that gets burned into an embedded system's ROM and
//! handed to the decompressor at boot.
//!
//! Format (`CPK1`, all little-endian):
//!
//! ```text
//! magic "CPK1" | n_insns u32 | high_len u16 | low_len u16
//! high dict entries (u16 each) | low dict entries (u16 each)
//! n_groups u32 | index entries (u32 each)
//! stream_len u32 | stream bytes
//! stats (11 × u64)
//! ```
//!
//! Loading fully re-validates the image: every block is decoded once to
//! reconstruct the per-block decode-timing metadata, so a corrupt ROM is
//! rejected rather than mis-simulated.

use std::error::Error;
use std::fmt;

use crate::bits::BitReader;
use crate::dict::Dictionary;
use crate::image::{decode_block_tracking, BlockInfo};
use crate::layout::{BLOCKS_PER_GROUP, BLOCK_INSNS};
use crate::stats::CompositionStats;
use crate::{CodePackImage, DecompressError};

/// Magic bytes identifying a CodePack ROM image.
pub const ROM_MAGIC: [u8; 4] = *b"CPK1";

/// Error loading a ROM image.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RomError {
    /// The blob does not start with [`ROM_MAGIC`].
    BadMagic,
    /// The blob ended before the structure it declares.
    Truncated {
        /// Byte offset where more data was needed.
        at: usize,
    },
    /// A declared size is internally inconsistent.
    Inconsistent(&'static str),
    /// The compressed stream failed to decode during validation.
    Corrupt(DecompressError),
}

impl fmt::Display for RomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RomError::BadMagic => write!(f, "not a CodePack ROM image (bad magic)"),
            RomError::Truncated { at } => write!(f, "rom image truncated at byte {at}"),
            RomError::Inconsistent(what) => write!(f, "rom image inconsistent: {what}"),
            RomError::Corrupt(e) => write!(f, "rom stream corrupt: {e}"),
        }
    }
}

impl Error for RomError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RomError::Corrupt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecompressError> for RomError {
    fn from(e: DecompressError) -> RomError {
        RomError::Corrupt(e)
    }
}

/// The structurally-parsed fields of a ROM blob, before any semantic
/// validation of the compressed stream.
///
/// [`parse_rom_parts`] produces this without decoding a single block, so a
/// linter can inspect a *corrupt* image — bad index entries, out-of-range
/// dictionary references, a stream that does not decode — and report on it,
/// where [`CodePackImage::from_rom_bytes`] would reject the blob outright.
#[derive(Clone, Debug)]
pub struct RomParts {
    /// Number of instructions in the original (unpadded) text.
    pub n_insns: u32,
    /// High-dictionary values in rank order.
    pub high_values: Vec<u16>,
    /// Low-dictionary values in rank order.
    pub low_values: Vec<u16>,
    /// Index-table entries as stored, one per compression group.
    pub index: Vec<u32>,
    /// The compressed stream bytes.
    pub stream: Vec<u8>,
    /// The composition statistics as stored (unverified).
    pub stats: CompositionStats,
}

/// Parses the structure of a ROM blob without validating its content.
///
/// Only framing is checked: the magic, that every declared length is
/// actually present, and that the instruction count is nonzero. The index
/// table, dictionaries, stream, and stats are returned exactly as stored —
/// including any corruption — for static analysis to diagnose.
///
/// # Errors
///
/// Returns [`RomError::BadMagic`], [`RomError::Truncated`], or
/// [`RomError::Inconsistent`] (zero instruction count) for blobs whose
/// framing cannot be read at all.
pub fn parse_rom_parts(bytes: &[u8]) -> Result<RomParts, RomError> {
    let mut c = Cursor { bytes, pos: 0 };
    if c.take(4)? != ROM_MAGIC {
        return Err(RomError::BadMagic);
    }
    let n_insns = c.u32()?;
    if n_insns == 0 {
        return Err(RomError::Inconsistent("image with zero instructions"));
    }
    let high_len = c.u16()?;
    let low_len = c.u16()?;
    let high_values: Vec<u16> = (0..high_len).map(|_| c.u16()).collect::<Result<_, _>>()?;
    let low_values: Vec<u16> = (0..low_len).map(|_| c.u16()).collect::<Result<_, _>>()?;

    let n_groups = c.u32()?;
    let index: Vec<u32> = (0..n_groups).map(|_| c.u32()).collect::<Result<_, _>>()?;

    let stream_len = c.u32()? as usize;
    let stream = c.take(stream_len)?.to_vec();

    let mut stats_fields = [0u64; 11];
    for f in &mut stats_fields {
        *f = c.u64()?;
    }
    let stats = CompositionStats {
        original_bytes: stats_fields[0],
        index_table_bytes: stats_fields[1],
        dictionary_bytes: stats_fields[2],
        compressed_tag_bits: stats_fields[3],
        dict_index_bits: stats_fields[4],
        raw_tag_bits: stats_fields[5],
        raw_literal_bits: stats_fields[6],
        pad_bits: stats_fields[7],
        raw_halfwords: stats_fields[8],
        raw_blocks: stats_fields[9],
        blocks: stats_fields[10],
    };

    Ok(RomParts {
        n_insns,
        high_values,
        low_values,
        index,
        stream,
        stats,
    })
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RomError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(RomError::Truncated { at: self.pos })?;
        if end > self.bytes.len() {
            return Err(RomError::Truncated { at: self.pos });
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, RomError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, RomError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, RomError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

impl CodePackImage {
    /// Serializes the image to a self-contained ROM blob.
    ///
    /// ```
    /// use codepack_core::{CodePackImage, CompressionConfig};
    /// let text: Vec<u32> = (0..64).map(|i| 0x8c43_0000 | (i % 6)).collect();
    /// let image = CodePackImage::compress(&text, &CompressionConfig::default());
    /// let rom = image.to_rom_bytes();
    /// let loaded = CodePackImage::from_rom_bytes(&rom).unwrap();
    /// assert_eq!(loaded.decompress_all().unwrap(), text);
    /// ```
    pub fn to_rom_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&ROM_MAGIC);
        out.extend_from_slice(&self.len_insns().to_le_bytes());
        out.extend_from_slice(&self.high_dict().len().to_le_bytes());
        out.extend_from_slice(&self.low_dict().len().to_le_bytes());
        for (_, v) in self.high_dict().iter() {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for (_, v) in self.low_dict().iter() {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.num_groups().to_le_bytes());
        for &e in self.index_table() {
            out.extend_from_slice(&e.to_le_bytes());
        }
        out.extend_from_slice(&(self.compressed_bytes().len() as u32).to_le_bytes());
        out.extend_from_slice(self.compressed_bytes());
        let s = self.stats();
        for v in [
            s.original_bytes,
            s.index_table_bytes,
            s.dictionary_bytes,
            s.compressed_tag_bits,
            s.dict_index_bits,
            s.raw_tag_bits,
            s.raw_literal_bits,
            s.pad_bits,
            s.raw_halfwords,
            s.raw_blocks,
            s.blocks,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Parses and validates a ROM blob produced by [`Self::to_rom_bytes`].
    ///
    /// Every compression block is decoded once during loading, so the
    /// returned image is known-good: the decode-timing metadata used by the
    /// simulator is reconstructed from the stream itself.
    ///
    /// # Errors
    ///
    /// Returns a [`RomError`] for short, inconsistent, or corrupt blobs.
    pub fn from_rom_bytes(bytes: &[u8]) -> Result<CodePackImage, RomError> {
        let RomParts {
            n_insns,
            high_values,
            low_values,
            index,
            stream,
            stats,
        } = parse_rom_parts(bytes)?;
        let high_dict = Dictionary::from_ranked_values(high_values);
        let low_dict = Dictionary::from_ranked_values(low_values);

        let expected_groups = n_insns.div_ceil(BLOCK_INSNS * BLOCKS_PER_GROUP);
        if index.len() as u32 != expected_groups {
            return Err(RomError::Inconsistent(
                "group count does not match instruction count",
            ));
        }

        // Rebuild per-block metadata by decoding every block through the
        // index table — this also validates the whole stream.
        let n_blocks = expected_groups * BLOCKS_PER_GROUP;
        let mut blocks = Vec::with_capacity(n_blocks as usize);
        for b in 0..n_blocks {
            let group = (b / BLOCKS_PER_GROUP) as usize;
            let (first, second_rel) = crate::layout::index_entry_parts(index[group]);
            let offset = if b % BLOCKS_PER_GROUP == 0 {
                first
            } else {
                first + second_rel
            };
            let offset = offset as usize;
            if offset > stream.len() {
                return Err(RomError::Inconsistent("index entry points past the stream"));
            }
            let mut reader = BitReader::new(&stream[offset..]);
            let (_, cum_bits, raw_mask) =
                decode_block_tracking(&mut reader, &high_dict, &low_dict)?;
            let byte_len = u16::try_from(u32::from(cum_bits[BLOCK_INSNS as usize]).div_ceil(8))
                .expect("block length fits u16");
            blocks.push(BlockInfo {
                byte_offset: offset as u32,
                byte_len,
                cum_bits,
                raw_mask,
            });
        }

        Ok(CodePackImage::from_parts(
            high_dict, low_dict, index, stream, blocks, n_insns, stats,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompressionConfig;

    fn image() -> CodePackImage {
        let text: Vec<u32> = (0..300)
            .map(|i| match i % 11 {
                10 => (i as u32).wrapping_mul(0x9e37_79b9),
                k => 0x2442_0000 | k as u32,
            })
            .collect();
        CodePackImage::compress(&text, &CompressionConfig::default())
    }

    #[test]
    fn rom_round_trip_preserves_everything() {
        let original = image();
        let rom = original.to_rom_bytes();
        let loaded = CodePackImage::from_rom_bytes(&rom).unwrap();
        assert_eq!(
            loaded.decompress_all().unwrap(),
            original.decompress_all().unwrap()
        );
        assert_eq!(loaded.stats(), original.stats());
        assert_eq!(loaded.index_table(), original.index_table());
        for b in 0..original.num_blocks() {
            assert_eq!(
                loaded.block_info(b).cum_bits,
                original.block_info(b).cum_bits
            );
            assert_eq!(
                loaded.block_info(b).raw_mask,
                original.block_info(b).raw_mask,
                "ROM loader must rebuild the raw-escape mask for block {b}"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut rom = image().to_rom_bytes();
        rom[0] = b'X';
        assert!(matches!(
            CodePackImage::from_rom_bytes(&rom),
            Err(RomError::BadMagic)
        ));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let rom = image().to_rom_bytes();
        // Chop the blob at many points; load must error, never panic.
        for cut in (0..rom.len()).step_by(53) {
            let r = CodePackImage::from_rom_bytes(&rom[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn corrupted_stream_rejected_or_decodes_differently() {
        let original = image();
        let rom = original.to_rom_bytes();
        // Find the stream region and flip a byte in it.
        let mut corrupted = rom.clone();
        let last = corrupted.len() - 120; // inside the stream, before stats
        corrupted[last] ^= 0xa5;
        match CodePackImage::from_rom_bytes(&corrupted) {
            Err(_) => {}
            Ok(img) => {
                // A flipped byte that still decodes must change the output.
                assert_ne!(
                    img.decompress_all().unwrap(),
                    original.decompress_all().unwrap()
                );
            }
        }
    }
}
