//! Cycle-level models of the L1 I-miss service path.
//!
//! Three models, matching the paper's Figure 2:
//!
//! * [`NativeFetch`] — native code: critical-word-first burst read of the
//!   missed line (Figure 2-a),
//! * [`CodePackFetch`] — the decompressor: index lookup, burst read of the
//!   compressed block, serial decode overlapped with the burst
//!   (Figure 2-b), with the optimizations of Figure 2-c (index cache,
//!   wider decode bandwidth) as configuration.
//!
//! The model reproduces the paper's worked example exactly: with a 10/2-cycle
//! 64-bit memory, an index fetch followed by codes arriving 2–3 instructions
//! per beat and a 1-instruction/cycle decoder makes the critical (5th)
//! instruction available at t=25; caching the index and doubling decode
//! bandwidth pulls it to t=14 (see `tests::figure2_worked_example`).

use std::sync::Arc;

use codepack_mem::{
    FaultDomain, FaultStats, Flips, FullyAssociativeCache, MemoryTiming, SoftErrorConfig,
    StreamIntegrity,
};
use codepack_obs::{EventKind, FaultArea, MissRecord, Obs};

use crate::fastdecode::DecodeBackend;
use crate::image::decode_block_bytes;
use crate::layout::{BLOCK_INSNS, INDEX_ENTRY_BYTES};
use crate::CodePackImage;

/// Bytes of one dictionary SRAM entry (a 16-bit half-word).
const DICT_ENTRY_BYTES: u32 = 2;

fn fault_area(domain: FaultDomain) -> FaultArea {
    match domain {
        FaultDomain::Stream => FaultArea::Stream,
        FaultDomain::Index => FaultArea::Index,
        FaultDomain::Dictionary => FaultArea::Dictionary,
        FaultDomain::IcacheLine => FaultArea::IcacheLine,
    }
}

/// How the decompressor reaches the index table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexCacheModel {
    /// Every miss pays a main-memory index fetch (ablation only — even the
    /// paper's baseline caches the last-used entry).
    None,
    /// A fully-associative cache of index entries, probed in parallel with
    /// the L1 so a hit adds no latency (paper §5.3). The paper's baseline is
    /// `lines: 1, entries_per_line: 1`; the optimized model is
    /// `lines: 64, entries_per_line: 4`.
    Cached {
        /// Number of cache lines.
        lines: usize,
        /// Consecutive index entries per line.
        entries_per_line: u32,
    },
    /// An index cache that always hits (paper Table 7 "Perfect": the whole
    /// table in on-chip ROM).
    Perfect,
}

/// Configuration of the decompressor timing model.
///
/// ```
/// use codepack_core::DecompressorConfig;
/// let base = DecompressorConfig::baseline();
/// assert_eq!(base.decode_rate, 1);
/// let opt = DecompressorConfig::optimized();
/// assert_eq!(opt.decode_rate, 2);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecompressorConfig {
    /// Index-table access model.
    pub index_cache: IndexCacheModel,
    /// Instructions decompressed per cycle (paper Table 8: 1, 2, or 16).
    pub decode_rate: u32,
    /// Keep the 16-instruction output buffer that is always filled on a miss
    /// and acts as a prefetch for the block's other cache line.
    pub output_buffer: bool,
    /// Forward instructions to the CPU as they are decompressed rather than
    /// waiting for the whole line.
    pub forwarding: bool,
    /// Fixed request/response overhead of a decompressor-serviced miss, in
    /// cycles — miss detection, request issue, and result hand-off around
    /// the idealized Figure-2 timeline. Does not apply to output-buffer
    /// hits.
    pub request_overhead: u32,
    /// Which decoder implementation services functional decodes (fault
    /// detection, integrity checks). Purely functional: both backends are
    /// byte-identical, so timing results never depend on this.
    pub decode_backend: DecodeBackend,
}

impl DecompressorConfig {
    /// The paper's baseline CodePack: last-used index entry cached, one
    /// instruction per cycle, output buffer and forwarding on (§3.2).
    pub fn baseline() -> DecompressorConfig {
        DecompressorConfig {
            index_cache: IndexCacheModel::Cached {
                lines: 1,
                entries_per_line: 1,
            },
            decode_rate: 1,
            output_buffer: true,
            forwarding: true,
            request_overhead: 2,
            decode_backend: DecodeBackend::default(),
        }
    }

    /// The paper's optimized model (§5.3): 64-line × 4-entry fully
    /// associative index cache and two decompressors per cycle.
    pub fn optimized() -> DecompressorConfig {
        DecompressorConfig {
            index_cache: IndexCacheModel::Cached {
                lines: 64,
                entries_per_line: 4,
            },
            decode_rate: 2,
            ..DecompressorConfig::baseline()
        }
    }

    /// Baseline with only the index-cache optimization (Table 9 "Index").
    pub fn index_cache_only() -> DecompressorConfig {
        DecompressorConfig {
            index_cache: IndexCacheModel::Cached {
                lines: 64,
                entries_per_line: 4,
            },
            ..DecompressorConfig::baseline()
        }
    }

    /// Baseline with only the wider decoder (Table 9 "Decompress").
    pub fn decoders(rate: u32) -> DecompressorConfig {
        DecompressorConfig {
            decode_rate: rate,
            ..DecompressorConfig::baseline()
        }
    }

    /// Optimized model with a perfect index cache (Table 7 "Perfect").
    pub fn perfect_index() -> DecompressorConfig {
        DecompressorConfig {
            index_cache: IndexCacheModel::Perfect,
            ..DecompressorConfig::baseline()
        }
    }
}

/// Where a miss was served from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MissSource {
    /// Native line fill from main memory.
    Memory,
    /// Compressed block fetched from main memory and decompressed.
    Decompressor,
    /// The whole block was already in the decompressor's output buffer.
    OutputBuffer,
}

/// Timing of one serviced L1 I-miss, in cycles after the miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MissService {
    /// When the requested (critical) instruction reaches the CPU.
    pub critical_ready: u64,
    /// When the full 8-instruction cache line has been filled.
    pub line_fill_complete: u64,
    /// Where the instructions came from.
    pub source: MissSource,
    /// Did the index-cache probe hit? `None` for native fetches and
    /// buffer hits (no index access happens).
    pub index_hit: Option<bool>,
    /// Cycles of `critical_ready` spent fetching the index-table entry
    /// (zero on index-cache hits, native fetches, and buffer hits). The
    /// cycle-attribution profiler splits decompression latency on this.
    pub index_cycles: u64,
    /// Set when soft-error recovery exhausted its re-fetch budget: the
    /// instructions never arrived, and the pipeline must raise a precise
    /// machine-check trap instead of consuming this service.
    pub machine_check: bool,
}

/// Counters accumulated by a fetch engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Misses serviced.
    pub misses: u64,
    /// Misses served from the output buffer.
    pub buffer_hits: u64,
    /// Index-cache probes that hit.
    pub index_hits: u64,
    /// Index-cache probes that missed (index fetched from main memory).
    pub index_misses: u64,
    /// Total main-memory bus beats used.
    pub memory_beats: u64,
    /// Sum of critical-word latencies (for average miss penalty).
    pub total_critical_cycles: u64,
}

impl FetchStats {
    /// Index-cache miss ratio among index probes (paper Table 6).
    pub fn index_miss_ratio(&self) -> f64 {
        let probes = self.index_hits + self.index_misses;
        if probes == 0 {
            0.0
        } else {
            self.index_misses as f64 / probes as f64
        }
    }

    /// Mean critical-word miss penalty in cycles.
    pub fn avg_miss_penalty(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.total_critical_cycles as f64 / self.misses as f64
        }
    }
}

/// A model of the path that services L1 I-cache misses.
pub trait FetchEngine {
    /// Services a miss whose critical instruction is at byte address
    /// `critical_addr`, filling the `line_bytes`-sized line containing it.
    fn service_miss(&mut self, critical_addr: u32, line_bytes: u32) -> MissService;

    /// Like [`Self::service_miss`], additionally emitting trace events to
    /// `obs` stamped relative to the absolute cycle `now` at which the miss
    /// was detected. The default implementation services the miss with no
    /// events, so engines without internal structure worth tracing need not
    /// override it; the caller still sees the miss itself (the pipeline
    /// emits `IcacheMiss`/`MissServed` around this call).
    fn service_miss_traced(
        &mut self,
        critical_addr: u32,
        line_bytes: u32,
        now: u64,
        obs: &mut Obs,
    ) -> MissService {
        let _ = (now, obs);
        self.service_miss(critical_addr, line_bytes)
    }

    /// Folds end-of-run per-block decode-path counters into the block
    /// profile armed on `obs`, if any. Called once after the run so the
    /// per-miss profiling path stays increment-only; engines without
    /// decode structure (or when no profile is armed) do nothing.
    fn finalize_profile(&self, obs: &mut Obs) {
        let _ = obs;
    }

    /// Accumulated statistics.
    fn stats(&self) -> FetchStats;

    /// Soft-error ledger of this engine. Engines without a fault model
    /// report an empty ledger.
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }

    /// Short human-readable name for tables.
    fn name(&self) -> &'static str;
}

/// Native-code fetch: critical-word-first burst read (paper Figure 2-a).
#[derive(Clone, Debug)]
pub struct NativeFetch {
    timing: MemoryTiming,
    stats: FetchStats,
}

impl NativeFetch {
    /// Creates a native fetch path over the given memory.
    pub fn new(timing: MemoryTiming) -> NativeFetch {
        NativeFetch {
            timing,
            stats: FetchStats::default(),
        }
    }
}

impl FetchEngine for NativeFetch {
    fn service_miss(&mut self, critical_addr: u32, line_bytes: u32) -> MissService {
        let fill = self
            .timing
            .line_fill(line_bytes, critical_addr % line_bytes);
        self.stats.misses += 1;
        self.stats.memory_beats += u64::from(self.timing.beats_for(line_bytes));
        self.stats.total_critical_cycles += fill.critical_word_ready;
        MissService {
            critical_ready: fill.critical_word_ready,
            line_fill_complete: fill.fill_complete,
            source: MissSource::Memory,
            index_hit: None,
            index_cycles: 0,
            machine_check: false,
        }
    }

    fn service_miss_traced(
        &mut self,
        critical_addr: u32,
        line_bytes: u32,
        now: u64,
        obs: &mut Obs,
    ) -> MissService {
        let svc = self.service_miss(critical_addr, line_bytes);
        if obs.enabled() {
            for (beat, bytes, done) in self.timing.burst_schedule(line_bytes) {
                obs.emit(now + done, EventKind::BurstBeat { beat, bytes });
            }
        }
        svc
    }

    fn stats(&self) -> FetchStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "native"
    }
}

/// Cycles to deliver instructions already sitting in the output buffer.
const BUFFER_HIT_CYCLES: u64 = 1;

/// The CodePack decompressor fetch path (paper Figures 2-b and 2-c),
/// optionally hardened against soft errors (see [`SoftErrorConfig`]).
///
/// When protection is armed, every decompressor-serviced miss runs the
/// recovery state machine: the fault model may strike the index entry,
/// a dictionary entry, or the compressed stream read; armed integrity
/// checks (or the codec itself, via a [`crate::DecompressError`]) detect
/// the strike; detection triggers a bounded re-fetch, and budget
/// exhaustion marks the service [`MissService::machine_check`] so the
/// pipeline raises a precise trap. Undetected strikes are counted as
/// silent escapes — the fault ledger meters reliability while the
/// simulator's functional machine remains the execution oracle.
pub struct CodePackFetch {
    image: Arc<CodePackImage>,
    timing: MemoryTiming,
    config: DecompressorConfig,
    text_base: u32,
    index_cache: Option<FullyAssociativeCache>,
    /// Block number currently held by the 16-instruction output buffer.
    buffer_block: Option<u32>,
    stats: FetchStats,
    protection: Option<SoftErrorConfig>,
    faults: FaultStats,
    /// Monotonic access counter keying fault probes on the untraced
    /// [`FetchEngine::service_miss`] path, which carries no cycle stamp.
    pseudo_cycle: u64,
}

impl CodePackFetch {
    /// Creates a decompressor over a compressed image whose native text
    /// starts at `text_base`.
    pub fn new(
        image: Arc<CodePackImage>,
        timing: MemoryTiming,
        config: DecompressorConfig,
        text_base: u32,
    ) -> CodePackFetch {
        let index_cache = match config.index_cache {
            IndexCacheModel::Cached {
                lines,
                entries_per_line,
            } => Some(FullyAssociativeCache::new(lines, entries_per_line)),
            _ => None,
        };
        CodePackFetch {
            image,
            timing,
            config,
            text_base,
            index_cache,
            buffer_block: None,
            stats: FetchStats::default(),
            protection: None,
            faults: FaultStats::default(),
            pseudo_cycle: 0,
        }
    }

    /// Arms soft-error injection, integrity checking, and recovery.
    pub fn with_protection(mut self, protection: SoftErrorConfig) -> CodePackFetch {
        self.protection = Some(protection);
        self
    }

    /// The decompressor configuration in effect.
    pub fn config(&self) -> &DecompressorConfig {
        &self.config
    }

    /// Index-cache statistics (probes/hits), if an index cache is present.
    pub fn index_cache_stats(&self) -> Option<codepack_mem::CacheStats> {
        self.index_cache.as_ref().map(FullyAssociativeCache::stats)
    }

    /// Emits the injection event plus its outcome event for one fault.
    fn emit_fault(
        obs: &mut Obs,
        cycle: u64,
        domain: FaultDomain,
        addr: u32,
        flips: &Flips,
        detected: bool,
    ) {
        if !obs.enabled() {
            return;
        }
        let area = fault_area(domain);
        obs.emit(
            cycle,
            EventKind::FaultInjected {
                area,
                addr,
                flips: flips.count,
            },
        );
        let outcome = if detected {
            EventKind::FaultDetected { area, addr }
        } else {
            EventKind::FaultSilent { area, addr }
        };
        obs.emit(cycle, outcome);
    }

    /// Whether the codec rejects `block`'s stream bytes after applying
    /// `flips` to a scratch copy — the `DecompressError` leg of detection.
    /// The image itself is never mutated.
    fn corrupted_block_decodes(&self, block: u32, flips: &Flips) -> bool {
        let info = self.image.block_info(block);
        let offset = info.byte_offset as usize;
        let mut bytes =
            self.image.compressed_bytes()[offset..offset + usize::from(info.byte_len)].to_vec();
        for &bit in &flips.bits[..flips.count as usize] {
            bytes[bit as usize / 8] ^= 1 << (bit % 8);
        }
        match self.config.decode_backend {
            DecodeBackend::Scalar => {
                decode_block_bytes(&bytes, self.image.high_dict(), self.image.low_dict()).is_ok()
            }
            DecodeBackend::Fast => self.image.fast_decoder().decode_block(&bytes).is_ok(),
        }
    }

    /// Cycle at which each instruction of `block` is decoded, given the
    /// code burst starts at `t_start`. Implements
    /// `ready[j] = max(arrival[j] + 1, ready[j - rate] + 1)` where
    /// `arrival[j]` is the completion of the bus beat carrying the last bit
    /// of instruction `j`.
    fn decode_schedule(&self, block: u32, t_start: u64) -> [u64; BLOCK_INSNS as usize] {
        let info = self.image.block_info(block);
        let bus = self.timing.bus_bytes();
        let first = u64::from(self.timing.first_access_cycles());
        let rate = u64::from(self.timing.next_access_cycles());
        let decode_rate = self.config.decode_rate as usize;

        let mut ready = [0u64; BLOCK_INSNS as usize];
        for j in 0..BLOCK_INSNS as usize {
            let bytes_needed = u32::from(info.cum_bits[j + 1]).div_ceil(8);
            let beat = bytes_needed.div_ceil(bus).max(1) - 1; // 0-based beat index
            let arrival = t_start + first + u64::from(beat) * rate;
            let capacity_bound = if j >= decode_rate {
                ready[j - decode_rate] + 1
            } else {
                0
            };
            ready[j] = (arrival + 1).max(capacity_bound);
        }
        ready
    }

    /// Folds one decompressor-path service into the armed block profile,
    /// if any: the per-service deltas of the beat and fault ledgers plus
    /// the numbers already at hand. Disarmed: one branch.
    fn record_profiled_miss(
        &self,
        obs: &mut Obs,
        block: u32,
        critical_cycles: u64,
        index_hit: Option<bool>,
        before: &LedgerSnapshot,
        machine_check: bool,
    ) {
        let Some(p) = obs.profile_mut() else { return };
        p.set_total_blocks(self.image.num_blocks());
        p.record_miss(
            block,
            &MissRecord {
                critical_cycles,
                index_hit,
                memory_beats: self.stats.memory_beats - before.memory_beats,
                decompressed: true,
                fast_decode: self.config.decode_backend == DecodeBackend::Fast,
                machine_check,
                faults_injected: self.faults.injected - before.faults.injected,
                faults_recovered: self.faults.recovered - before.faults.recovered,
            },
        );
    }
}

/// Start-of-service copies of the running beat and fault ledgers, so the
/// profiler can attribute per-service deltas to one block.
struct LedgerSnapshot {
    memory_beats: u64,
    faults: FaultStats,
}

impl CodePackFetch {
    /// Services one miss at absolute cycle `now`, emitting trace events to
    /// `obs` when it is enabled. Both [`FetchEngine`] entry points funnel
    /// here so the fault probes, the recovery state machine, and the
    /// emitted timeline always agree on one set of cycle stamps. Tracing
    /// never perturbs timing: `obs.enabled()` guards emission only, and
    /// fault probes key on `now`, not on the observer.
    fn service_at(
        &mut self,
        critical_addr: u32,
        line_bytes: u32,
        now: u64,
        obs: &mut Obs,
    ) -> MissService {
        assert!(
            line_bytes <= BLOCK_INSNS * 4,
            "a cache line must fit within one compression block"
        );
        debug_assert!(critical_addr >= self.text_base);
        self.stats.misses += 1;
        // Profiling attributes per-service deltas of the running ledgers;
        // the snapshot is two cheap copies, and the recording sites
        // below are guarded by the armed-profile branch.
        let before = LedgerSnapshot {
            memory_beats: self.stats.memory_beats,
            faults: self.faults,
        };

        let insn = (critical_addr - self.text_base) / 4;
        let block = self.image.block_of_insn(insn);
        let within = (insn % BLOCK_INSNS) as usize;
        let insns_per_line = (line_bytes / 4) as usize;
        let line_start = (within / insns_per_line) * insns_per_line;

        // Output buffer: the previous miss always decompressed the whole
        // block, so the block's other line may already be sitting there.
        // Buffer hits bypass memory, so the memory-side fault domains do
        // not apply; resident-data strikes are the pipeline's I-cache-line
        // domain.
        if self.config.output_buffer && self.buffer_block == Some(block) {
            self.stats.buffer_hits += 1;
            self.stats.total_critical_cycles += BUFFER_HIT_CYCLES;
            if obs.enabled() {
                obs.emit(now + BUFFER_HIT_CYCLES, EventKind::BufferHit { block });
            }
            if let Some(p) = obs.profile_mut() {
                p.set_total_blocks(self.image.num_blocks());
                p.record_buffer_hit(block);
            }
            return MissService {
                critical_ready: BUFFER_HIT_CYCLES,
                line_fill_complete: BUFFER_HIT_CYCLES,
                source: MissSource::OutputBuffer,
                index_hit: None,
                index_cycles: 0,
                machine_check: false,
            };
        }

        // Index lookup, probed in parallel with the L1: a hit is free.
        let group = self.image.group_of_insn(insn);
        let (mut t_index, index_hit) = match self.config.index_cache {
            IndexCacheModel::Perfect => (0, Some(true)),
            IndexCacheModel::None => {
                let (beats, cycles) = self.timing.burst_read_profile(INDEX_ENTRY_BYTES);
                self.stats.memory_beats += u64::from(beats);
                (cycles, Some(false))
            }
            IndexCacheModel::Cached { .. } => {
                let cache = self.index_cache.as_mut().expect("cache built in new()");
                if cache.access(group) {
                    self.stats.index_hits += 1;
                    (0, Some(true))
                } else {
                    self.stats.index_misses += 1;
                    let (beats, cycles) = self.timing.burst_read_profile(INDEX_ENTRY_BYTES);
                    self.stats.memory_beats += u64::from(beats);
                    (cycles, Some(false))
                }
            }
        };

        // Index-SRAM fault domain: a struck entry is caught by parity (odd
        // flips only) and cured by re-reading the entry from main memory,
        // whose copy is assumed good. Undetected strikes escape silently —
        // the simulator meters the escape; the functional machine remains
        // the execution oracle.
        if let Some(p) = self.protection {
            let entry_addr = group * INDEX_ENTRY_BYTES;
            if let Some(flips) = p.faults.probe(
                now,
                u64::from(entry_addr),
                FaultDomain::Index,
                INDEX_ENTRY_BYTES * 8,
            ) {
                self.faults.injected += 1;
                let detected = p.integrity.index_parity && flips.parity_detects();
                Self::emit_fault(
                    obs,
                    now + t_index,
                    FaultDomain::Index,
                    entry_addr,
                    &flips,
                    detected,
                );
                if detected {
                    self.faults.detected += 1;
                    self.faults.retries += 1;
                    if obs.enabled() {
                        obs.emit(
                            now + t_index,
                            EventKind::FaultRetry {
                                area: FaultArea::Index,
                                attempt: 1,
                            },
                        );
                    }
                    self.stats.memory_beats += u64::from(self.timing.beats_for(INDEX_ENTRY_BYTES));
                    t_index += self.timing.burst_read_cycles(INDEX_ENTRY_BYTES)
                        + u64::from(p.integrity.check_cycles);
                    self.faults.recovered += 1;
                } else {
                    self.faults.silent += 1;
                }
            }
        }

        if obs.enabled() {
            if let Some(hit) = index_hit {
                obs.emit(
                    now + t_index,
                    EventKind::IndexLookup {
                        group,
                        hit,
                        cycles: t_index,
                    },
                );
            }
        }

        let info = self.image.block_info(block).clone();
        let payload = u32::from(info.byte_len);
        let (overhead, check_cycles) = match self.protection {
            Some(p) => (
                p.integrity.stream.overhead_bytes(payload),
                u64::from(p.integrity.check_cycles),
            ),
            None => (0, 0),
        };
        let protected_read = self.timing.burst_read_cycles(payload + overhead) + check_cycles;

        // Dictionary-SRAM fault domain: parity-detected strikes reload the
        // entry from the dictionary's ROM image before decode can start.
        let mut t_extra = 0u64;
        if let Some(p) = self.protection {
            if let Some(flips) = p
                .faults
                .probe(now, u64::from(block), FaultDomain::Dictionary, 16)
            {
                self.faults.injected += 1;
                let detected = p.integrity.dict_parity && flips.parity_detects();
                Self::emit_fault(
                    obs,
                    now + t_index,
                    FaultDomain::Dictionary,
                    block,
                    &flips,
                    detected,
                );
                if detected {
                    self.faults.detected += 1;
                    self.faults.retries += 1;
                    if obs.enabled() {
                        obs.emit(
                            now + t_index,
                            EventKind::FaultRetry {
                                area: FaultArea::Dictionary,
                                attempt: 1,
                            },
                        );
                    }
                    self.stats.memory_beats += u64::from(self.timing.beats_for(DICT_ENTRY_BYTES));
                    t_extra += self.timing.burst_read_cycles(DICT_ENTRY_BYTES)
                        + u64::from(p.integrity.check_cycles);
                    self.faults.recovered += 1;
                } else {
                    self.faults.silent += 1;
                }
            }
        }

        // Compressed-stream fault domain: detect → re-fetch → trap. Each
        // read of the block is an independent strike opportunity (keyed on
        // the attempt number); detection is the armed stream check or the
        // codec rejecting the corrupted bytes. Detections in a service that
        // eventually reads clean are `recovered`; if the re-fetch budget
        // runs out they all become `trapped` and the service is marked for
        // a machine check.
        let mut stream_extra = 0u64;
        let mut machine_check = false;
        if let Some(p) = self.protection {
            let mut pending = 0u64;
            let mut attempt = 0u32;
            loop {
                let flips = match p.faults.probe(
                    now + u64::from(attempt),
                    u64::from(info.byte_offset),
                    FaultDomain::Stream,
                    payload * 8,
                ) {
                    None => {
                        self.faults.recovered += pending;
                        break;
                    }
                    Some(flips) => flips,
                };
                self.faults.injected += 1;
                let detected = p.integrity.stream.detects(&flips)
                    || !self.corrupted_block_decodes(block, &flips);
                let fault_addr = info.byte_offset + flips.bits[0] / 8;
                Self::emit_fault(
                    obs,
                    now + t_index + t_extra + stream_extra,
                    FaultDomain::Stream,
                    fault_addr,
                    &flips,
                    detected,
                );
                if !detected {
                    self.faults.silent += 1;
                    self.faults.recovered += pending;
                    break;
                }
                self.faults.detected += 1;
                pending += 1;
                if attempt >= p.max_refetch {
                    self.faults.trapped += pending;
                    self.faults.machine_checks += 1;
                    // The final, doomed read still occupied the bus and
                    // the checker.
                    self.stats.memory_beats += u64::from(self.timing.beats_for(payload + overhead));
                    stream_extra += protected_read;
                    machine_check = true;
                    break;
                }
                attempt += 1;
                self.faults.retries += 1;
                self.stats.memory_beats += u64::from(self.timing.beats_for(payload + overhead));
                stream_extra += protected_read;
                if obs.enabled() {
                    obs.emit(
                        now + t_index + t_extra + stream_extra,
                        EventKind::FaultRetry {
                            area: FaultArea::Stream,
                            attempt,
                        },
                    );
                }
            }
        }

        if machine_check {
            let elapsed =
                t_index + u64::from(self.config.request_overhead) + t_extra + stream_extra;
            self.stats.total_critical_cycles += elapsed;
            self.record_profiled_miss(obs, block, elapsed, index_hit, &before, true);
            return MissService {
                critical_ready: elapsed,
                line_fill_complete: elapsed,
                source: MissSource::Decompressor,
                index_hit,
                index_cycles: t_index,
                machine_check: true,
            };
        }

        // Burst-read the compressed block and decode it, overlapped. The
        // decode schedule is unchanged by protection (check bytes trail the
        // payload); fail-stop delivery gates every instruction on the
        // integrity check completing.
        self.stats.memory_beats += u64::from(self.timing.beats_for(payload + overhead));
        let t_start = t_index + u64::from(self.config.request_overhead) + t_extra + stream_extra;
        let ready = self.decode_schedule(block, t_start);
        let gate = match self.protection {
            Some(p) if p.integrity.stream != StreamIntegrity::None => t_start + protected_read,
            _ => 0,
        };

        if obs.enabled() {
            for (beat, bytes, done) in self.timing.burst_schedule(payload + overhead) {
                obs.emit(now + t_start + done, EventKind::BurstBeat { beat, bytes });
            }
            for (j, &t) in ready.iter().enumerate() {
                let insn = block * BLOCK_INSNS + j as u32;
                let kind = if info.raw_mask & (1 << j) != 0 {
                    EventKind::RawInsn { insn }
                } else {
                    EventKind::DictInsn { insn }
                };
                obs.emit(now + t, kind);
            }
        }

        let critical_ready = if self.config.forwarding {
            ready[within]
        } else {
            ready[line_start + insns_per_line - 1]
        }
        .max(gate);
        let line_fill_complete = ready[line_start + insns_per_line - 1].max(gate);
        if self.config.output_buffer {
            self.buffer_block = Some(block);
        }
        self.stats.total_critical_cycles += critical_ready;
        self.record_profiled_miss(obs, block, critical_ready, index_hit, &before, false);

        MissService {
            critical_ready,
            line_fill_complete,
            source: MissSource::Decompressor,
            index_hit,
            index_cycles: t_index,
            machine_check: false,
        }
    }
}

impl FetchEngine for CodePackFetch {
    fn service_miss(&mut self, critical_addr: u32, line_bytes: u32) -> MissService {
        let now = self.pseudo_cycle;
        self.pseudo_cycle += 1;
        self.service_at(critical_addr, line_bytes, now, &mut Obs::disabled())
    }

    fn service_miss_traced(
        &mut self,
        critical_addr: u32,
        line_bytes: u32,
        now: u64,
        obs: &mut Obs,
    ) -> MissService {
        self.service_at(critical_addr, line_bytes, now, obs)
    }

    fn stats(&self) -> FetchStats {
        self.stats
    }

    fn fault_stats(&self) -> FaultStats {
        self.faults
    }

    /// Scales the image's cached per-block [`crate::DecodeCounters`] by
    /// each block's modeled invocation count. Done once at end of run
    /// rather than per miss: a block's decode-path counts are a pure
    /// function of its bytes ([`CodePackImage::block_decode_counters`]
    /// computes them once per image), so the armed per-miss path stays
    /// increment-only (the <3% overhead budget) while the profile still
    /// attributes exact table/escape/refill work. Scalar-backend
    /// invocations contribute no counters — the counters describe the
    /// table-driven path.
    fn finalize_profile(&self, obs: &mut Obs) {
        let Some(profile) = obs.profile_mut() else {
            return;
        };
        let counters = self.image.block_decode_counters();
        for (block, stats) in profile.iter_mut() {
            if stats.decode_fast == 0 || block >= self.image.num_blocks() {
                continue;
            }
            let c = counters[block as usize];
            stats.table_lookups += c.table_lookups * stats.decode_fast;
            stats.raw_escapes += c.raw_escapes * stats.decode_fast;
            stats.refills += c.refills * stats.decode_fast;
            stats.scalar_fallbacks += c.scalar_fallbacks * stats.decode_fast;
        }
    }

    fn name(&self) -> &'static str {
        "codepack"
    }
}

impl std::fmt::Debug for CodePackFetch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CodePackFetch")
            .field("config", &self.config)
            .field("buffer_block", &self.buffer_block)
            .field("stats", &self.stats)
            .field("protection", &self.protection)
            .field("faults", &self.faults)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompressionConfig, BLOCK_INSNS};

    /// Builds an image whose blocks have the paper's Figure 2 beat profile:
    /// successive 64-bit accesses return 2, 3, 3, 3, 3, 2 instructions.
    ///
    /// Construction: every high half-word is unique (raw escape, 19 bits);
    /// low half-words are zero (2-bit codeword) except instructions 0 and 5
    /// of each block, which use a dictionary value at rank 1 (5-bit
    /// codeword). Sizes are thus 24,21,21,21,21,24,21,…: cumulative bits
    /// 25,46,67,88,109,133,… put exactly two instructions in the first
    /// 64-bit beat and three in each of the next four.
    fn figure2_image() -> Arc<CodePackImage> {
        let mut text = Vec::new();
        for b in 0..2u32 {
            for j in 0..BLOCK_INSNS {
                let high = 0x8000 + (b * BLOCK_INSNS + j) * 257; // unique -> raw
                let low = if j == 0 || j == 5 { 0xaa } else { 0 };
                text.push((high << 16) | low);
            }
        }
        let image = CodePackImage::compress(&text, &CompressionConfig::default());
        // Validate the construction produced the intended profile.
        let cum = &image.block_info(0).cum_bits;
        assert_eq!(&cum[..7], &[0, 25, 46, 67, 88, 109, 133]);
        Arc::new(image)
    }

    /// Figure 2 idealizes away the hardware request/response overhead, so
    /// the exact-cycle regression tests use a zero-overhead config.
    fn ideal(cfg: DecompressorConfig) -> DecompressorConfig {
        DecompressorConfig {
            request_overhead: 0,
            ..cfg
        }
    }

    #[test]
    fn figure2_worked_example() {
        // 21-bit instructions + 1 flag bit: cum bits ≈ 22, 43, 64, ...
        // 64-bit beats deliver: beat0 = 64 bits -> insns 0-1 (cum 43 ≤ 64 < 85),
        // beat1 -> through insn 4 (cum 106 ≤ 128), i.e. 2 then 3 per beat,
        // the paper's 2,3,3,3,3,2 pattern.
        let image = figure2_image();
        let timing = MemoryTiming::default();

        // Baseline (Figure 2-b): cold index, 1 insn/cycle. Paper: the
        // critical (5th) instruction is ready at t = 25.
        let mut base = CodePackFetch::new(
            Arc::clone(&image),
            timing,
            ideal(DecompressorConfig::baseline()),
            0x40_0000,
        );
        let svc = base.service_miss(0x40_0000 + 4 * 4, 32);
        assert_eq!(svc.index_hit, Some(false));
        assert_eq!(
            svc.critical_ready, 25,
            "paper Figure 2-b: critical instruction at t=25"
        );

        // Optimized (Figure 2-c): index-cache hit, 2 insns/cycle. Paper: t=14.
        let mut opt = CodePackFetch::new(
            Arc::clone(&image),
            timing,
            ideal(DecompressorConfig::optimized()),
            0x40_0000,
        );
        // Warm the index cache with a first miss in the same group, then
        // miss on the next block (same group, other block).
        opt.service_miss(0x40_0000, 32);
        let svc = opt.service_miss(0x40_0000 + (16 + 4) * 4, 32);
        assert_eq!(svc.index_hit, Some(true));
        assert_eq!(
            svc.critical_ready, 14,
            "paper Figure 2-c: critical instruction at t=14"
        );
    }

    #[test]
    fn native_critical_word_first() {
        let mut native = NativeFetch::new(MemoryTiming::default());
        let svc = native.service_miss(0x40_001c, 32);
        assert_eq!(svc.critical_ready, 10);
        assert_eq!(svc.line_fill_complete, 16);
        assert_eq!(svc.source, MissSource::Memory);
    }

    #[test]
    fn output_buffer_serves_other_line_of_block() {
        let image = figure2_image();
        let mut f = CodePackFetch::new(
            image,
            MemoryTiming::default(),
            DecompressorConfig::baseline(),
            0,
        );
        let first = f.service_miss(0, 32); // line 0 of block 0
        assert_eq!(first.source, MissSource::Decompressor);
        let second = f.service_miss(32, 32); // line 1 of block 0
        assert_eq!(second.source, MissSource::OutputBuffer);
        assert_eq!(second.critical_ready, BUFFER_HIT_CYCLES);
        let third = f.service_miss(64, 32); // block 1 evicted nothing: buffer misses
        assert_eq!(third.source, MissSource::Decompressor);
    }

    #[test]
    fn disabling_output_buffer_always_decompresses() {
        let image = figure2_image();
        let cfg = DecompressorConfig {
            output_buffer: false,
            ..DecompressorConfig::baseline()
        };
        let mut f = CodePackFetch::new(image, MemoryTiming::default(), cfg, 0);
        f.service_miss(0, 32);
        let second = f.service_miss(32, 32);
        assert_eq!(second.source, MissSource::Decompressor);
    }

    #[test]
    fn perfect_index_never_pays_memory_for_index() {
        let image = figure2_image();
        let mut f = CodePackFetch::new(
            image,
            MemoryTiming::default(),
            ideal(DecompressorConfig::perfect_index()),
            0,
        );
        let svc = f.service_miss(0, 32);
        assert_eq!(svc.index_hit, Some(true));
        // critical insn 0 (22 bits -> beat 0): ready = 10 + 1 = 11.
        assert_eq!(svc.critical_ready, 11);
    }

    #[test]
    fn without_forwarding_critical_waits_for_line() {
        let image = figure2_image();
        let cfg = DecompressorConfig {
            forwarding: false,
            ..DecompressorConfig::perfect_index()
        };
        let mut f = CodePackFetch::new(image, MemoryTiming::default(), cfg, 0);
        let svc = f.service_miss(0, 32);
        assert_eq!(
            svc.critical_ready, svc.line_fill_complete,
            "no forwarding: critical waits for the whole line"
        );
        assert!(svc.critical_ready > 11);
    }

    #[test]
    fn wider_decoder_caps_at_arrival() {
        let image = figure2_image();
        let mut r16 = CodePackFetch::new(
            Arc::clone(&image),
            MemoryTiming::default(),
            ideal(DecompressorConfig {
                decode_rate: 16,
                ..DecompressorConfig::perfect_index()
            }),
            0,
        );
        let mut r1 = CodePackFetch::new(
            image,
            MemoryTiming::default(),
            ideal(DecompressorConfig::perfect_index()),
            0,
        );
        let wide = r16.service_miss(7 * 4, 32);
        let narrow = r1.service_miss(7 * 4, 32);
        assert!(wide.critical_ready < narrow.critical_ready);
        // Even infinitely wide decode cannot beat the bus: insn 7 needs
        // cum_bits[8] = 175 bits -> 22 bytes -> beat 2 -> t=14, +1 = 15.
        assert_eq!(wide.critical_ready, 15);
    }

    #[test]
    fn traced_service_matches_untraced_timing() {
        use codepack_obs::RingSink;

        let image = figure2_image();
        let cfg = DecompressorConfig::baseline();
        let mut plain = CodePackFetch::new(Arc::clone(&image), MemoryTiming::default(), cfg, 0);
        let mut traced = CodePackFetch::new(Arc::clone(&image), MemoryTiming::default(), cfg, 0);
        let mut obs = Obs::with_sink(Box::new(RingSink::new(4096)));
        let mut disabled = Obs::disabled();

        for addr in [0u32, 32, 16, 64, 0] {
            let a = plain.service_miss(addr, 32);
            let b = traced.service_miss_traced(addr, 32, 1000, &mut obs);
            assert_eq!(a, b, "tracing must not perturb the timing model");
            let c = plain.service_miss_traced(addr, 32, 1000, &mut disabled);
            let d = traced.service_miss(addr, 32);
            assert_eq!(c, d);
        }
        assert_eq!(plain.stats(), traced.stats());

        let report = obs.into_report(10_000, 100).unwrap();
        let events = report.sink.events().to_vec();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::BufferHit { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::IndexLookup { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::BurstBeat { .. })));
        // figure2_image raw-escapes every high half-word, so every decoded
        // instruction classifies as a raw escape.
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::RawInsn { .. })));
        assert!(events.iter().all(|e| e.cycle >= 1000));
    }

    #[test]
    fn profiled_service_matches_timing_and_attributes_blocks() {
        let image = figure2_image();
        let cfg = DecompressorConfig::baseline();
        let mut plain = CodePackFetch::new(Arc::clone(&image), MemoryTiming::default(), cfg, 0);
        let mut prof = CodePackFetch::new(Arc::clone(&image), MemoryTiming::default(), cfg, 0);
        let mut obs = Obs::with_null_sink();
        obs.arm_profile();

        // 0: block-0 miss; 32/16: block-0 buffer hits; 64: block-1 miss;
        // 0 again: block-0 miss (buffer now holds block 1).
        for addr in [0u32, 32, 16, 64, 0] {
            let a = plain.service_miss(addr, 32);
            let b = prof.service_miss_traced(addr, 32, 1000, &mut obs);
            assert_eq!(a, b, "profiling must not perturb the timing model");
        }
        assert_eq!(plain.stats(), prof.stats());
        prof.finalize_profile(&mut obs);

        let p = obs.profile().unwrap();
        assert_eq!(p.total_blocks(), image.num_blocks());
        assert_eq!(p.blocks_touched(), 2);
        let b0 = p.stats(0).unwrap();
        assert_eq!((b0.fetches, b0.buffer_hits, b0.misses()), (4, 2, 2));
        assert_eq!(b0.decode_fast, 2);
        assert_eq!(b0.miss_cycles.count(), 2, "buffer hits are not misses");
        let b1 = p.stats(1).unwrap();
        assert_eq!((b1.fetches, b1.misses()), (1, 1));
        // The decode-path counters are the per-decode counted numbers
        // scaled by each block's invocation count.
        // Slice to the exact block length: the prefetched-vs-tail split
        // depends on the bytes remaining, and finalize_profile decodes
        // exact-length block slices.
        let offset = image.block_offset_via_index(0).unwrap() as usize;
        let len = image.block_info(0).byte_len as usize;
        let (_, c) = image
            .fast_decoder()
            .decode_block_counted(&image.compressed_bytes()[offset..offset + len]);
        assert_eq!(b0.table_lookups, 2 * c.table_lookups);
        assert_eq!(b0.raw_escapes, 2 * c.raw_escapes);
        assert_eq!(b0.refills, 2 * c.refills);
        assert!(b0.table_lookups > 0 && b0.raw_escapes > 0);
        // Memory beats attributed per block sum to the engine's ledger.
        let total_beats: u64 = p.iter().map(|(_, s)| s.memory_beats).sum();
        assert_eq!(total_beats, prof.stats().memory_beats);
    }

    #[test]
    fn scalar_backend_profiles_invocations_without_table_counters() {
        let image = figure2_image();
        let cfg = DecompressorConfig {
            decode_backend: DecodeBackend::Scalar,
            ..DecompressorConfig::baseline()
        };
        let mut f = CodePackFetch::new(image, MemoryTiming::default(), cfg, 0);
        let mut obs = Obs::with_null_sink();
        obs.arm_profile();
        f.service_miss_traced(0, 32, 0, &mut obs);
        f.finalize_profile(&mut obs);
        let s = obs.profile().unwrap().stats(0).unwrap().clone();
        assert_eq!((s.decode_scalar, s.decode_fast), (1, 0));
        assert_eq!(s.table_lookups, 0);
    }

    #[test]
    fn native_traced_emits_one_beat_per_bus_transfer() {
        use codepack_obs::RingSink;

        let mut native = NativeFetch::new(MemoryTiming::default());
        let mut obs = Obs::with_sink(Box::new(RingSink::new(64)));
        let svc = native.service_miss_traced(0x40_001c, 32, 50, &mut obs);
        assert_eq!(svc.critical_ready, 10);
        let report = obs.into_report(100, 10).unwrap();
        let beats: Vec<_> = report
            .sink
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::BurstBeat { .. }))
            .collect();
        assert_eq!(beats.len(), 4, "32 bytes over a 64-bit bus is 4 beats");
        assert_eq!(beats[0].cycle, 60);
        assert_eq!(beats[3].cycle, 66);
    }

    #[test]
    fn stats_accumulate() {
        let image = figure2_image();
        let mut f = CodePackFetch::new(
            image,
            MemoryTiming::default(),
            DecompressorConfig::optimized(),
            0,
        );
        f.service_miss(0, 32);
        f.service_miss(32, 32); // buffer hit
        f.service_miss(64, 32); // index hit (same group)
        let s = f.stats();
        assert_eq!(s.misses, 3);
        assert_eq!(s.buffer_hits, 1);
        assert_eq!(s.index_hits, 1);
        assert_eq!(s.index_misses, 1);
        assert!(s.avg_miss_penalty() > 0.0);
        assert!((s.index_miss_ratio() - 0.5).abs() < 1e-12);
    }
}
